"""Compare the four keyword-search semantics on one public-private network.

The same information need — "find DB + AI expertise near my private
network" — looks different under each semantic:

* **Blinks**: a root vertex with the nearest matching leaf per keyword;
* **BANKS**: the same answers with the *tree* connecting them spelled
  out edge by edge;
* **r-clique**: a star of matched experts pairwise-close to each other;
* **k-nk**: the plain ranked list of nearest matches for one keyword.

The example also prints the dataset's structural profile — including
``ball_coverage``, the locality number PPKWS's performance depends on.

Run:  python examples/compare_semantics.py
"""

from __future__ import annotations

from repro import PPKWS
from repro.datasets import dbpedia_like, generate_keyword_queries
from repro.graph import structural_summary


def main() -> None:
    dataset = dbpedia_like(num_vertices=3000, num_labels=200,
                           private_vertices=80, seed=55)
    public = dataset.public
    private = dataset.private("user0")

    print("public-graph structural profile:")
    for key, value in structural_summary(public, tau=5.0).items():
        print(f"  {key:20s} {value:.3f}")
    print("  (ball_coverage_tau << 1 means PPKWS's locality regime holds)\n")

    engine = PPKWS(public, sketch_k=2)
    engine.attach("me", private)

    query = generate_keyword_queries(public, private, num_queries=1,
                                     keywords_per_query=2, tau=5.0, seed=21)[0]
    keywords = list(query.keywords)
    print(f"query keywords: {keywords}, tau={query.tau:g}\n")

    # --- Blinks: root + leaves -----------------------------------------
    blinks = engine.blinks("me", keywords, query.tau, k=3)
    print(f"Blinks ({len(blinks.answers)} answers):")
    for ans in blinks.answers:
        print(f"  root {ans.root!r}, weight {ans.weight():g}: "
              f"{{{', '.join(f'{q}->{m.vertex!r}@{m.distance:g}' for q, m in ans.matches.items())}}}")

    # --- BANKS: the same answers as explicit trees ---------------------
    banks = engine.banks("me", keywords, query.tau, k=1)
    if banks.answers:
        tree = banks.answers[0]
        print(f"\nBANKS best answer tree (root {tree.root!r}):")
        for edge in sorted(tree.edges, key=lambda e: sorted(map(repr, e))):
            u, v = tuple(edge)
            print(f"  {u!r} -- {v!r}")

    # --- r-clique: pairwise-close team ---------------------------------
    rclique = engine.rclique("me", keywords, query.tau, k=3)
    print(f"\nr-clique ({len(rclique.answers)} answers):")
    for ans in rclique.answers:
        members = sorted({repr(m.vertex) for m in ans.matches.values()})
        print(f"  members {members} (star weight {ans.weight():g})")

    # --- k-nk: ranked nearest matches for the first keyword ------------
    source = next(v for v in private.vertices() if isinstance(v, str))
    knk = engine.knk("me", source, keywords[0], k=5)
    print(f"\nk-nk (5 nearest {keywords[0]!r} from {source!r}):")
    for m in knk.answer.matches:
        print(f"  {m.vertex!r} at {m.distance:g}")

    print("\nstep breakdowns (PEval/ARefine/AComplete ms):")
    for label, res in (("blinks", blinks), ("rclique", rclique)):
        b = res.breakdown
        print(f"  {label:8s} {b.peval*1e3:7.2f} {b.arefine*1e3:7.2f} "
              f"{b.acomplete*1e3:7.2f}")


if __name__ == "__main__":
    main()
