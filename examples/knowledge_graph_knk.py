"""Nearest-entity search on a knowledge graph (k-nk semantics).

A k-nk query ``(v, q, k)`` finds the k entities nearest to ``v`` that
carry keyword ``q`` — e.g. "the 10 chemists closest to my private lab's
entity".  On the public-private model the user's private knowledge base
(lab notes, internal entities) attaches to the public knowledge graph;
PP-knk answers from the private graph, the portal distance table and the
KPADS keyword sketches without traversing the public graph.

This example also demonstrates the accuracy story: PP-knk's distances
are sketch-based upper bounds, so we verify them against exact Dijkstra
on the materialized combined graph.

Run:  python examples/knowledge_graph_knk.py
"""

from __future__ import annotations

import time

from repro import PPKWS
from repro.datasets import generate_knk_queries, yago_like
from repro.graph import combine, dijkstra
from repro.semantics import knk_search


def main() -> None:
    print("generating a YAGO-style knowledge graph ...")
    dataset = yago_like(
        num_vertices=4000, num_labels=250, private_vertices=80, seed=99
    )
    public = dataset.public
    private = dataset.private("user0")
    print(f"  public : {public.num_vertices} entities / {public.num_edges} facts")
    print(f"  private: {private.num_vertices} entities")

    engine = PPKWS(public, sketch_k=2)
    engine.attach("lab", private)

    combined = combine(public, private)
    queries = generate_knk_queries(public, private, num_queries=4, k=10, seed=5)

    for query in queries:
        start = time.perf_counter()
        result = engine.knk("lab", query.source, query.keyword, query.k)
        pp_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        baseline = knk_search(combined, query.source, query.keyword, query.k)
        base_ms = (time.perf_counter() - start) * 1000

        answer = result.answer
        print(f"\nk-nk ({query.source!r}, {query.keyword!r}, k={query.k}):")
        print(f"  PP-knk   : {len(answer.matches)} matches in {pp_ms:.2f}ms")
        print(f"  baseline : {len(baseline.matches)} matches in {base_ms:.2f}ms")

        # Verify soundness against exact combined-graph distances.
        exact = dijkstra(combined, query.source)
        worst_ratio = 1.0
        for m in answer.matches:
            true = exact.get(m.vertex, float("inf"))
            assert m.distance >= true - 1e-9, "sketch distance below true!"
            if true > 0:
                worst_ratio = max(worst_ratio, m.distance / true)
        top = [(m.vertex, m.distance) for m in answer.matches[:5]]
        print(f"  top matches: {top}")
        print(f"  worst estimate ratio vs exact: {worst_ratio:.3f}")


if __name__ == "__main__":
    main()
