"""Quickstart: the paper's running example (Fig. 1) end to end.

Bob is a professor planning an interdisciplinary "DB-AI-CV" project.  The
public collaboration network knows everyone's published collaborations;
Bob additionally has a *private* collaboration network (grants, industry
contacts) that attaches to the public graph through portal nodes — the
people appearing in both.

We show the three situations from the paper's introduction:

1. querying Bob's private network alone finds no answer,
2. querying the public network alone finds a loose answer,
3. PPKWS on the combined view finds the tight public-private answer —
   without ever materializing or indexing the combined graph.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PPKWS, LabeledGraph, blinks_search, combine


def build_public_graph() -> LabeledGraph:
    """A small public collaboration network around Bob."""
    g = LabeledGraph("public-collaborations")
    g.add_vertex("Bob", {"DB"})
    g.add_vertex("Alice", {"DB"})
    g.add_vertex("Dave", {"AI"})
    g.add_vertex("Carol", {"ML"})
    g.add_vertex("Erin", {"CV"})
    g.add_vertex("Frank", {"AI"})
    # Published collaborations (edge weight = collaboration distance).
    g.add_edge("Bob", "Alice", 1.0)
    g.add_edge("Bob", "Dave", 2.0)
    g.add_edge("Dave", "Frank", 1.0)
    g.add_edge("Alice", "Carol", 1.0)
    g.add_edge("Carol", "Erin", 2.0)
    g.add_edge("Dave", "Erin", 2.0)
    return g


def build_private_graph() -> LabeledGraph:
    """Bob's private network: grant contacts not visible publicly.

    "Bob", "Alice" and "Erin" are portal nodes (they exist in the public
    graph too); "Grace" is known only to Bob.
    """
    g = LabeledGraph("bob-private")
    g.add_vertex("Bob", {"DB"})
    g.add_vertex("Alice")           # private view: no labels recorded
    g.add_vertex("Erin")
    g.add_vertex("Grace", {"AI"})   # private AI contact
    g.add_edge("Bob", "Grace", 1.0)
    g.add_edge("Grace", "Alice", 1.0)
    g.add_edge("Bob", "Erin", 1.0)  # private shortcut to a CV person
    return g


def main() -> None:
    public = build_public_graph()
    private = build_private_graph()
    query = ["DB", "AI", "CV"]
    tau = 3.0

    print(f"query {query} with distance bound tau={tau}\n")

    # 1. Private network alone: no answer (no CV expertise inside).
    private_only = blinks_search(private, query, tau)
    print(f"1. answers on Bob's private graph alone : {len(private_only)}")

    # 2. Public network alone: answers exist but are loose.
    public_only = blinks_search(public, query, tau)
    best_public = public_only[0] if public_only else None
    print(
        f"2. answers on the public graph alone    : {len(public_only)}"
        + (f" (best weight {best_public.weight():g})" if best_public else "")
    )

    # 3. PPKWS: index the public graph once, attach Bob's private graph,
    #    query the (never materialized) combined view.
    engine = PPKWS(public, sketch_k=4)
    engine.attach("bob", private)
    result = engine.blinks("bob", query, tau, k=3)
    print(f"3. public-private answers via PPKWS    : {len(result.answers)}")
    for ans in result.answers:
        leaves = {q: (m.vertex, m.distance) for q, m in ans.matches.items()}
        print(f"   root={ans.root!r} weight={ans.weight():g} matches={leaves}")

    b = result.breakdown
    print(
        f"\n   PPKWS step breakdown: PEval {b.peval*1e3:.2f}ms, "
        f"ARefine {b.arefine*1e3:.2f}ms, AComplete {b.acomplete*1e3:.2f}ms"
    )

    # Sanity: the combined graph agrees (this is what the baseline does —
    # and exactly what PPKWS avoids having to build per user).
    combined = combine(public, private)
    reference = blinks_search(combined, query, tau)
    print(f"   baseline on materialized combined graph finds {len(reference)} answers")


if __name__ == "__main__":
    main()
