"""Team formation on a collaboration network (r-clique semantics).

The r-clique semantic (Kargar & An) is the paper's motivating use case
for team formation: find a set of experts, one per required skill, who
are all close to each other.  On the public-private model a company's
*internal* collaboration graph (private) augments the public
collaboration network — the best team may mix internal people with
external collaborators reached through portal members.

This example generates a PP-DBLP-style dataset, runs PP-r-clique for a
multi-skill query and compares against the baseline that searches the
materialized combined graph directly.

Run:  python examples/team_formation.py
"""

from __future__ import annotations

import time

from repro import PPKWS
from repro.core import query_model_m2
from repro.datasets import generate_keyword_queries, ppdblp_like
from repro.graph import combine


def main() -> None:
    print("generating a PP-DBLP-style collaboration network ...")
    dataset = ppdblp_like(
        num_communities=40, community_size=40, num_labels=300,
        private_vertices=60, seed=2024,
    )
    public = dataset.public
    private = dataset.private("user0")
    print(f"  public : {public.num_vertices} researchers, {public.num_edges} collaborations")
    print(f"  private: {private.num_vertices} members (internal graph)")

    print("building the public index (PageRank -> PADS -> KPADS) ...")
    start = time.perf_counter()
    engine = PPKWS(public, sketch_k=2)
    print(f"  built in {time.perf_counter() - start:.1f}s "
          f"({engine.index.pads.total_entries} sketch entries)")

    attachment = engine.attach("company", private)
    print(f"  attached the private graph through {len(attachment.portals)} portal members")

    # Skill queries: every query mixes an internal specialty with skills
    # only available on the public network.
    queries = generate_keyword_queries(
        public, private, num_queries=3, keywords_per_query=3, tau=4.0, seed=7
    )
    combined = combine(public, private)

    for query in queries:
        skills = list(query.keywords)
        print(f"\nteam for skills {skills} (pairwise distance <= 2*tau) ...")
        start = time.perf_counter()
        result = engine.rclique("company", skills, query.tau, k=3)
        pp_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        baseline = query_model_m2(
            public, private, "rclique", skills, query.tau, 3, combined=combined
        )
        base_ms = (time.perf_counter() - start) * 1000

        if not result.answers:
            print("  no public-private team within the bound")
        for ans in result.answers:
            members = {q: m.vertex for q, m in ans.matches.items()}
            print(f"  team around {ans.root!r}: {members} "
                  f"(total distance {ans.weight():g})")
        print(f"  PPKWS {pp_ms:.1f}ms vs baseline {base_ms:.1f}ms "
              f"({base_ms / max(pp_ms, 1e-9):.1f}x) — "
              f"baseline found {len(baseline)} teams")


if __name__ == "__main__":
    main()
