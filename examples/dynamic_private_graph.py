"""Dynamic private graphs + index persistence + multi-keyword k-nk.

This example exercises the extension features beyond the paper's core:

1. build the public index once and persist it to disk (a production
   deployment indexes the public graph offline),
2. reload the index into a fresh engine (no rebuild),
3. mutate the attached private graph live — new collaborations appear,
   one is retracted — with incremental maintenance of the per-user
   state (the paper's stated future work on dynamic graphs),
4. run conjunctive and disjunctive multi-keyword k-nk queries against
   the evolving combined view.

Run:  python examples/dynamic_private_graph.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import PPKWS, PublicIndex
from repro.core import DynamicPrivateGraph, load_index, save_index
from repro.datasets import yago_like


def main() -> None:
    dataset = yago_like(num_vertices=2000, num_labels=150,
                        private_vertices=60, seed=314)
    public = dataset.public
    private = dataset.private("user0")

    # --- 1. offline: index the public graph and persist it --------------
    start = time.perf_counter()
    index = PublicIndex.build(public, k=2)
    build_s = time.perf_counter() - start
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "public-index.jsonl")
        save_index(index, path)
        size_kb = os.path.getsize(path) / 1024
        print(f"built index in {build_s:.1f}s, persisted {size_kb:.0f} KiB")

        # --- 2. online: reload, no rebuild ------------------------------
        start = time.perf_counter()
        loaded = load_index(public, path)
        print(f"reloaded index in {time.perf_counter() - start:.2f}s")

    engine = PPKWS(public, index=loaded)
    engine.attach("lab", private)
    dyn = DynamicPrivateGraph(engine, "lab")
    source = next(v for v in private.vertices() if isinstance(v, str))

    # --- 3. query, mutate, query again ----------------------------------
    keywords = ["t0", "t1"]
    before = engine.knk_multi("lab", source, keywords, k=5, mode="or")
    print(f"\nbefore mutation: {len(before.answer.matches)} matches for "
          f"{before.answer.keyword!r}: {before.answer.distances()}")

    # A new private collaborator carrying both keywords appears next door.
    dyn.add_edge(source, "lab:new-hire")
    dyn.add_labels("lab:new-hire", {"t0", "t1"})
    after = engine.knk_multi("lab", source, keywords, k=5, mode="and")
    print(f"after adding 'lab:new-hire': conjunctive matches "
          f"{[(m.vertex, m.distance) for m in after.answer.matches[:3]]}")
    assert after.answer.matches[0].vertex == "lab:new-hire"
    assert after.answer.matches[0].distance == 1.0

    # The collaboration is retracted — deletions trigger a consistent
    # rebuild of the per-user maps.
    dyn.remove_edge(source, "lab:new-hire")
    retracted = engine.knk_multi("lab", source, keywords, k=5, mode="and")
    survivors = [m.vertex for m in retracted.answer.matches]
    print(f"after retraction, 'lab:new-hire' reachable: "
          f"{'lab:new-hire' in survivors}")

    # --- 4. disjunction vs conjunction ----------------------------------
    disj = engine.knk_multi("lab", source, keywords, k=8, mode="or")
    conj = engine.knk_multi("lab", source, keywords, k=8, mode="and")
    print(f"\ndisjunctive top-8 distances: {disj.answer.distances()}")
    print(f"conjunctive top-8 distances: {conj.answer.distances()}")
    print("(conjunction is never closer than disjunction at each rank)")


if __name__ == "__main__":
    main()
