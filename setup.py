"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``bdist_wheel`` for PEP-517 editable installs;
this offline environment lacks it, so ``python setup.py develop`` (which
this shim enables) is the supported editable-install path.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
