#!/usr/bin/env python
"""Summarize a benchmark run's paper-shape headline numbers.

Reads the ``bench_results/*.txt`` reports produced by
``pytest benchmarks/ --benchmark-only`` and prints the one-line-per-
experiment summary used to fill EXPERIMENTS.md.  Pure text processing —
safe to run any time after a bench run.
"""

from __future__ import annotations

import os
import re
import sys


def main(directory: str = "bench_results") -> int:
    if not os.path.isdir(directory):
        print(f"no {directory}/ — run the benchmarks first", file=sys.stderr)
        return 1
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        with open(path, encoding="utf-8") as fh:
            content = fh.read()
        print(f"== {name}")
        for line in content.splitlines():
            if re.search(
                r"speedup:|overall shares|improvement|ratio ADS|approx", line
            ):
                print(f"   {line.strip()}")
        # table titles give context
        for match in re.finditer(r"^(Fig|Table|Ablation|Sweep)[^\n]*$",
                                 content, re.MULTILINE):
            print(f"   [{match.group(0)}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(*sys.argv[1:]))
