"""Freeze the engine-equivalence golden file.

Runs the shared workload (``tests/engine_equivalence_data.py``) against
the *current* pipelines and writes the canonicalized results to
``tests/data/engine_equivalence.json``.  The file was captured once,
immediately before the ``repro.core.engine`` refactor, and is the
refactor's bit-identity contract — re-run this script only when the
workload itself changes deliberately (and say so in the PR).

Usage::

    PYTHONPATH=src:. python scripts/capture_equivalence.py
"""

from __future__ import annotations

import json
import os
import sys
from collections import Counter

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from tests.engine_equivalence_data import capture_all  # noqa: E402

OUT = os.path.join(
    os.path.dirname(__file__), os.pardir, "tests", "data",
    "engine_equivalence.json",
)


def main() -> None:
    payload = capture_all(freeze=True)
    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")

    # Coverage summary: the golden file should pin degraded paths too.
    interrupted: Counter = Counter()
    answers = 0
    for per_seed in payload["seeds"].values():
        flat = []
        for name, value in per_seed.items():
            if isinstance(value, dict):  # the nested "ablation" section
                flat.extend(
                    (f"{name}/{inner}", runs)
                    for inner, runs in value.items()
                )
            else:
                flat.append((name, value))
        for semantics, runs in flat:
            for run in runs:
                result = run["result"]
                if result["degraded"]:
                    interrupted[
                        (semantics, result["interrupted_step"])
                    ] += 1
                answers += len(result.get("answers", []) or ()) or bool(
                    result.get("answer", {}).get("matches")
                )
    print(f"wrote {os.path.normpath(OUT)}")
    print(f"non-empty answer payloads: {answers}")
    for (semantics, step), n in sorted(interrupted.items()):
        print(f"degraded {semantics}@{step}: {n}")


if __name__ == "__main__":
    main()
