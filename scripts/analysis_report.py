#!/usr/bin/env python
"""Diff ``repro.analysis`` findings between two git revisions.

Extracts each revision into a temp directory with ``git archive``, runs
the *current* analyzer (the one on ``sys.path`` — so rule changes apply
uniformly to both sides) over ``src tests benchmarks`` in each, and
reports findings that were fixed, introduced, or carried over.  Findings
are keyed by ``(rule, path, message)`` — not line number — so pure code
motion does not show up as churn.

Usage::

    python scripts/analysis_report.py OLD_REV NEW_REV [--format text|json]

``NEW_REV`` may be ``WORKTREE`` to compare against the working tree
(including uncommitted changes).  Exit code 0 when nothing was
introduced, 1 when the new revision has findings the old one did not.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tarfile
import tempfile
from typing import Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis import analyze_paths  # noqa: E402

SCAN_ROOTS = ("src", "tests", "benchmarks")

Key = Tuple[str, str, str]


def _extract_revision(rev: str, dest: str) -> None:
    """Materialize ``rev`` under ``dest`` via ``git archive``."""
    archive = os.path.join(dest, "rev.tar")
    with open(archive, "wb") as fh:
        subprocess.run(
            ["git", "-C", REPO_ROOT, "archive", rev],
            stdout=fh,
            check=True,
        )
    with tarfile.open(archive) as tar:
        tar.extractall(dest)  # trusted input: our own repo's history
    os.unlink(archive)


def _findings_for_tree(root: str) -> Dict[Key, int]:
    """Run the analyzer over a tree; map (rule, relpath, message) -> line."""
    roots = [os.path.join(root, r) for r in SCAN_ROOTS if os.path.isdir(os.path.join(root, r))]
    result = analyze_paths(roots)
    out: Dict[Key, int] = {}
    for f in result.findings:
        rel = os.path.relpath(f.path, root)
        out[(f.rule, rel, f.message)] = f.line
    return out


def _findings_for_rev(rev: str) -> Dict[Key, int]:
    if rev == "WORKTREE":
        return _findings_for_tree(REPO_ROOT)
    with tempfile.TemporaryDirectory(prefix="ra-diff-") as tmp:
        _extract_revision(rev, tmp)
        return _findings_for_tree(tmp)


def _render_section(title: str, keys: List[Key], lines: Dict[Key, int]) -> List[str]:
    out = [f"{title} ({len(keys)}):"]
    for rule, path, message in sorted(keys):
        out.append(f"  {path}:{lines[(rule, path, message)]}: {rule} {message}")
    return out


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old_rev", help="baseline revision (e.g. origin/main)")
    parser.add_argument("new_rev", help="candidate revision, or WORKTREE")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    opts = parser.parse_args(argv)

    try:
        old = _findings_for_rev(opts.old_rev)
        new = _findings_for_rev(opts.new_rev)
    except subprocess.CalledProcessError as exc:
        print(f"git archive failed: {exc}", file=sys.stderr)
        return 2

    fixed = [k for k in old if k not in new]
    introduced = [k for k in new if k not in old]
    carried = [k for k in new if k in old]

    if opts.format == "json":
        doc = {
            "old_rev": opts.old_rev,
            "new_rev": opts.new_rev,
            "fixed": [
                {"rule": r, "path": p, "message": m} for r, p, m in sorted(fixed)
            ],
            "introduced": [
                {"rule": r, "path": p, "message": m, "line": new[(r, p, m)]}
                for r, p, m in sorted(introduced)
            ],
            "carried": [
                {"rule": r, "path": p, "message": m, "line": new[(r, p, m)]}
                for r, p, m in sorted(carried)
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"analysis diff: {opts.old_rev} -> {opts.new_rev}")
        for line in _render_section("fixed", fixed, old):
            print(line)
        for line in _render_section("introduced", introduced, new):
            print(line)
        for line in _render_section("carried over", carried, new):
            print(line)

    return 1 if introduced else 0


if __name__ == "__main__":
    raise SystemExit(main())
