#!/usr/bin/env python
"""Diff ``repro.analysis`` findings between two git revisions.

Extracts each revision into a temp directory with ``git archive``, runs
the *current* analyzer (the one on ``sys.path`` — so rule changes apply
uniformly to both sides) over ``src tests benchmarks`` in each, and
reports findings that were fixed, introduced, or carried over.  Findings
are keyed by ``(rule, path, message)`` — not line number — so pure code
motion does not show up as churn.

Usage::

    python scripts/analysis_report.py OLD_REV NEW_REV [--format text|json]
    python scripts/analysis_report.py --check-baseline analysis_baseline.json
    python scripts/analysis_report.py --update-baseline analysis_baseline.json

``NEW_REV`` may be ``WORKTREE`` to compare against the working tree
(including uncommitted changes).  Exit code 0 when nothing was
introduced, 1 when the new revision has findings the old one did not.

``--check-baseline`` is the CI ratchet: run the analyzer over the
working tree and fail (exit 1) only on findings missing from the
committed baseline; stale baseline entries (fixed findings still
listed) are reported as a shrink reminder but do not fail the build.
``--update-baseline`` rewrites the file from the current findings.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tarfile
import tempfile
from typing import Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis import analyze_paths  # noqa: E402
from repro.analysis.baseline import BaselineError, load_baseline  # noqa: E402

SCAN_ROOTS = ("src", "tests", "benchmarks")

Key = Tuple[str, str, str]


def _extract_revision(rev: str, dest: str) -> None:
    """Materialize ``rev`` under ``dest`` via ``git archive``."""
    archive = os.path.join(dest, "rev.tar")
    with open(archive, "wb") as fh:
        subprocess.run(
            ["git", "-C", REPO_ROOT, "archive", rev],
            stdout=fh,
            check=True,
        )
    with tarfile.open(archive) as tar:
        tar.extractall(dest)  # trusted input: our own repo's history
    os.unlink(archive)


def _findings_for_tree(root: str) -> Dict[Key, int]:
    """Run the analyzer over a tree; map (rule, relpath, message) -> line."""
    roots = [os.path.join(root, r) for r in SCAN_ROOTS if os.path.isdir(os.path.join(root, r))]
    result = analyze_paths(roots)
    out: Dict[Key, int] = {}
    for f in result.findings:
        rel = os.path.relpath(f.path, root)
        out[(f.rule, rel, f.message)] = f.line
    return out


def _findings_for_rev(rev: str) -> Dict[Key, int]:
    if rev == "WORKTREE":
        return _findings_for_tree(REPO_ROOT)
    with tempfile.TemporaryDirectory(prefix="ra-diff-") as tmp:
        _extract_revision(rev, tmp)
        return _findings_for_tree(tmp)


def _render_section(title: str, keys: List[Key], lines: Dict[Key, int]) -> List[str]:
    out = [f"{title} ({len(keys)}):"]
    for rule, path, message in sorted(keys):
        out.append(f"  {path}:{lines[(rule, path, message)]}: {rule} {message}")
    return out


def _check_baseline(baseline_path: str) -> int:
    """The CI ratchet: fail only on findings absent from the baseline."""
    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = _findings_for_tree(REPO_ROOT)
    introduced = [k for k in findings if k not in baseline]
    stale = sorted(k for k in baseline if k not in findings)
    tolerated = len(findings) - len(introduced)

    for line in _render_section("new (not in baseline)", introduced, findings):
        print(line)
    print(f"baselined ({tolerated}) tolerated")
    if stale:
        print(f"stale baseline entries ({len(stale)}) — the ratchet should")
        print(f"shrink: re-run with --update-baseline {baseline_path}")
        for rule, path, message in stale:
            print(f"  {path}: {rule} {message}")
    return 1 if introduced else 0


def _update_baseline(baseline_path: str) -> int:
    """Rewrite the baseline file from the working tree's findings."""
    findings = _findings_for_tree(REPO_ROOT)
    doc = {
        "version": 1,
        "comment": (
            "Known findings CI tolerates; key is (rule, path, message). "
            "This file may only shrink — see README 'Static analysis & "
            "typing'."
        ),
        "findings": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in sorted(findings)
        ],
    }
    with open(baseline_path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(findings)} finding(s) to {baseline_path}")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "old_rev", nargs="?", help="baseline revision (e.g. origin/main)"
    )
    parser.add_argument("new_rev", nargs="?", help="candidate revision, or WORKTREE")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--check-baseline",
        metavar="FILE",
        default=None,
        help="ratchet mode: fail only on worktree findings absent from FILE",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="FILE",
        default=None,
        help="rewrite FILE from the worktree's current findings",
    )
    opts = parser.parse_args(argv)

    if opts.update_baseline is not None:
        return _update_baseline(opts.update_baseline)
    if opts.check_baseline is not None:
        return _check_baseline(opts.check_baseline)
    if opts.old_rev is None or opts.new_rev is None:
        parser.print_usage(sys.stderr)
        print(
            "error: OLD_REV and NEW_REV are required outside baseline modes",
            file=sys.stderr,
        )
        return 2

    try:
        old = _findings_for_rev(opts.old_rev)
        new = _findings_for_rev(opts.new_rev)
    except subprocess.CalledProcessError as exc:
        print(f"git archive failed: {exc}", file=sys.stderr)
        return 2

    fixed = [k for k in old if k not in new]
    introduced = [k for k in new if k not in old]
    carried = [k for k in new if k in old]

    if opts.format == "json":
        doc = {
            "old_rev": opts.old_rev,
            "new_rev": opts.new_rev,
            "fixed": [
                {"rule": r, "path": p, "message": m} for r, p, m in sorted(fixed)
            ],
            "introduced": [
                {"rule": r, "path": p, "message": m, "line": new[(r, p, m)]}
                for r, p, m in sorted(introduced)
            ],
            "carried": [
                {"rule": r, "path": p, "message": m, "line": new[(r, p, m)]}
                for r, p, m in sorted(carried)
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"analysis diff: {opts.old_rev} -> {opts.new_rev}")
        for line in _render_section("fixed", fixed, old):
            print(line)
        for line in _render_section("introduced", introduced, new):
            print(line)
        for line in _render_section("carried over", carried, new):
            print(line)

    return 1 if introduced else 0


if __name__ == "__main__":
    raise SystemExit(main())
