"""Tests for public-index persistence (JSON-lines format)."""

from __future__ import annotations

import json

import pytest

from repro.core import PPKWS, PublicIndex, load_index, save_index
from repro.exceptions import IndexBuildError
from repro.graph import LabeledGraph
from tests.conftest import random_connected_graph


@pytest.fixture
def index_and_graph():
    g = random_connected_graph(30, 10, seed=77)
    return PublicIndex.build(g, k=2), g


class TestRoundTrip:
    def test_pads_identical(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        loaded = load_index(g, path)
        assert loaded.pads.entries == index.pads.entries
        assert loaded.pads.k == index.pads.k

    def test_kpads_identical(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        loaded = load_index(g, path)
        assert loaded.kpads.entries == index.kpads.entries
        assert loaded.kpads.witnesses == index.kpads.witnesses
        for t in index.kpads.candidates:
            for c, lst in index.kpads.candidates[t].items():
                assert loaded.kpads.candidates[t][c] == [
                    (d, v) for d, v in lst
                ]

    def test_pagerank_identical(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        loaded = load_index(g, path)
        for v, s in index.pagerank_scores.items():
            assert loaded.pagerank_scores[v] == pytest.approx(s)

    def test_engine_uses_loaded_index(self, tmp_path, small_public_private):
        pub, priv = small_public_private
        index = PublicIndex.build(pub, k=4)
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        loaded = load_index(pub, path)
        e1 = PPKWS(pub, index=index)
        e2 = PPKWS(pub, index=loaded)
        e1.attach("bob", priv)
        e2.attach("bob", priv.copy())
        r1 = e1.blinks("bob", ["db", "ai"], tau=5.0)
        r2 = e2.blinks("bob", ["db", "ai"], tau=5.0)
        assert [a.sort_key() for a in r1.answers] == [
            a.sort_key() for a in r2.answers
        ]

    def test_string_vertices(self, tmp_path, paper_public_graph):
        index = PublicIndex.build(paper_public_graph, k=2)
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        loaded = load_index(paper_public_graph, path)
        assert loaded.pads.entries == index.pads.entries


class TestErrors:
    def test_vertex_count_mismatch(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        other = LabeledGraph.from_edges([(1, 2)])
        with pytest.raises(IndexBuildError):
            load_index(other, path)

    def test_missing_header(self, tmp_path, index_and_graph):
        _, g = index_and_graph
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"record": "pagerank", "v": "i:1", "score": 1}) + "\n")
        with pytest.raises(IndexBuildError):
            load_index(g, path)

    def test_bad_version(self, tmp_path, index_and_graph):
        _, g = index_and_graph
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"record": "header", "version": 99}) + "\n")
        with pytest.raises(IndexBuildError):
            load_index(g, path)

    def test_unknown_record(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({
                "record": "header", "version": 1, "k": 2,
                "kpads_per_center": 4, "num_vertices": g.num_vertices,
            }) + "\n" + json.dumps({"record": "mystery"}) + "\n"
        )
        with pytest.raises(IndexBuildError):
            load_index(g, path)

    def test_unsupported_vertex_type(self, tmp_path):
        g = LabeledGraph.from_edges([((1, 2), (3, 4))])  # tuple vertices
        index = PublicIndex.build(g, k=1)
        with pytest.raises(IndexBuildError):
            save_index(index, tmp_path / "idx.jsonl")

    def test_malformed_vertex_token(self):
        from repro.core.persist import _decode_vertex

        with pytest.raises(IndexBuildError):
            _decode_vertex("x:1")
