"""Tests for ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.bench import (
    ascii_bars,
    ascii_breakdown_bars,
    ascii_grouped_bars,
    render_breakdown,
    render_query_comparison,
)
from repro.bench.harness import QueryTiming
from repro.core import StepBreakdown


class TestAsciiBars:
    def test_basic_render(self):
        out = ascii_bars("T", ["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[2].startswith("a  |")
        assert lines[3].startswith("bb |")
        # the larger value gets the longer bar
        assert lines[3].count("#") > lines[2].count("#")

    def test_log_scale_footer(self):
        out = ascii_bars("T", ["a", "b"], [1.0, 1000.0], log=True, unit="ms")
        assert "(log scale" in out
        assert "1000" in out

    def test_zero_values(self):
        out = ascii_bars("T", ["a"], [0.0])
        assert "a |" in out

    def test_empty(self):
        assert ascii_bars("T", [], []) == "T\n-\n"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_bars("T", ["a"], [1.0, 2.0])


class TestGroupedBars:
    def test_two_series_per_group(self):
        out = ascii_grouped_bars(
            "cmp", ["Q1", "Q2"],
            [("PP", [1.0, 2.0]), ("Base", [10.0, 20.0])],
        )
        assert out.count("PP ") == 2
        assert out.count("Base") == 2

    def test_empty_series(self):
        out = ascii_grouped_bars("cmp", [], [("PP", [])])
        assert out.startswith("cmp")


class TestBreakdownBars:
    def test_stacked_characters(self):
        out = ascii_breakdown_bars(
            "bd", ["Q1"], [(0.5, 0.25, 0.25)], width=20
        )
        line = [ln for ln in out.splitlines() if ln.startswith("Q1")][0]
        assert line.count("P") == 10
        assert line.count("R") == 5
        assert line.count("C") == 5

    def test_zero_total(self):
        out = ascii_breakdown_bars("bd", ["Q1"], [(0.0, 0.0, 0.0)])
        assert "Q1" in out

    def test_legend_present(self):
        out = ascii_breakdown_bars("bd", [], [])
        assert "legend" in out


class TestChartsEmbeddedInReports:
    def _timing(self):
        return QueryTiming(
            "Q1", 0.01, 0.1, StepBreakdown(0.005, 0.003, 0.002), 3, 2
        )

    def test_comparison_includes_chart(self):
        out = render_query_comparison("t", [self._timing()])
        assert "per-query times" in out
        assert "#" in out

    def test_breakdown_includes_chart(self):
        out = render_breakdown("t", [self._timing()])
        assert "per-query step shares" in out
        assert "P" in out and "R" in out and "C" in out
