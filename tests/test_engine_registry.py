"""Edge cases of the process-wide semantics registry.

The registry is the extension seam of the whole engine refactor: a bad
plugin must fail loudly at registration time (not mid-query), an unknown
name must map to ``bad_request`` on the wire, and a *good* plugin must
surface in ``help`` and as a wire op without the service changing.
"""

from __future__ import annotations

import pytest

import repro.core.engine as engine_mod
from repro.core.engine import (
    SemanticsSpec,
    StepSpec,
    register_semantics,
    registered_semantics,
    semantics_spec,
)
from repro.core.framework import QueryResult
from repro.exceptions import QueryError
from repro.service import PPKWSService

BUILTINS = ("banks", "blinks", "knk", "knk_multi", "rclique", "truss")


def make_spec(name, steps=None):
    """A minimal structurally valid spec (answers = the params echo)."""

    def _step(ctx):
        ctx.answers = [ctx.params["echo"]]

    return SemanticsSpec(
        name=name,
        summary=f"test semantics {name}",
        steps=steps if steps is not None else (StepSpec("peval", _step),),
        validate=lambda ctx: None,
        init=lambda ctx: None,
        salvage=lambda ctx, step: [],
        count_answers=len,
        result_type=QueryResult,
        wire_required=("network", "owner", "echo"),
        wire_optional=(),
        wire_params=lambda req: {"echo": req["echo"]},
        wire_payload=lambda res: {"answers": list(res.answers)},
        wire_cache_params=lambda req: (req["echo"],),
    )


@pytest.fixture
def scratch_registry():
    """Roll back any names a test registers on top of the builtins."""
    before = set(registered_semantics())
    yield
    with engine_mod._REGISTRY_LOCK:
        for name in set(engine_mod._REGISTRY) - before:
            del engine_mod._REGISTRY[name]


class TestRegistration:
    def test_builtins_are_registered_sorted(self):
        assert registered_semantics() == BUILTINS

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate semantics 'blinks'"):
            register_semantics(make_spec("blinks"))

    def test_spec_without_steps_rejected(self):
        with pytest.raises(ValueError, match="declares no steps"):
            register_semantics(make_spec("stepless", steps=()))

    def test_unnamed_step_rejected(self):
        bad = (StepSpec("", lambda ctx: None),)
        with pytest.raises(ValueError, match="unnamed step"):
            register_semantics(make_spec("anon-step", steps=bad))

    def test_step_missing_run_callable_rejected(self):
        bad = (StepSpec("peval", None),)  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="missing its run callable"):
            register_semantics(make_spec("no-run", steps=bad))

    def test_duplicate_step_names_rejected(self):
        bad = (
            StepSpec("peval", lambda ctx: None),
            StepSpec("peval", lambda ctx: None),
        )
        with pytest.raises(ValueError, match="declares step 'peval' twice"):
            register_semantics(make_spec("twice", steps=bad))

    def test_failed_registration_leaves_registry_untouched(self):
        with pytest.raises(ValueError):
            register_semantics(make_spec("ghost", steps=()))
        assert "ghost" not in registered_semantics()


class TestLookup:
    def test_unknown_semantics_raises_query_error_listing_known(self):
        with pytest.raises(QueryError, match="unknown semantics 'nope'"):
            semantics_spec("nope")
        with pytest.raises(QueryError, match="blinks"):
            semantics_spec("nope")

    def test_unknown_semantics_on_wire_is_bad_request(self, small_public_private):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)
        resp = svc.execute({
            "op": "nope", "network": "net", "owner": "bob", "keywords": ["db"],
        })
        assert resp["status"] == "error"
        assert resp["code"] == "bad_request"
        assert "unknown op" in resp["error"]


class TestPluginOnTheWire:
    def test_registered_plugin_becomes_an_op(
        self, scratch_registry, small_public_private
    ):
        register_semantics(make_spec("echo_test"))
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)

        helped = svc.execute({"op": "help"})
        assert "echo_test" in helped["ops"]
        assert helped["ops"]["echo_test"]["required"] == [
            "network", "owner", "echo",
        ]

        resp = svc.execute({
            "op": "echo_test", "network": "net", "owner": "bob",
            "echo": "marco",
        })
        assert resp["status"] == "ok"
        assert resp["answers"] == ["marco"]

    def test_plugin_colliding_with_static_op_fails_loudly(
        self, scratch_registry, small_public_private
    ):
        register_semantics(make_spec("help"))
        pub, _ = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        # execute() never raises: the collision surfaces as an internal
        # error on every request until the offending plugin is removed.
        resp = svc.execute({"op": "help"})
        assert resp["status"] == "error"
        assert resp["code"] == "internal"
        assert "collides with a built-in op" in resp["error"]
