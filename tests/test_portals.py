"""Tests for portal distance maps, PKD/vertex-portal maps and oracles.

The central exactness property (checked here against brute force): the
Algo-7 fixpoint map equals all-pairs shortest distances *between portals*
on the materialized combined graph, and Eq. 4/5 refinement with an exact
public provider reproduces true combined-graph distances for private
vertex pairs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import INF, LabeledGraph, combine, dijkstra, portal_nodes
from repro.portals import (
    CombinedDistanceOracle,
    ExactPublicDistance,
    PortalDistanceMap,
    all_pairs_portal_distances,
    build_private_maps,
    refine_portal_distances,
)
from repro.sketches import build_kpads, build_pads
from repro.portals.oracle import SketchPublicDistance
from tests.conftest import random_connected_graph


def _random_public_private(seed: int, n_pub: int = 30, n_priv: int = 12):
    """Random overlapping pair: private vertices 0..overlap-1 are shared."""
    import random as _random

    rng = _random.Random(seed)
    pub = random_connected_graph(n_pub, n_pub // 3, seed)
    priv = LabeledGraph(f"priv{seed}")
    overlap = rng.randint(2, 4)
    portals = rng.sample(range(n_pub), overlap)
    locals_ = [f"x{i}" for i in range(n_priv - overlap)]
    verts = portals + locals_
    for i, v in enumerate(verts[1:], start=1):
        priv.add_edge(v, verts[rng.randrange(i)], rng.choice([1.0, 2.0]))
    for v in locals_:
        if rng.random() < 0.7:
            priv.add_labels(v, rng.sample(["a", "b", "c"], rng.randint(1, 2)))
    return pub, priv


class TestPortalDistanceMap:
    def test_diagonal_zero(self):
        m = PortalDistanceMap([1, 2])
        assert m.get(1, 1) == 0.0

    def test_symmetric_set_get(self):
        m = PortalDistanceMap([1, 2])
        m.set(1, 2, 3.0)
        assert m.get(1, 2) == 3.0
        assert m.get(2, 1) == 3.0

    def test_missing_pair_inf(self):
        m = PortalDistanceMap([1, 2, 3])
        assert m.get(1, 3) == INF

    def test_improve(self):
        m = PortalDistanceMap([1, 2])
        assert m.improve(1, 2, 5.0)
        assert not m.improve(1, 2, 6.0)
        assert m.improve(2, 1, 4.0)
        assert m.get(1, 2) == 4.0
        assert not m.improve(1, 1, 0.0)

    def test_pairs_iterates_once(self):
        m = PortalDistanceMap([1, 2, 3])
        m.set(1, 2, 1.0)
        m.set(2, 3, 2.0)
        pairs = list(m.pairs())
        assert len(pairs) == 2
        assert len(m) == 2

    def test_copy_independent(self):
        m = PortalDistanceMap([1, 2])
        m.set(1, 2, 1.0)
        c = m.copy()
        c.set(1, 2, 0.5)
        assert m.get(1, 2) == 1.0

    def test_mixed_vertex_types(self):
        m = PortalDistanceMap([1, "a"])
        m.set(1, "a", 2.0)
        assert m.get("a", 1) == 2.0


class TestAllPairsPortalDistances:
    def test_matches_dijkstra(self, paper_public_graph):
        portals = ["p1", "p2", "p4"]
        pmap = all_pairs_portal_distances(paper_public_graph, portals)
        for p in portals:
            exact = dijkstra(paper_public_graph, p)
            for q in portals:
                assert pmap.get(p, q) == pytest.approx(exact[q])

    def test_absent_portals_unreachable(self, paper_public_graph):
        pmap = all_pairs_portal_distances(paper_public_graph, ["p1", "ghost"])
        assert pmap.get("p1", "ghost") == INF


class TestRefinePortalDistances:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 4000))
    def test_fixpoint_equals_combined_dijkstra(self, seed):
        """Algo 7 output == true portal distances on the combined graph."""
        pub, priv = _random_public_private(seed)
        portals = portal_nodes(pub, priv)
        pub_map = all_pairs_portal_distances(pub, portals)
        priv_map = all_pairs_portal_distances(priv, portals)
        combined_map, refined = refine_portal_distances(pub_map, priv_map)
        gc = combine(pub, priv)
        for p in portals:
            exact = dijkstra(gc, p)
            for q in portals:
                assert combined_map.get(p, q) == pytest.approx(
                    exact.get(q, INF)
                ), f"portal pair ({p},{q}) wrong"

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 4000))
    def test_refined_pairs_are_strict_improvements(self, seed):
        pub, priv = _random_public_private(seed)
        portals = portal_nodes(pub, priv)
        pub_map = all_pairs_portal_distances(pub, portals)
        priv_map = all_pairs_portal_distances(priv, portals)
        combined_map, refined = refine_portal_distances(pub_map, priv_map)
        for p, q in refined:
            assert combined_map.get(p, q) < priv_map.get(p, q)
        # and both orientations are present
        assert all((q, p) in refined for p, q in refined)


class TestPrivateMaps:
    def test_vertex_portal_distances_exact(self, small_public_private):
        pub, priv = small_public_private
        portals = portal_nodes(pub, priv)
        _, vpm = build_private_maps(priv, portals)
        for p in portals:
            exact = dijkstra(priv, p)
            for v in priv.vertices():
                assert vpm.get(v, p) == pytest.approx(exact.get(v, INF))

    def test_pkd_nearest_keyword_vertex(self, small_public_private):
        pub, priv = small_public_private
        portals = portal_nodes(pub, priv)
        pkd, _ = build_private_maps(priv, portals)
        # from portal 5, nearest 'cv' vertex is x3 at distance 1
        entry = pkd.get(5, "cv")
        assert entry is not None
        assert entry.vertex == "x3"
        assert entry.distance == 1.0

    def test_pkd_missing_keyword(self, small_public_private):
        pub, priv = small_public_private
        portals = portal_nodes(pub, priv)
        pkd, _ = build_private_maps(priv, portals)
        assert pkd.get(5, "nothing") is None
        assert pkd.distance(5, "nothing") == INF

    def test_lengths(self, small_public_private):
        pub, priv = small_public_private
        portals = portal_nodes(pub, priv)
        pkd, vpm = build_private_maps(priv, portals)
        assert len(vpm) == priv.num_vertices * len(portals)
        assert len(pkd) > 0


class TestExactPublicDistance:
    def test_vertex_distance(self, paper_public_graph):
        provider = ExactPublicDistance(paper_public_graph)
        exact = dijkstra(paper_public_graph, "v0")
        assert provider.vertex_distance("v0", "v7") == pytest.approx(exact["v7"])

    def test_unknown_vertex_inf(self, paper_public_graph):
        provider = ExactPublicDistance(paper_public_graph)
        assert provider.vertex_distance("v0", "ghost") == INF

    def test_keyword_distance_with_witness(self, paper_public_graph):
        provider = ExactPublicDistance(paper_public_graph)
        d, w = provider.keyword_distance_with_witness("v13", "c")
        assert d == 1.0
        assert w == "v4"

    def test_missing_keyword(self, paper_public_graph):
        provider = ExactPublicDistance(paper_public_graph)
        assert provider.keyword_distance("v0", "zzz") == INF


def _build_oracle(pub, priv, exact=False):
    portals = portal_nodes(pub, priv)
    pub_map = all_pairs_portal_distances(pub, portals)
    priv_map = all_pairs_portal_distances(priv, portals)
    combined_map, refined = refine_portal_distances(pub_map, priv_map)
    pkd, vpm = build_private_maps(priv, portals)
    if exact:

        class _ExactAsSketch:
            def __init__(self, graph):
                self._p = ExactPublicDistance(graph)

            def vertex_distance(self, u, v):
                return self._p.vertex_distance(u, v)

            def keyword_distance(self, v, t):
                return self._p.keyword_distance(v, t)

            def keyword_distance_with_witness(self, v, t):
                return self._p.keyword_distance_with_witness(v, t)

        provider = _ExactAsSketch(pub)
    else:
        pads = build_pads(pub, k=3)
        provider = SketchPublicDistance(pads, build_kpads(pub, pads))
    return CombinedDistanceOracle(priv, combined_map, vpm, pkd, provider), refined


class TestCombinedOracle:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 3000))
    def test_refine_pair_exact_on_private_pairs(self, seed):
        """Eq. 4 with d'(v1,v2) as the upper bound gives dc(v1,v2) exactly."""
        pub, priv = _random_public_private(seed)
        oracle, _ = _build_oracle(pub, priv, exact=True)
        gc = combine(pub, priv)
        verts = list(priv.vertices())[:6]
        for v1 in verts:
            d_priv = dijkstra(priv, v1)
            d_gc = dijkstra(gc, v1)
            for v2 in verts:
                upper = d_priv.get(v2, INF)
                refined = oracle.refine_pair(v1, v2, upper)
                assert refined == pytest.approx(d_gc.get(v2, INF)), (v1, v2)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 3000))
    def test_refine_pair_restricted_equals_full(self, seed):
        """Lemma VI.1: restricting to refined pairs loses nothing."""
        pub, priv = _random_public_private(seed)
        oracle, refined_pairs = _build_oracle(pub, priv, exact=True)
        verts = list(priv.vertices())[:6]
        for v1 in verts:
            d_priv = dijkstra(priv, v1)
            for v2 in verts:
                upper = d_priv.get(v2, INF)
                full = oracle.refine_pair(v1, v2, upper)
                by_source = {}
                for pi, pj in refined_pairs:
                    by_source.setdefault(pi, []).append(pj)
                restricted = oracle.refine_pair(
                    v1, v2, upper, pairs_by_source=by_source
                )
                assert restricted == pytest.approx(full)

    def test_refine_vertex_keyword(self, small_public_private):
        pub, priv = small_public_private
        oracle, refined = _build_oracle(pub, priv, exact=True)
        gc = combine(pub, priv)
        # true dc(x1, 'cv'): x1 -> x2 -> x4 -> 5 -> x3 = 4 within private,
        # refined paths may shortcut through the public side.
        d_gc = dijkstra(gc, "x1")
        true = min(d_gc[v] for v in gc.vertices_with_label("cv") if v in priv)
        d_priv = dijkstra(priv, "x1")
        upper = min(
            (d_priv.get(v, INF) for v in priv.vertices_with_label("cv")),
            default=INF,
        )
        refined_d = oracle.refine_vertex_keyword("x1", "cv", upper)
        assert refined_d == pytest.approx(true)

    def test_private_to_public_vertex(self, small_public_private):
        pub, priv = small_public_private
        oracle, _ = _build_oracle(pub, priv, exact=True)
        gc = combine(pub, priv)
        d_gc = dijkstra(gc, "x1")
        got = oracle.private_to_public_vertex("x1", 0)
        # paths must cross a portal, which on the combined graph is true
        # anyway for private->public-only vertices
        assert got == pytest.approx(d_gc[0])

    def test_private_to_public_keyword_witness(self, small_public_private):
        pub, priv = small_public_private
        oracle, _ = _build_oracle(pub, priv, exact=True)
        d, w = oracle.private_to_public_keyword("x1", "ml")
        assert w == 5  # vertex 5 (portal) carries 'ml' in the public graph
        assert d == pytest.approx(3.0)  # x1-x2-x4-5

    def test_sketch_provider_upper_bounds(self, small_public_private):
        pub, priv = small_public_private
        oracle_est, _ = _build_oracle(pub, priv, exact=False)
        oracle_exact, _ = _build_oracle(pub, priv, exact=True)
        for v in ("x1", "x2", "x3"):
            for t in ("db", "ai", "cv", "ml"):
                est, _ = oracle_est.private_to_public_keyword(v, t)
                exact, _ = oracle_exact.private_to_public_keyword(v, t)
                assert est >= exact - 1e-9
