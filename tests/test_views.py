"""Tests for the lazy combined-graph view."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EdgeNotFoundError, VertexNotFoundError
from repro.graph import LabeledGraph, combine, combine_lazy, dijkstra
from repro.semantics import blinks_search, knk_search, rclique_search
from tests.conftest import random_connected_graph


@pytest.fixture
def view(small_public_private):
    pub, priv = small_public_private
    return combine_lazy(pub, priv), combine(pub, priv)


class TestViewStructure:
    def test_vertex_counts_match_materialized(self, view):
        lazy, solid = view
        assert lazy.num_vertices == solid.num_vertices
        assert lazy.num_edges == solid.num_edges
        assert lazy.size == solid.size
        assert len(lazy) == solid.num_vertices

    def test_vertices_each_once(self, view):
        lazy, solid = view
        vs = list(lazy.vertices())
        assert len(vs) == len(set(vs))
        assert set(vs) == set(solid.vertices())

    def test_contains(self, view):
        lazy, _ = view
        assert 2 in lazy          # portal
        assert "x1" in lazy       # private-only
        assert 0 in lazy          # public-only
        assert "ghost" not in lazy

    def test_edges_match(self, view):
        lazy, solid = view
        lazy_edges = {frozenset((u, v)): w for u, v, w in lazy.edges()}
        solid_edges = {frozenset((u, v)): w for u, v, w in solid.edges()}
        assert lazy_edges == solid_edges

    def test_neighbor_items_merge(self, view):
        lazy, solid = view
        for v in lazy.vertices():
            assert dict(lazy.neighbor_items(v)) == {
                u: solid.weight(v, u) for u in solid.neighbors(v)
            }
            assert lazy.degree(v) == solid.degree(v)

    def test_unknown_vertex_raises(self, view):
        lazy, _ = view
        with pytest.raises(VertexNotFoundError):
            list(lazy.neighbor_items("ghost"))
        with pytest.raises(VertexNotFoundError):
            lazy.labels("ghost")

    def test_weight_min_and_missing(self):
        pub = LabeledGraph()
        pub.add_edge(1, 2, 5.0)
        priv = LabeledGraph()
        priv.add_edge(1, 2, 2.0)
        lazy = combine_lazy(pub, priv)
        assert lazy.weight(1, 2) == 2.0
        with pytest.raises(EdgeNotFoundError):
            lazy.weight(1, 99)


class TestViewLabels:
    def test_label_union_on_portals(self):
        pub = LabeledGraph()
        pub.add_vertex(1, {"pub"})
        priv = LabeledGraph()
        priv.add_vertex(1, {"priv"})
        priv.add_edge(1, "x")
        pub.add_edge(1, 2)
        lazy = combine_lazy(pub, priv)
        assert lazy.labels(1) == {"pub", "priv"}
        assert lazy.has_label(1, "pub") and lazy.has_label(1, "priv")

    def test_inverted_index_union(self, view):
        lazy, solid = view
        for label in lazy.label_universe():
            assert lazy.vertices_with_label(label) == (
                solid.vertices_with_label(label)
            )
            assert lazy.label_frequency(label) == solid.label_frequency(label)

    def test_stats(self, view):
        lazy, solid = view
        assert lazy.stats()["num_vertices"] == solid.num_vertices


class TestAlgorithmsOnView:
    def test_dijkstra_identical(self, view):
        lazy, solid = view
        for source in (2, "x1", 0):
            assert dijkstra(lazy, source) == dijkstra(solid, source)

    def test_blinks_identical(self, view):
        lazy, solid = view
        a1 = blinks_search(lazy, ["db", "ai"], tau=4.0)
        a2 = blinks_search(solid, ["db", "ai"], tau=4.0)
        assert [a.sort_key() for a in a1] == [a.sort_key() for a in a2]

    def test_rclique_identical(self, view):
        lazy, solid = view
        a1 = rclique_search(lazy, ["db", "cv"], tau=5.0, k=5)
        a2 = rclique_search(solid, ["db", "cv"], tau=5.0, k=5)
        assert [a.sort_key() for a in a1] == [a.sort_key() for a in a2]

    def test_knk_identical(self, view):
        lazy, solid = view
        a1 = knk_search(lazy, "x1", "cv", k=3)
        a2 = knk_search(solid, "x1", "cv", k=3)
        assert a1.distances() == a2.distances()

    def test_materialize_roundtrip(self, view):
        lazy, solid = view
        mat = lazy.materialize()
        assert mat.num_vertices == solid.num_vertices
        assert mat.num_edges == solid.num_edges

    def test_view_reflects_mutations(self, small_public_private):
        pub, priv = small_public_private
        lazy = combine_lazy(pub, priv)
        before = lazy.num_vertices
        priv.add_edge("x1", "brand-new")
        assert lazy.num_vertices == before + 1
        assert "brand-new" in lazy


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000))
def test_view_equals_materialized_property(seed):
    pub = random_connected_graph(20, 6, seed)
    priv = random_connected_graph(8, 2, seed + 1)  # overlaps on 0..7
    lazy = combine_lazy(pub, priv)
    solid = combine(pub, priv)
    assert lazy.num_vertices == solid.num_vertices
    assert lazy.num_edges == solid.num_edges
    assert dijkstra(lazy, 0) == dijkstra(solid, 0)
