"""Tests for the interprocedural layer (summaries, flow, RA009-RA012).

Complements ``tests/test_analysis.py`` (which runs the good/bad fixture
pairs for every rule): this module unit-tests the summary extractor and
the fixpoints directly, pins the suppression anchor edge cases the flow
rules rely on, and covers the new CLI surface (SARIF, ``--baseline``,
empty ``--select``) plus the baseline ratchet script modes.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source, build_flow
from repro.analysis.__main__ import main
from repro.analysis.baseline import (
    BaselineError,
    finding_key,
    load_baseline,
    new_findings,
    render_baseline,
)
from repro.analysis.engine import (
    Finding,
    Rule,
    line_anchors,
    parse_context,
)
from repro.analysis.rules import rules_by_id
from repro.analysis.rules.flow_locks import BLOCKING_ALLOWLIST
from repro.analysis.summaries import summarize_module

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def _summaries(source: str, path: str = "src/repro/fake.py"):
    module = summarize_module(parse_context(source, path))
    return {fn.qualname: fn for fn in module.functions}


def _flow(source: str, path: str = "src/repro/fake.py"):
    return build_flow([parse_context(source, path)])


# ----------------------------------------------------------------------
# per-function summaries
# ----------------------------------------------------------------------
class TestSummaries:
    def test_lock_tokens_are_class_qualified(self):
        fns = _summaries(
            "import threading\n\n\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n\n"
            "    def get(self):\n"
            "        with self._lock:\n"
            "            return 1\n"
        )
        locks = fns["Cache.get"].locks
        assert [lu.token for lu in locks] == ["Cache._lock"]
        assert locks[0].exclusive

    def test_rwlock_sides_get_mode_suffixes(self):
        fns = _summaries(
            "class Svc:\n"
            "    def read(self):\n"
            "        with self._net_lock.read_locked():\n"
            "            return 1\n\n"
            "    def write(self):\n"
            "        with self._net_lock.write_locked():\n"
            "            return 2\n"
        )
        read = fns["Svc.read"].locks[0]
        write = fns["Svc.write"].locks[0]
        assert read.token == "Svc._net_lock:read" and not read.exclusive
        assert write.token == "Svc._net_lock:write" and write.exclusive

    def test_rwlock_factory_call_chain_resolves(self):
        # The shape service.py uses: a per-network lock factory.
        fns = _summaries(
            "class Svc:\n"
            "    def write(self, name):\n"
            "        with self._network_lock(name).write_locked():\n"
            "            return 1\n"
        )
        assert fns["Svc.write"].locks[0].token == "Svc._network_lock:write"

    def test_held_set_tracks_nesting(self):
        fns = _summaries(
            "class S:\n"
            "    def f(self):\n"
            "        with self._a_lock:\n"
            "            with self._b_lock:\n"
            "                pass\n"
        )
        by_token = {lu.token: lu for lu in fns["S.f"].locks}
        assert by_token["S._a_lock"].held == frozenset()
        assert by_token["S._b_lock"].held == frozenset({"S._a_lock"})

    def test_blocking_catalogue_records_held_locks(self):
        fns = _summaries(
            "import copy\nimport threading\n\n\n"
            "class C:\n"
            "    def f(self, x):\n"
            "        with self._lock:\n"
            "            return copy.deepcopy(x)\n"
        )
        op = fns["C.f"].blocking[0]
        assert op.kind == "deepcopy"
        assert op.held == frozenset({"C._lock"})

    def test_condvar_wait_under_its_own_lock_is_not_blocking(self):
        fns = _summaries(
            "class RW:\n"
            "    def acquire(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait()\n"
        )
        assert fns["RW.acquire"].blocking == []

    def test_wait_on_foreign_object_is_blocking(self):
        fns = _summaries(
            "class P:\n"
            "    def join(self, worker):\n"
            "        worker.done.wait()\n"
        )
        assert [op.kind for op in fns["P.join"].blocking] == ["wait"]

    def test_budget_param_and_forwarding_detected(self):
        fns = _summaries(
            "def outer(graph, budget=None):\n"
            "    inner(graph, budget=budget)\n"
            "    inner(graph, budget)\n"
            "    inner(graph)\n\n\n"
            "def inner(graph, budget=None):\n"
            "    return graph\n"
        )
        outer = fns["outer"]
        assert outer.has_budget_param
        assert [c.passes_budget for c in outer.calls] == [True, True, False]

    def test_nested_def_does_not_inherit_held_locks(self):
        fns = _summaries(
            "import copy\n\n\n"
            "class C:\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            def callback(x):\n"
            "                return copy.deepcopy(x)\n"
            "            return callback\n"
        )
        nested = fns["C.f.<locals>.callback"]
        assert nested.blocking[0].held == frozenset()

    def test_expansion_heuristic_matches_ra004(self):
        fns = _summaries(
            "import heapq\n\n\n"
            "def sweep(frontier):\n"
            "    while frontier:\n"
            "        heapq.heappop(frontier)\n\n\n"
            "def flat(items):\n"
            "    return [i for i in items]\n"
        )
        assert fns["sweep"].expands
        assert not fns["flat"].expands


# ----------------------------------------------------------------------
# the fixpoints
# ----------------------------------------------------------------------
class TestProjectFlow:
    def test_acquired_tokens_are_transitive(self):
        flow = _flow(
            "class S:\n"
            "    def a(self):\n"
            "        with self._a_lock:\n"
            "            return self.b()\n\n"
            "    def b(self):\n"
            "        with self._b_lock:\n"
            "            return 1\n"
        )
        (key_a,) = [k for k in flow.functions if k[1] == "S.a"]
        assert set(flow.acquired_tokens(key_a)) == {"S._a_lock", "S._b_lock"}

    def test_block_reason_reports_the_chain(self):
        flow = _flow(
            "class J:\n"
            "    def outer(self):\n"
            "        return self.middle()\n\n"
            "    def middle(self):\n"
            "        return self.leaf()\n\n"
            "    def leaf(self):\n"
            "        with open('x') as fh:\n"
            "            return fh.read()\n"
        )
        (key,) = [k for k in flow.functions if k[1] == "J.outer"]
        chain = flow.block_reason(key)
        assert chain is not None
        assert chain[:2] == ("J.middle", "J.leaf")
        assert "file-io" in chain[-1]

    def test_recursion_terminates(self):
        flow = _flow(
            "def ping(n):\n"
            "    return pong(n - 1)\n\n\n"
            "def pong(n):\n"
            "    return ping(n - 1)\n"
        )
        for key in flow.functions:
            assert flow.block_reason(key) is None
            assert flow.acquired_tokens(key) == {}

    def test_cross_file_cycle_detected(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "alpha.py").write_text(
            "class A:\n"
            "    def fwd(self, other):\n"
            "        with self._a_lock:\n"
            "            other.take_b_then_a(self)\n\n"
            "    def grab_a(self):\n"
            "        with self._a_lock:\n"
            "            return 1\n",
            encoding="utf-8",
        )
        (pkg / "beta.py").write_text(
            "class B:\n"
            "    def take_b_then_a(self, a):\n"
            "        with self._b_lock:\n"
            "            a.grab_a()\n",
            encoding="utf-8",
        )
        result = analyze_paths([str(pkg)], select=["RA009"])
        assert any(f.rule == "RA009" for f in result.findings)

    def test_allowlisted_lock_is_not_flagged(self):
        token = "ShardServingPool._log_lock"
        assert token in BLOCKING_ALLOWLIST  # the catalogue entry under test
        findings, _ = analyze_source(
            "import threading\n\n\n"
            "class ShardServingPool:\n"
            "    def _broadcast(self, conn, msg):\n"
            "        with self._log_lock:\n"
            "            conn.send(msg)\n"
            "            return conn.recv()\n",
            "src/repro/fake_pool.py",
            [rules_by_id()["RA010"]],
            force=True,
        )
        assert findings == []

    def test_read_lock_is_exempt_write_lock_is_not(self):
        src = (
            "import copy\n\n\n"
            "class S:\n"
            "    def read(self, x):\n"
            "        with self._my_lock.read_locked():\n"
            "            return copy.deepcopy(x)\n\n"
            "    def write(self, x):\n"
            "        with self._my_lock.write_locked():\n"
            "            return copy.deepcopy(x)\n"
        )
        findings, _ = analyze_source(
            src, "src/repro/fake_rw.py", [rules_by_id()["RA010"]], force=True
        )
        assert len(findings) == 1
        assert findings[0].line == 11  # the write-side deepcopy only
        assert "S._my_lock" in findings[0].message


# ----------------------------------------------------------------------
# suppression anchor edge cases
# ----------------------------------------------------------------------
class _DefAnchoredRule(Rule):
    """Flags every function at its ``def`` line (anchor-mapping probe)."""

    id = "RA998"
    title = "test rule"
    rationale = "test"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "flagged":
                yield self.finding(ctx, node, f"def {node.name}")


class _AssignAnchoredRule(Rule):
    """Flags every assignment at its first line."""

    id = "RA997"
    title = "test rule"
    rationale = "test"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                yield self.finding(ctx, node, "assign")


class TestSuppressionAnchors:
    def test_ignore_above_decorated_def_reaches_the_def(self):
        src = (
            "def deco(f):\n"
            "    return f\n\n\n"
            "# justified: exercised by the anchor test\n"
            "# ra: ignore[RA998]\n"
            "@deco\n"
            "def flagged():\n"
            "    return 1\n"
        )
        findings, suppressed = analyze_source(
            src, "src/repro/fake.py", [_DefAnchoredRule()], force=True
        )
        assert findings == []
        assert suppressed == 1

    def test_inline_ignore_on_decorator_line_reaches_the_def(self):
        src = (
            "def deco(f):\n"
            "    return f\n\n\n"
            "@deco  # ra: ignore[RA998]\n"
            "def flagged():\n"
            "    return 1\n"
        )
        findings, _ = analyze_source(
            src, "src/repro/fake.py", [_DefAnchoredRule()], force=True
        )
        assert findings == []

    def test_inline_ignore_on_last_line_of_multiline_statement(self):
        src = (
            "def call(*a):\n"
            "    return a\n\n\n"
            "x = call(\n"
            "    1,\n"
            "    2,\n"
            ")  # ra: ignore[RA997]\n"
        )
        findings, suppressed = analyze_source(
            src, "src/repro/fake.py", [_AssignAnchoredRule()], force=True
        )
        assert findings == []
        assert suppressed == 1

    def test_wrong_rule_on_decorated_def_still_fires(self):
        src = (
            "def deco(f):\n"
            "    return f\n\n\n"
            "# ra: ignore[RA997]\n"
            "@deco\n"
            "def flagged():\n"
            "    return 1\n"
        )
        findings, _ = analyze_source(
            src, "src/repro/fake.py", [_DefAnchoredRule()], force=True
        )
        assert len(findings) == 1

    def test_ignore_file_interacts_with_select(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        target = pkg / "clocky.py"
        target.write_text(
            "# ra: ignore-file[RA006]\n"
            "import time\n\n\n"
            "def now():\n"
            "    return time.time()\n",
            encoding="utf-8",
        )
        # Selecting the suppressed rule: nothing escapes, one suppressed.
        result = analyze_paths([str(target)], select=["RA006"])
        assert result.findings == []
        assert result.suppressed == 1
        # Selecting an unrelated rule: the file-level directive for
        # RA006 must not swallow other rules' findings.
        result = analyze_paths([str(target)], select=["RA001"])
        assert result.suppressed == 0

    def test_line_anchor_table_shapes(self):
        tree = ast.parse(
            "@deco\n"
            "def f():\n"
            "    x = (1 +\n"
            "         2)\n"
            "    with (\n"
            "        lock\n"
            "    ):\n"
            "        pass\n"
        )
        anchors = line_anchors(tree)
        assert anchors[1] == 2  # decorator -> def
        assert anchors[4] == 3  # continuation -> statement start
        assert anchors[6] == 5  # with header -> with line


# ----------------------------------------------------------------------
# baseline machinery
# ----------------------------------------------------------------------
class TestBaseline:
    def _finding(self, message="m"):
        return Finding(
            path="src/repro/x.py", line=3, col=1, rule="RA010", message=message
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline([self._finding()]), encoding="utf-8")
        keys = load_baseline(str(path))
        assert keys == {finding_key(self._finding())}

    def test_new_findings_split(self, tmp_path):
        from repro.analysis.engine import AnalysisResult

        known = self._finding("known")
        fresh = self._finding("fresh")
        result = AnalysisResult(findings=[known, fresh])
        out, baselined = new_findings(result, {finding_key(known)})
        assert out == [fresh]
        assert baselined == 1

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(str(path))
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(str(path))

    def test_committed_baseline_is_empty_and_loadable(self):
        keys = load_baseline(str(REPO_ROOT / "analysis_baseline.json"))
        assert keys == set()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
@pytest.fixture()
def bad_clock_module(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    target = pkg / "bad_clock.py"
    target.write_text(
        "import time\n\n\ndef now():\n    return time.time()\n",
        encoding="utf-8",
    )
    return target


class TestCliFlow:
    def test_empty_select_is_usage_error(self, capsys):
        assert main(["--select", ",", "src"]) == 2
        assert "no rule ids parsed" in capsys.readouterr().err

    def test_sarif_format(self, capsys, bad_clock_module):
        rc = main(["--format", "sarif", str(bad_clock_module)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert any(r["id"] == "RA009" for r in run["tool"]["driver"]["rules"])
        (result,) = run["results"]
        assert result["ruleId"] == "RA006"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 5

    def test_baseline_tolerates_known_findings(
        self, capsys, tmp_path, bad_clock_module
    ):
        rc = main([str(bad_clock_module)])
        assert rc == 1
        capsys.readouterr()
        # Baseline the finding, then the same run exits clean.
        result = analyze_paths([str(bad_clock_module)])
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            render_baseline(result.findings), encoding="utf-8"
        )
        rc = main(["--baseline", str(baseline), str(bad_clock_module)])
        assert rc == 0
        assert "1 baselined finding(s) tolerated" in capsys.readouterr().out

    def test_unreadable_baseline_is_usage_error(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["--baseline", str(missing), "src"]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_select_flow_rules_over_tree_is_clean(self):
        rc = main(
            [
                "--select",
                "RA009,RA010,RA011,RA012",
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        assert rc == 0
