"""The ``{"op": "batch"}`` wire op, end to end through ``execute``.

One request, many query items: per-item status / ``cached`` flags,
answer-cache sharing with the individual query ops (both directions),
per-item error isolation, whole-batch budget splitting, execution-mode
plumbing (batch-level and per-item), and the batch metrics.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.core.framework import QueryOptions
from repro.service import PPKWSService


BLINKS_ITEM = {"op": "blinks", "keywords": ["db"], "tau": 5.0, "k": 3}
KNK_ITEM = {"op": "knk", "source": "x1", "keyword": "ai", "k": 2}
RCLIQUE_ITEM = {"op": "rclique", "keywords": ["db", "ml"], "tau": 6.0, "k": 2}

# CI's batch-matrix job re-runs this file with a different *default*
# execution mode; explicit per-request modes below still override it.
_OPTIONS = (
    QueryOptions(execution_mode=os.environ["REPRO_EXECUTION_MODE"])
    if os.environ.get("REPRO_EXECUTION_MODE")
    else None
)


@pytest.fixture
def service(small_public_private):
    pub, priv = small_public_private
    svc = PPKWSService(sketch_k=2, options=_OPTIONS)
    svc.create_network("net", pub)
    svc.attach_user("net", "bob", priv)
    return svc


def _batch(service, queries, **extra):
    request = {"op": "batch", "network": "net", "owner": "bob",
               "queries": queries}
    request.update(extra)
    return service.execute(request)


def _sans_timings(entry):
    out = {k: v for k, v in entry.items() if k not in ("breakdown", "cached")}
    return out


class TestHappyPath:
    def test_mixed_semantics_batch(self, service):
        resp = _batch(
            service, [dict(BLINKS_ITEM), dict(KNK_ITEM), dict(RCLIQUE_ITEM)]
        )
        assert resp["status"] == "ok"
        assert len(resp["results"]) == 3
        blinks, knk, rclique = resp["results"]
        for entry in resp["results"]:
            assert entry["status"] == "ok"
            assert entry["cached"] is False
        assert isinstance(blinks["answers"], list)
        assert knk["answer"]["source"] == "x1"
        assert isinstance(rclique["answers"], list)

    def test_items_match_individual_ops(self, service):
        resp = _batch(service, [dict(BLINKS_ITEM), dict(KNK_ITEM)])
        single_blinks = service.execute(
            dict(BLINKS_ITEM, network="net", owner="bob", no_cache=True)
        )
        single_knk = service.execute(
            dict(KNK_ITEM, network="net", owner="bob", no_cache=True)
        )
        assert resp["results"][0]["answers"] == single_blinks["answers"]
        assert resp["results"][1]["answer"] == single_knk["answer"]

    def test_empty_batch_is_ok(self, service):
        resp = _batch(service, [])
        assert resp["status"] == "ok"
        assert resp["results"] == []

    def test_single_admission_slot(self, small_public_private):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2, max_in_flight=1)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)
        resp = _batch(
            svc, [dict(BLINKS_ITEM), dict(KNK_ITEM), dict(RCLIQUE_ITEM)]
        )
        assert resp["status"] == "ok"
        assert [e["status"] for e in resp["results"]] == ["ok"] * 3


class TestAnswerCache:
    def test_repeat_item_is_cached_within_and_across_batches(self, service):
        first = _batch(service, [dict(BLINKS_ITEM), dict(BLINKS_ITEM)])
        assert first["results"][0]["cached"] is False
        assert first["results"][1]["cached"] is True
        second = _batch(service, [dict(BLINKS_ITEM)])
        assert second["results"][0]["cached"] is True
        assert (
            second["results"][0]["answers"] == first["results"][0]["answers"]
        )

    def test_individual_op_seeds_batch_items(self, service):
        single = service.execute(
            dict(BLINKS_ITEM, network="net", owner="bob")
        )
        assert single["status"] == "ok"
        resp = _batch(service, [dict(BLINKS_ITEM)])
        assert resp["results"][0]["cached"] is True
        assert resp["results"][0]["answers"] == single["answers"]

    def test_batch_items_seed_individual_ops(self, service):
        resp = _batch(service, [dict(KNK_ITEM)])
        assert resp["results"][0]["cached"] is False
        single = service.execute(dict(KNK_ITEM, network="net", owner="bob"))
        assert single["cached"] is True
        assert single["answer"] == resp["results"][0]["answer"]

    def test_no_cache_item_never_caches(self, service):
        item = dict(BLINKS_ITEM, no_cache=True)
        first = _batch(service, [item])
        again = _batch(service, [item])
        assert first["results"][0]["cached"] is False
        assert again["results"][0]["cached"] is False


class TestItemErrors:
    def test_bad_items_fail_individually(self, service):
        resp = _batch(service, [
            42,                                   # not a dict
            {"op": "nope", "keywords": ["db"]},   # unknown op
            {"op": "metrics"},                    # not a query op
            {"op": "blinks"},                     # missing keywords
            dict(BLINKS_ITEM),                    # fine
        ])
        assert resp["status"] == "ok"
        statuses = [e["status"] for e in resp["results"]]
        assert statuses == ["error"] * 4 + ["ok"]
        for entry in resp["results"][:4]:
            assert entry["code"] == "bad_request"
            assert entry["retryable"] is False
        assert "queries[0]" in resp["results"][0]["error"]
        assert "not a query op" in resp["results"][2]["error"]
        assert "missing field 'keywords'" in resp["results"][3]["error"]

    def test_item_network_and_owner_are_overridden(self, service):
        # Item-level network/owner must not escape the batch's.
        resp = _batch(service, [
            dict(BLINKS_ITEM, network="other", owner="mallory"),
        ])
        assert resp["results"][0]["status"] == "ok"

    def test_unknown_item_field_warns(self, service):
        resp = _batch(service, [dict(BLINKS_ITEM, wat=1)])
        assert resp["results"][0]["status"] == "ok"
        assert any(
            "queries[0]: unknown field 'wat'" in w
            for w in resp.get("warnings", ())
        )

    def test_bad_item_execution_mode_fails_that_item_only(self, service):
        resp = _batch(service, [
            dict(BLINKS_ITEM, execution_mode="turbo"),
            dict(KNK_ITEM),
        ])
        first, second = resp["results"]
        assert first["status"] == "error"
        assert first["code"] == "bad_request"
        assert "execution_mode" in first["error"]
        assert second["status"] == "ok"


class TestWholeBatchErrors:
    def test_unknown_network(self, service):
        resp = service.execute({
            "op": "batch", "network": "ghost", "owner": "bob",
            "queries": [dict(BLINKS_ITEM)],
        })
        assert resp["status"] == "error"
        assert resp["code"] == "unknown_network"

    def test_unknown_owner(self, service):
        resp = service.execute({
            "op": "batch", "network": "net", "owner": "mallory",
            "queries": [dict(BLINKS_ITEM)],
        })
        assert resp["status"] == "error"
        assert resp["code"] == "unknown_owner"

    def test_queries_must_be_a_list(self, service):
        resp = _batch(service, "not-a-list")
        assert resp["status"] == "error"
        assert resp["code"] == "bad_request"
        assert "must be a list" in resp["error"]

    def test_bad_batch_execution_mode(self, service):
        resp = _batch(service, [dict(BLINKS_ITEM)], execution_mode="turbo")
        assert resp["status"] == "error"
        assert resp["code"] == "bad_request"


class TestBatchBudget:
    def test_zero_deadline_degrades_every_item(self, service):
        resp = _batch(
            service, [dict(BLINKS_ITEM), dict(RCLIQUE_ITEM)], deadline_ms=0
        )
        assert resp["status"] == "ok"
        for entry in resp["results"]:
            assert entry["status"] == "degraded"
            assert entry["interrupted_step"]
        # Degraded entries must not poison the answer cache.
        fresh = _batch(service, [dict(BLINKS_ITEM)])
        assert fresh["results"][0]["status"] == "ok"
        assert fresh["results"][0]["cached"] is False

    def test_cached_items_consume_no_budget(self, service):
        warm = _batch(service, [dict(BLINKS_ITEM)])
        assert warm["results"][0]["status"] == "ok"
        resp = _batch(service, [dict(BLINKS_ITEM)], deadline_ms=0)
        entry = resp["results"][0]
        assert entry["status"] == "ok"
        assert entry["cached"] is True


class TestExecutionModes:
    def test_batch_modes_agree_on_answers(self, service):
        items = [
            dict(BLINKS_ITEM, no_cache=True),
            dict(KNK_ITEM, no_cache=True),
            dict(RCLIQUE_ITEM, no_cache=True),
        ]
        pure = _batch(service, list(items), execution_mode="pure")
        vec = _batch(service, list(items), execution_mode="vectorized")
        auto = _batch(service, list(items), execution_mode="auto")
        for p, v, a in zip(pure["results"], vec["results"], auto["results"]):
            assert _sans_timings(p) == _sans_timings(v) == _sans_timings(a)

    def test_item_mode_overrides_batch_mode(self, service):
        resp = _batch(
            service,
            [dict(BLINKS_ITEM, no_cache=True, execution_mode="pure")],
            execution_mode="vectorized",
        )
        want = service.execute(
            dict(BLINKS_ITEM, network="net", owner="bob", no_cache=True)
        )
        assert resp["results"][0]["answers"] == want["answers"]


class TestMetrics:
    def test_batch_counters(self, service):
        registry = obs.MetricsRegistry()
        obs.install(registry)
        try:
            _batch(service, [
                dict(BLINKS_ITEM),          # ok
                dict(BLINKS_ITEM),          # answer-cache hit, still "ok"
                {"op": "nope"},             # error
            ])
        finally:
            obs.uninstall()
        assert registry.value("ppkws_batch_requests_total") == 1
        assert registry.value(
            "ppkws_batch_items_total", labels={"status": "ok"}
        ) == 2
        assert registry.value(
            "ppkws_batch_items_total", labels={"status": "error"}
        ) == 1

    def test_batch_in_help(self, service):
        helped = service.execute({"op": "help"})
        batch = helped["ops"]["batch"]
        assert batch["required"] == ["network", "owner", "queries"]
        assert "deadline_ms" in batch["optional"]
        assert "execution_mode" in batch["optional"]
