"""Tests for batch sessions with persistent completion caches.

CI's ``batch-matrix`` job re-runs this whole file across graph backends
(``REPRO_ENGINE_BACKEND``) and execution modes (``REPRO_EXECUTION_MODE``)
— the answers-identical assertions below double as cross-mode gates.
"""

from __future__ import annotations

import os

import pytest

from repro.core import BatchSession, PPKWS
from repro.datasets.queries import KeywordQuery, KnkQuery
from repro.exceptions import QueryError

_FREEZE = os.environ.get("REPRO_ENGINE_BACKEND", "frozen") != "dict"
_MODE = os.environ.get("REPRO_EXECUTION_MODE")


@pytest.fixture
def session(small_public_private):
    pub, priv = small_public_private
    engine = PPKWS(pub, sketch_k=4, freeze=_FREEZE)
    engine.attach("bob", priv)
    return BatchSession(engine, "bob", execution_mode=_MODE), engine


class TestBatchSession:
    def test_answers_identical_to_individual_queries(self, session):
        batch, engine = session
        for keywords in (["db", "ai"], ["db", "cv"], ["db", "ai"]):
            via_batch = batch.blinks(keywords, tau=4.0)
            direct = engine.blinks("bob", keywords, tau=4.0)
            assert [a.sort_key() for a in via_batch.answers] == [
                a.sort_key() for a in direct.answers
            ]

    def test_cache_warms_across_queries(self, session):
        batch, _ = session
        batch.rclique(["db", "ml"], tau=5.0)
        misses_first = batch.cache_misses
        batch.rclique(["db", "ml"], tau=5.0)
        # the repeat query re-hits the same portal-keyword pairs
        assert batch.cache_hits > 0
        assert batch.cache_misses == misses_first

    def test_knk_batch(self, session):
        batch, engine = session
        queries = [KnkQuery("x1", "cv", 3), KnkQuery("x2", "cv", 3)]
        results = batch.run_knk_queries(queries)
        assert len(results) == 2
        direct = engine.knk("bob", "x1", "cv", 3)
        assert results[0].answer.distances() == direct.answer.distances()

    def test_keyword_workload(self, session):
        batch, _ = session
        queries = [
            KeywordQuery(("db", "ai"), 4.0),
            KeywordQuery(("db", "cv"), 4.0),
        ]
        results = batch.run_keyword_queries("blinks", queries)
        assert len(results) == 2
        results = batch.run_keyword_queries("rclique", queries)
        assert len(results) == 2

    def test_unknown_semantic(self, session):
        batch, _ = session
        with pytest.raises(QueryError):
            batch.run_keyword_queries("nope", [])

    def test_run_keyword_queries_is_deprecated(self, session):
        batch, _ = session
        with pytest.warns(DeprecationWarning, match="run_queries"):
            batch.run_keyword_queries(
                "blinks", [KeywordQuery(("db", "ai"), 4.0)]
            )

    def test_run_queries_generic_parameter_dicts(self, session):
        """The replacement API: any semantics, explicit parameter dicts."""
        batch, engine = session
        results = batch.run_queries(
            "knk", [{"source": "x1", "keyword": "cv", "k": 3}]
        )
        direct = engine.knk("bob", "x1", "cv", 3)
        assert results[0].answer.distances() == direct.answer.distances()
        with pytest.raises(QueryError):
            batch.run_queries("nope", [])

    def test_invalidate_clears_tables(self, session):
        batch, _ = session
        batch.blinks(["db", "ai"], tau=4.0)
        batch.invalidate()
        before = batch.cache_hits
        batch.blinks(["db", "ai"], tau=4.0)
        # after invalidation the first lookups miss again
        assert batch.cache_misses > 0
        # counters can be reset independently
        batch.cache.reset_counters()
        assert batch.cache_hits == 0 and batch.cache_misses == 0

    def test_spent_batch_budget_degrades_tail(self, session):
        batch, _ = session
        queries = [
            KeywordQuery(("db", "ai"), 4.0),
            KeywordQuery(("db", "cv"), 4.0),
            KeywordQuery(("db", "ml"), 4.0),
        ]
        results = batch.run_keyword_queries("blinks", queries, deadline_ms=0.0)
        assert len(results) == 3
        assert all(r.degraded for r in results)

    def test_generous_batch_budget_matches_unbudgeted(self, session):
        batch, _ = session
        queries = [
            KeywordQuery(("db", "ai"), 4.0),
            KeywordQuery(("db", "cv"), 4.0),
        ]
        plain = batch.run_keyword_queries("blinks", queries)
        budgeted = batch.run_keyword_queries(
            "blinks", queries, deadline_ms=1e9, max_expansions=10**9
        )
        assert all(not r.degraded for r in budgeted)
        for a, b in zip(plain, budgeted):
            assert [x.sort_key() for x in a.answers] == [
                x.sort_key() for x in b.answers
            ]

    def test_knk_batch_expansion_budget(self, session):
        batch, _ = session
        queries = [KnkQuery("x1", "cv", 3), KnkQuery("x2", "cv", 3)]
        # two expansions across the whole batch: both queries degrade
        results = batch.run_knk_queries(queries, max_expansions=2)
        assert all(r.degraded for r in results)
        full = batch.run_knk_queries(queries, max_expansions=10**9)
        assert all(not r.degraded for r in full)

    def test_doctest_example(self):
        import doctest

        import repro.core.batch as mod

        failures, _ = doctest.testmod(mod)
        assert failures == 0


class TestEpochInvalidation:
    """Sessions track the engine's attachment epoch (see the module
    docstring): any attach/detach between two queries conservatively
    drops the completion cache and re-reads the owner's attachment."""

    def test_attach_mid_batch_invalidates_completion_cache(
        self, session, small_public_private
    ):
        batch, engine = session
        _, priv = small_public_private
        batch.rclique(["db", "ml"], tau=5.0)
        misses_before = batch.cache_misses

        engine.attach("carol", priv)  # bumps the attachment epoch

        # the repeat query would have been pure hits; after the attach
        # the session must start cold again
        batch.rclique(["db", "ml"], tau=5.0)
        assert batch.cache_misses > misses_before

    def test_attach_mid_batch_keeps_answers_identical(
        self, session, small_public_private
    ):
        batch, engine = session
        _, priv = small_public_private
        keywords = ["db", "ai"]
        before = batch.blinks(keywords, tau=4.0)
        engine.attach("carol", priv)
        after = batch.blinks(keywords, tau=4.0)
        direct = engine.blinks("bob", keywords, tau=4.0)
        assert [a.sort_key() for a in after.answers] == [
            a.sort_key() for a in direct.answers
        ]
        assert [a.sort_key() for a in before.answers] == [
            a.sort_key() for a in after.answers
        ]

    def test_reattach_mid_batch_is_picked_up(self, small_public_private):
        from repro.core import BatchSession, PPKWS

        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=4)
        engine.attach("bob", priv)
        batch = BatchSession(engine, "bob")
        old = batch.knk("x1", "cv", 1)
        old_dist = old.answer.matches[0].distance

        engine.detach("bob")
        priv.add_edge("x1", "x3")  # x3 carries "cv" at distance 1
        engine.attach("bob", priv)

        new = batch.knk("x1", "cv", 1)  # same session object, no restart
        assert new.answer.matches[0].distance == 1.0
        assert new.answer.matches[0].distance < old_dist

    def test_detached_owner_raises_cleanly(self, session):
        from repro.exceptions import OwnerNotAttachedError

        batch, engine = session
        batch.blinks(["db", "ai"], tau=4.0)
        engine.detach("bob")
        with pytest.raises(OwnerNotAttachedError):
            batch.blinks(["db", "ai"], tau=4.0)

    def test_no_epoch_change_keeps_cache_warm(self, session):
        batch, _ = session
        batch.rclique(["db", "ml"], tau=5.0)
        misses_before = batch.cache_misses
        batch.rclique(["db", "ml"], tau=5.0)
        assert batch.cache_misses == misses_before
        assert batch.cache_hits > 0
