"""Unit + property tests for :mod:`repro.graph.traversal`."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import VertexNotFoundError
from repro.graph import (
    INF,
    LabeledGraph,
    bfs_hops,
    dijkstra,
    dijkstra_ordered,
    dijkstra_with_paths,
    eccentricity,
    multi_source_dijkstra,
    nearest_vertices_with_label,
    path_weight,
    shortest_distance,
    shortest_path,
    vertices_within_hops,
)
from tests.conftest import random_connected_graph


class TestDijkstra:
    def test_distances_on_triangle(self, triangle_graph):
        dist = dijkstra(triangle_graph, "a")
        assert dist == {"a": 0.0, "b": 1.0, "c": 3.0}

    def test_unknown_source_raises(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            dijkstra(triangle_graph, "zzz")

    def test_cutoff_excludes_far_vertices(self, triangle_graph):
        dist = dijkstra(triangle_graph, "a", cutoff=1.5)
        assert "c" not in dist
        assert dist["b"] == 1.0

    def test_targets_early_stop_still_correct(self, triangle_graph):
        dist = dijkstra(triangle_graph, "a", targets={"b"})
        assert dist["b"] == 1.0

    def test_disconnected_vertex_unreachable(self):
        g = LabeledGraph.from_edges([(1, 2)])
        g.add_vertex(3)
        assert 3 not in dijkstra(g, 1)

    def test_mixed_vertex_types_no_comparison_error(self):
        # Regression test: equal-distance heap entries must not compare
        # incomparable vertex objects.
        g = LabeledGraph()
        g.add_edge(0, "a", 1.0)
        g.add_edge(0, "b", 1.0)
        g.add_edge(0, 1, 1.0)
        dist = dijkstra(g, 0)
        assert dist == {0: 0.0, "a": 1.0, "b": 1.0, 1: 1.0}


class TestDijkstraOrdered:
    def test_yields_nondecreasing(self, triangle_graph):
        order = list(dijkstra_ordered(triangle_graph, "a"))
        distances = [d for _, d in order]
        assert distances == sorted(distances)
        assert order[0] == ("a", 0.0)

    def test_lazy_consumption(self, triangle_graph):
        gen = dijkstra_ordered(triangle_graph, "a")
        assert next(gen)[0] == "a"

    def test_cutoff(self, triangle_graph):
        out = dict(dijkstra_ordered(triangle_graph, "a", cutoff=1.0))
        assert out == {"a": 0.0, "b": 1.0}


class TestDijkstraWithPaths:
    def test_predecessors_reconstruct_distances(self, triangle_graph):
        dist, pred = dijkstra_with_paths(triangle_graph, "a")
        assert pred["a"] is None
        # walk back from c: c <- b <- a because 1 + 2 < 4
        assert pred["c"] == "b"
        assert dist["c"] == 3.0


class TestMultiSource:
    def test_nearest_of_two_sources(self):
        g = LabeledGraph.from_edges([(1, 2), (2, 3), (3, 4), (4, 5)])
        dist = multi_source_dijkstra(g, [1, 5])
        assert dist[3] == 2.0
        assert dist[2] == 1.0
        assert dist[4] == 1.0

    def test_empty_sources(self):
        g = LabeledGraph.from_edges([(1, 2)])
        assert multi_source_dijkstra(g, []) == {}


class TestShortestPath:
    def test_path_matches_distance(self, triangle_graph):
        path = shortest_path(triangle_graph, "a", "c")
        assert path == ["a", "b", "c"]
        assert path_weight(triangle_graph, path) == shortest_distance(
            triangle_graph, "a", "c"
        )

    def test_unreachable_returns_none(self):
        g = LabeledGraph.from_edges([(1, 2)])
        g.add_vertex(3)
        assert shortest_path(g, 1, 3) is None
        assert shortest_distance(g, 1, 3) == INF

    def test_source_equals_target(self, triangle_graph):
        assert shortest_path(triangle_graph, "a", "a") == ["a"]
        assert shortest_distance(triangle_graph, "a", "a") == 0.0

    def test_unknown_target_raises(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            shortest_path(triangle_graph, "a", "zzz")


class TestBfsHops:
    def test_hop_counts_ignore_weights(self, triangle_graph):
        hops = bfs_hops(triangle_graph, "a")
        assert hops == {"a": 0, "b": 1, "c": 1}

    def test_max_hops(self):
        g = LabeledGraph.from_edges([(1, 2), (2, 3), (3, 4)])
        hops = bfs_hops(g, 1, max_hops=2)
        assert 4 not in hops
        assert hops[3] == 2

    def test_vertices_within_hops(self):
        g = LabeledGraph.from_edges([(1, 2), (2, 3), (3, 4)])
        assert vertices_within_hops(g, 1, 1) == {1, 2}


class TestEccentricity:
    def test_path_graph(self):
        g = LabeledGraph.from_edges([(1, 2), (2, 3)])
        assert eccentricity(g, 1) == 2.0
        assert eccentricity(g, 2) == 1.0


class TestNearestWithLabel:
    def test_collects_in_distance_order(self):
        g = LabeledGraph.from_edges([(1, 2), (2, 3), (3, 4)])
        g.add_labels(2, {"t"})
        g.add_labels(4, {"t"})
        hits = nearest_vertices_with_label(g, 1, "t", k=2)
        assert hits == [(2, 1.0), (4, 3.0)]

    def test_accept_admits_extras(self):
        g = LabeledGraph.from_edges([(1, 2), (2, 3)])
        hits = nearest_vertices_with_label(g, 1, "t", k=1, accept=lambda v: v == 3)
        assert hits == [(3, 2.0)]

    def test_source_can_match(self):
        g = LabeledGraph.from_edges([(1, 2)], {1: {"t"}})
        assert nearest_vertices_with_label(g, 1, "t", k=1) == [(1, 0.0)]


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 40))
def test_dijkstra_triangle_inequality(seed: int, n: int):
    """d(s, v) <= d(s, u) + w(u, v) for every settled edge."""
    g = random_connected_graph(n, n // 2, seed)
    dist = dijkstra(g, 0)
    for u, v, w in g.edges():
        if u in dist and v in dist:
            assert dist[v] <= dist[u] + w + 1e-9
            assert dist[u] <= dist[v] + w + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 30))
def test_shortest_path_weight_equals_distance(seed: int, n: int):
    g = random_connected_graph(n, n // 2, seed)
    dist = dijkstra(g, 0)
    for target in list(dist)[:10]:
        path = shortest_path(g, 0, target)
        assert path is not None
        assert path_weight(g, path) == pytest.approx(dist[target])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 30))
def test_multi_source_equals_min_of_singles(seed: int, n: int):
    g = random_connected_graph(n, n // 3, seed)
    sources = [0, n - 1]
    combined = multi_source_dijkstra(g, sources)
    singles = [dijkstra(g, s) for s in sources]
    for v in g.vertices():
        expected = min((d.get(v, INF) for d in singles), default=INF)
        assert combined.get(v, INF) == pytest.approx(expected)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 30))
def test_bfs_hops_lower_bound_on_distance(seed: int, n: int):
    """With weights >= 1, hop count lower-bounds weighted distance."""
    g = random_connected_graph(n, n // 3, seed)
    hops = bfs_hops(g, 0)
    dist = dijkstra(g, 0)
    for v, h in hops.items():
        assert dist[v] >= h - 1e-9
