"""Robustness and failure-injection tests across the stack.

Exercises inputs real deployments produce: unicode labels, extreme
weights, degenerate graphs, huge parameters, and partially corrupted
on-disk artifacts — the library must fail loudly (typed exceptions) or
work correctly, never silently corrupt results.
"""

from __future__ import annotations

import time

import pytest

from repro import validate_knk_answer, validate_rooted_answer
from repro.core import PPKWS, PublicIndex, QueryOptions, load_index, save_index
from repro.exceptions import (
    DeadlineExceededError,
    GraphError,
    IndexBuildError,
)
from repro.graph import LabeledGraph, combine, dijkstra, load_graph, save_graph
from repro.semantics import blinks_search, knk_search

from .conftest import random_connected_graph


class TestUnicodeAndOddLabels:
    def test_unicode_labels_roundtrip(self, tmp_path):
        g = LabeledGraph()
        g.add_vertex("京", {"データベース", "🔬"})
        g.add_vertex("都", {"ΑΙ"})
        g.add_edge("京", "都")
        path = tmp_path / "u.graph"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.labels("京") == {"データベース", "🔬"}

    def test_unicode_query_end_to_end(self):
        pub = LabeledGraph.from_edges(
            [("a", "b")], {"a": {"数据库"}, "b": {"视觉"}}
        )
        priv = LabeledGraph.from_edges([("a", "x")], {"x": {"隐私"}})
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("u", priv)
        result = engine.blinks("u", ["数据库", "隐私"], tau=3.0)
        assert result.answers

    def test_label_with_space_is_two_tokens_on_disk(self, tmp_path):
        # the text format is whitespace-delimited: spaces split labels,
        # which is documented behaviour, not corruption
        g = LabeledGraph()
        g.add_vertex("v", {"two words"})
        path = tmp_path / "g.graph"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.labels("v") == {"two", "words"}


class TestExtremeWeights:
    def test_tiny_and_huge_weights(self):
        g = LabeledGraph()
        g.add_edge(0, 1, 1e-9)
        g.add_edge(1, 2, 1e9)
        dist = dijkstra(g, 0)
        assert dist[2] == pytest.approx(1e9 + 1e-9)

    def test_float_accumulation_in_search(self):
        g = LabeledGraph()
        for i in range(100):
            g.add_edge(i, i + 1, 0.1)
        g.add_labels(100, {"far"})
        ans = knk_search(g, 0, "far", k=1)
        assert ans.distances()[0] == pytest.approx(10.0, rel=1e-9)


class TestDegenerateGraphs:
    def test_single_vertex_public_graph(self):
        pub = LabeledGraph()
        pub.add_vertex(0, {"t"})
        priv = LabeledGraph()
        priv.add_edge(0, "x")
        priv.add_labels("x", {"s"})
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("u", priv)
        result = engine.blinks("u", ["t", "s"], tau=2.0)
        assert result.answers  # portal 0 carries t, x carries s

    def test_star_private_graph_many_portals(self):
        pub = LabeledGraph.from_edges([(i, i + 1) for i in range(20)])
        pub.add_labels(19, {"t"})
        priv = LabeledGraph()
        for i in range(0, 19, 2):
            priv.add_edge("hub", i)
        engine = PPKWS(pub, sketch_k=2)
        att = engine.attach("u", priv)
        assert len(att.portals) == 10
        result = engine.knk("u", "hub", "t", k=1)
        assert result.answer.matches
        # hub -> portal 18 -> 19
        assert result.answer.distances()[0] == 2.0

    def test_huge_k_values(self, small_public_private):
        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("u", priv)
        result = engine.knk("u", "x1", "db", k=10**6)
        assert len(result.answer.matches) < 100  # bounded by the graph
        blinks = engine.blinks("u", ["db", "ai"], tau=4.0, k=10**6)
        assert len(blinks.answers) < 100

    def test_tau_zero(self, small_public_private):
        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("u", priv)
        result = engine.blinks("u", ["db", "ai"], tau=0.0)
        # only a vertex carrying both keywords could answer; none does
        assert result.answers == []


class TestCorruptedArtifacts:
    def test_truncated_index_file(self, tmp_path, small_public_private):
        pub, _ = small_public_private
        index = PublicIndex.build(pub, k=2)
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        content = path.read_text().splitlines()
        (tmp_path / "trunc.jsonl").write_text(
            "\n".join(content[: len(content) // 2]) + "\n"
        )
        # truncation drops sketches but the header survives: load succeeds
        # with fewer entries or raises a typed error — never a crash
        try:
            loaded = load_index(pub, tmp_path / "trunc.jsonl")
            assert loaded.pads.total_entries <= index.pads.total_entries
        except IndexBuildError:
            pass

    def test_garbage_index_file(self, tmp_path, small_public_private):
        pub, _ = small_public_private
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(Exception) as exc_info:
            load_index(pub, path)
        # json error or typed error, never silent success
        assert exc_info.value is not None

    def test_graph_file_with_bad_weight(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("e 1 2 banana\n")
        with pytest.raises(ValueError):
            load_graph(path)

    def test_graph_file_with_negative_weight(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("e 1 2 -3\n")
        with pytest.raises(GraphError):
            load_graph(path)


@pytest.fixture
def engine(small_public_private):
    pub, priv = small_public_private
    eng = PPKWS(pub, sketch_k=4)
    eng.attach("u", priv)
    return eng


class TestBudgetDegradation:
    """A budget expiring in any pipeline step degrades, never corrupts."""

    def _assert_valid_degraded(self, engine, result, tau):
        gc = combine(engine.public, engine.attachment("u").private)
        assert result.degraded
        for answer in result.answers:
            report = validate_rooted_answer(gc, answer, tau)
            assert report.valid, report.problems

    def test_zero_deadline_degrades_in_peval(self, engine):
        for method in (engine.blinks, engine.rclique, engine.banks):
            result = method("u", ["db", "ai"], 4.0, deadline_ms=0.0)
            assert result.degraded
            assert result.completed_steps == ()
            assert result.interrupted_step == "peval"
            self._assert_valid_degraded(engine, result, tau=4.0)

    def test_expiry_during_arefine_salvages_partials(self, engine, monkeypatch):
        import repro.core.pp_blinks as mod

        def expiring_arefine(*args, **kwargs):
            raise DeadlineExceededError(11.0, 10.0)

        monkeypatch.setattr(mod, "arefine_keywords", expiring_arefine)
        result = engine.blinks("u", ["db", "ai"], 4.0, deadline_ms=10_000.0)
        assert result.completed_steps == ("peval",)
        assert result.interrupted_step == "arefine"
        self._assert_valid_degraded(engine, result, tau=4.0)

    def test_expiry_during_acomplete_salvages_partials(self, engine, monkeypatch):
        import repro.core.pp_blinks as mod

        real_acomplete = mod._acomplete

        def expiring_acomplete(*args, **kwargs):
            real_acomplete(*args, **kwargs)  # improvements made first survive
            raise DeadlineExceededError(11.0, 10.0)

        monkeypatch.setattr(mod, "_acomplete", expiring_acomplete)
        result = engine.blinks("u", ["db", "ai"], 4.0, deadline_ms=10_000.0)
        assert result.completed_steps == ("peval", "arefine")
        assert result.interrupted_step == "acomplete"
        self._assert_valid_degraded(engine, result, tau=4.0)

    def test_rclique_acomplete_expiry(self, engine, monkeypatch):
        import repro.core.pp_rclique as mod

        def expiring_acomplete(*args, **kwargs):
            raise DeadlineExceededError(11.0, 10.0)

        monkeypatch.setattr(mod, "_acomplete", expiring_acomplete)
        result = engine.rclique("u", ["db", "ai"], 4.0, deadline_ms=10_000.0)
        assert result.completed_steps == ("peval", "arefine")
        assert result.interrupted_step == "acomplete"
        self._assert_valid_degraded(engine, result, tau=4.0)

    def test_knk_degrades_to_private_matches(self, engine):
        gc = combine(engine.public, engine.attachment("u").private)
        result = engine.knk("u", "x1", "cv", k=3, deadline_ms=0.0)
        assert result.degraded
        assert result.interrupted_step == "peval"
        report = validate_knk_answer(gc, result.answer)
        assert report.valid, report.problems
        multi = engine.knk_multi("u", "x1", ["cv", "db"], k=3, mode="or",
                                 deadline_ms=0.0)
        assert multi.degraded

    def test_expansion_cap_degrades_mid_sweep(self, engine):
        # a small cap lands inside the PEval sweep; matches found before
        # the cap are kept and carry achievable distances
        gc = combine(engine.public, engine.attachment("u").private)
        result = engine.knk("u", "x1", "db", k=5, max_expansions=2)
        assert result.degraded
        report = validate_knk_answer(gc, result.answer)
        assert report.valid, report.problems

    def test_no_deadline_is_identical_to_unbudgeted(self, engine):
        plain = engine.blinks("u", ["db", "ai"], 4.0)
        explicit_none = engine.blinks("u", ["db", "ai"], 4.0, deadline_ms=None)
        generous = engine.blinks("u", ["db", "ai"], 4.0, deadline_ms=1e9,
                                 max_expansions=10**9)
        keys = [a.sort_key() for a in plain.answers]
        assert keys == [a.sort_key() for a in explicit_none.answers]
        assert keys == [a.sort_key() for a in generous.answers]
        assert not plain.degraded and not generous.degraded
        assert plain.completed_steps == ("peval", "arefine", "acomplete")

    def test_options_level_default_budget(self, small_public_private):
        pub, priv = small_public_private
        eng = PPKWS(pub, sketch_k=2, options=QueryOptions(deadline_ms=0.0))
        eng.attach("u", priv)
        result = eng.blinks("u", ["db", "ai"], 4.0)
        assert result.degraded
        # a per-call budget overrides the engine default
        ok = eng.blinks("u", ["db", "ai"], 4.0, deadline_ms=1e9)
        assert not ok.degraded

    def test_deadline_bounds_wall_clock_on_large_graph(self):
        # acceptance: a tight deadline returns promptly on a graph where
        # the unbounded query takes far longer; bound kept deliberately
        # loose (scheduler noise) — CI enforces the hard 300s timeout
        pub = random_connected_graph(1500, 800, seed=11, labels=("t0", "t1", "t2"))
        priv = random_connected_graph(400, 200, seed=12, labels=("s0",))
        eng = PPKWS(pub, sketch_k=2)
        eng.attach("u", priv)
        start = time.perf_counter()
        result = eng.blinks("u", ["t0", "s0"], tau=50.0, deadline_ms=10.0)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert result.degraded
        assert elapsed_ms < 2000.0


class TestBaselineRobustness:
    def test_blinks_on_empty_graph(self):
        g = LabeledGraph()
        assert blinks_search(g, ["t"], tau=1.0) == []

    def test_duplicate_edges_keep_single_count(self):
        g = LabeledGraph()
        for _ in range(5):
            g.add_edge(1, 2, 1.0)
        assert g.num_edges == 1

    def test_combined_of_identical_graphs(self, small_public_private):
        pub, _ = small_public_private
        doubled = combine(pub, pub)
        assert doubled.num_vertices == pub.num_vertices
        assert doubled.num_edges == pub.num_edges
