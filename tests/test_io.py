"""Tests for graph text IO."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph import LabeledGraph, load_graph, save_graph
from tests.conftest import random_connected_graph


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self, tmp_path, triangle_graph):
        path = tmp_path / "g.txt"
        save_graph(triangle_graph, path)
        loaded = load_graph(path)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 3
        assert loaded.labels("c") == {"blue", "red"}
        assert loaded.weight("b", "c") == 2.0

    def test_roundtrip_int_vertices(self, tmp_path):
        g = random_connected_graph(20, 5, seed=1)
        path = tmp_path / "g.txt"
        save_graph(g, path)
        loaded = load_graph(path, vertex_type=int)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.num_edges == g.num_edges
        for u, v, w in g.edges():
            assert loaded.weight(u, v) == w

    def test_unit_weights_written_compactly(self, tmp_path):
        g = LabeledGraph.from_edges([(1, 2)])
        path = tmp_path / "g.txt"
        save_graph(g, path)
        content = path.read_text()
        assert "e 1 2\n" in content

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_graph(LabeledGraph(), path)
        assert load_graph(path).num_vertices == 0

    def test_isolated_labeled_vertex(self, tmp_path):
        g = LabeledGraph()
        g.add_vertex("solo", {"x", "y z".replace(" ", "")})
        path = tmp_path / "g.txt"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.labels("solo") == {"x", "yz"}


class TestMalformedInput:
    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("z 1 2\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_edge_missing_endpoint(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("e 1\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_vertex_missing_id(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("v\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# hello\n\nv 1 a\ne 1 2\n")
        g = load_graph(path)
        assert g.num_vertices == 2
        assert g.labels("1") == {"a"}
