"""End-to-end correctness of PPKWS against the materialized combined graph.

These are the reproduction's load-bearing tests: every PPKWS answer is
checked against exact Dijkstra on ``Gc`` for

* **soundness** — reported distances are achievable (PADS estimates are
  upper bounds, so a reported distance must be >= the true one) and
  respect the query bound via real paths;
* **the paper's quality lemmas** — private matches are exact
  (Lemma IV.2 bullet 1 for Blinks, Lemma A.1/A.4 for k-nk);
* **qualification** — every emitted answer is a genuine public-private
  answer per Def. II.2.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PPKWS, is_public_private_answer
from repro.graph import INF, LabeledGraph, combine, dijkstra
from repro.semantics import knk_search
from tests.conftest import random_connected_graph

LABELS = ["a", "b", "c", "d"]


def _instance(seed: int, n_pub: int = 40, n_priv: int = 14):
    """Random labeled public/private pair with 2-4 portals."""
    rng = random.Random(seed)
    pub = random_connected_graph(n_pub, n_pub // 3, seed, labels=LABELS)
    priv = LabeledGraph(f"priv{seed}")
    portals = rng.sample(range(n_pub), rng.randint(2, 4))
    locals_ = [f"x{i}" for i in range(n_priv - len(portals))]
    verts = portals + locals_
    for i, v in enumerate(verts[1:], start=1):
        priv.add_edge(v, verts[rng.randrange(i)], rng.choice([1.0, 2.0]))
    for v in locals_:
        if rng.random() < 0.8:
            priv.add_labels(v, rng.sample(LABELS, rng.randint(1, 2)))
    return pub, priv


def _engine(pub: LabeledGraph, exact: bool = True) -> PPKWS:
    """Engine with near-exact sketches (huge k) for ground-truth checks."""
    return PPKWS(pub, sketch_k=64 if exact else 2)


class TestPPKnkCorrectness:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_private_answers_guaranteed(self, seed):
        """Lemma A.1: private vertices of the true combined top-k are
        returned by PP-knk, with exact distances."""
        pub, priv = _instance(seed)
        engine = _engine(pub)
        engine.attach("u", priv)
        gc = combine(pub, priv)
        source = "x0"
        for keyword in LABELS[:2]:
            k = 6
            truth = knk_search(gc, source, keyword, k)
            result = engine.knk("u", source, keyword, k).answer
            got = {m.vertex: m.distance for m in result.matches}
            kth = truth.kth_distance()
            exact = dijkstra(gc, source)
            for m in truth.matches:
                if m.vertex in priv and m.distance < kth:
                    # strictly-inside-top-k private matches must appear
                    assert m.vertex in got, (seed, keyword, m)
                    assert got[m.vertex] == pytest.approx(m.distance)
            # soundness: no reported distance below the true distance
            for v, d in got.items():
                assert d >= exact.get(v, INF) - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_reported_ranking_sorted(self, seed):
        pub, priv = _instance(seed)
        engine = _engine(pub)
        engine.attach("u", priv)
        result = engine.knk("u", "x0", "a", k=8).answer
        assert result.distances() == sorted(result.distances())
        vertices = result.vertices()
        assert len(vertices) == len(set(vertices))


class TestPPBlinksCorrectness:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_answers_sound_and_qualified(self, seed):
        pub, priv = _instance(seed)
        engine = _engine(pub)
        engine.attach("u", priv)
        gc = combine(pub, priv)
        tau = 4.0
        result = engine.blinks("u", ["a", "b"], tau, k=20)
        for ans in result.answers:
            exact = dijkstra(gc, ans.root)
            assert is_public_private_answer(ans, pub, priv)
            for q, m in ans.matches.items():
                # matched vertex genuinely carries the keyword
                assert gc.has_label(m.vertex, q), (seed, ans)
                # reported distance within bound and achievable
                assert m.distance <= tau + 1e-9
                assert m.distance >= exact.get(m.vertex, INF) - 1e-9

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_private_root_private_match_exact(self, seed):
        """Lemma IV.2 bullet 1: when PP-Blinks reports a private match for
        a private root, its distance is the exact combined distance to
        the nearest keyword vertex reachable without leaving... more
        precisely: the distance equals d_c(root, match vertex)."""
        pub, priv = _instance(seed)
        engine = _engine(pub)
        engine.attach("u", priv)
        gc = combine(pub, priv)
        result = engine.blinks("u", ["a", "b"], tau=4.0, k=20)
        portals = engine.attachment("u").portals
        for ans in result.answers:
            if ans.root not in priv:
                continue
            exact = dijkstra(gc, ans.root)
            for q, m in ans.matches.items():
                # portals can also arrive as route-specific completion
                # witnesses; exactness is guaranteed for matches PEval
                # found privately (non-portal private vertices)
                if m.vertex in priv and m.vertex not in portals:
                    assert m.distance == pytest.approx(exact[m.vertex]), (
                        seed, ans.root, q,
                    )


class TestPPRcliqueCorrectness:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_answers_sound_and_qualified(self, seed):
        pub, priv = _instance(seed)
        engine = _engine(pub)
        engine.attach("u", priv)
        gc = combine(pub, priv)
        tau = 4.0
        result = engine.rclique("u", ["a", "b"], tau, k=10)
        for ans in result.answers:
            exact = dijkstra(gc, ans.root)
            assert is_public_private_answer(ans, pub, priv)
            for q, m in ans.matches.items():
                assert gc.has_label(m.vertex, q), (seed, ans)
                assert m.distance <= tau + 1e-9
                assert m.distance >= exact.get(m.vertex, INF) - 1e-9

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_pairwise_distance_within_2tau(self, seed):
        """Star answers with radius tau have pairwise distance <= 2 tau
        (the triangle-inequality guarantee behind the approximation)."""
        pub, priv = _instance(seed)
        engine = _engine(pub)
        engine.attach("u", priv)
        gc = combine(pub, priv)
        tau = 3.0
        result = engine.rclique("u", ["a", "b"], tau, k=5)
        for ans in result.answers:
            vertices = [m.vertex for m in ans.matches.values()]
            for v in vertices:
                exact = dijkstra(gc, v)
                for u in vertices:
                    assert exact.get(u, INF) <= 2 * tau + 1e-9


class TestSketchModeStillSound:
    """With small sketches (production mode) distances may be looser but
    must remain sound: achievable and within the bound."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_blinks_sound_with_small_sketches(self, seed):
        pub, priv = _instance(seed)
        engine = _engine(pub, exact=False)
        engine.attach("u", priv)
        gc = combine(pub, priv)
        tau = 4.0
        result = engine.blinks("u", ["a", "b"], tau, k=10)
        for ans in result.answers:
            exact = dijkstra(gc, ans.root)
            for q, m in ans.matches.items():
                assert m.distance >= exact.get(m.vertex, INF) - 1e-9
                assert m.distance <= tau + 1e-9
