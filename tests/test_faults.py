"""Tests for :mod:`repro.faults` and the crash-safety it proves.

Four layers:

* the framework itself (points catalogue, specs, schedules, activation,
  the env grammar, seeded determinism);
* the atomic-write protocol (:mod:`repro.ioutil`) under injected
  crashes at every stage;
* the ``save_index`` torn-write regression: a truncation at *every*
  record boundary must leave the previous index intact and loadable;
* corrupt-index detection across all record types (bit flip,
  truncation, version skew) and the service's quarantine behaviour.
"""

from __future__ import annotations

import hashlib
import io
import json
import os

import pytest

from repro import faults
from repro.core import PublicIndex, load_index, save_index
from repro.exceptions import (
    FaultInjectedError,
    IndexBuildError,
    IndexCorruptError,
    TornWriteError,
    WorkerKilledError,
)
from repro.faults import FaultSchedule, FaultSpec, schedule_from_env, seeded_schedule
from repro.faults import points as fp
from repro.graph import LabeledGraph
from repro.graph.io import load_graph, save_graph
from repro.ioutil import atomic_write
from repro.obs import MetricsRegistry, install, uninstall
from repro.service import PPKWSService
from tests.conftest import random_connected_graph

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _no_leaked_schedule():
    """Every test starts and ends with fault injection off."""
    faults.deactivate()
    yield
    faults.deactivate()


@pytest.fixture
def index_and_graph():
    g = random_connected_graph(12, 4, seed=7)
    return PublicIndex.build(g, k=2), g


# ----------------------------------------------------------------------
# the point catalogue
# ----------------------------------------------------------------------
class TestPointCatalogue:
    def test_names_are_unique_and_registered(self):
        points = fp.all_points()
        names = [p.name for p in points]
        assert len(names) == len(set(names))
        for p in points:
            assert fp.point_named(p.name) is p

    def test_unknown_point_raises_with_known_list(self):
        with pytest.raises(ValueError, match="known points"):
            fp.point_named("no.such.point")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            fp._point(fp.SERVICE_EXECUTE.name, "service", "dup")

    def test_stream_points_are_the_write_streams(self):
        streams = {p.name for p in fp.all_points() if p.stream}
        assert streams == {"persist.save.write", "graph.save.write"}

    def test_readme_documents_every_point(self):
        with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as fh:
            readme = fh.read()
        missing = [p.name for p in fp.all_points() if f"`{p.name}`" not in readme]
        assert missing == [], f"points missing from README: {missing}"


# ----------------------------------------------------------------------
# specs and schedules
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_rejects_string_point(self):
        with pytest.raises(ValueError, match="FaultPoint"):
            FaultSpec("service.execute", "raise")  # ra: ignore[RA007]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(fp.SERVICE_EXECUTE, "explode")

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError):
            FaultSpec(fp.SERVICE_EXECUTE, "raise", at_hit=0)
        with pytest.raises(ValueError):
            FaultSpec(fp.SERVICE_EXECUTE, "delay", delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(fp.PERSIST_SAVE_WRITE, "truncate", truncate_at=-1)

    def test_matches_nth_and_every(self):
        once = FaultSpec(fp.SERVICE_EXECUTE, "raise", at_hit=3)
        assert [once.matches(h) for h in (1, 2, 3, 4)] == [False, False, True, False]
        onward = FaultSpec(fp.SERVICE_EXECUTE, "raise", at_hit=3, every=True)
        assert [onward.matches(h) for h in (2, 3, 4, 9)] == [False, True, True, True]


class TestSchedule:
    def test_fires_on_nth_hit_only(self):
        sched = FaultSchedule([FaultSpec(fp.SERVICE_EXECUTE, "raise", at_hit=2)])
        sched.fire(fp.SERVICE_EXECUTE)  # hit 1: armed but not due
        with pytest.raises(FaultInjectedError) as excinfo:
            sched.fire(fp.SERVICE_EXECUTE)
        assert excinfo.value.point == fp.SERVICE_EXECUTE.name
        sched.fire(fp.SERVICE_EXECUTE)  # hit 3: past it
        assert sched.hits(fp.SERVICE_EXECUTE) == 3
        assert sched.injections() == {fp.SERVICE_EXECUTE.name: 1}
        assert sched.total_injected() == 1

    def test_kill_raises_worker_killed(self):
        sched = FaultSchedule([FaultSpec(fp.EXECUTOR_WORKER, "kill")])
        with pytest.raises(WorkerKilledError):
            sched.fire(fp.EXECUTOR_WORKER)

    def test_delay_sleeps_and_counts(self):
        sched = FaultSchedule([FaultSpec(fp.CACHE_LOOKUP, "delay", delay_s=0.0)])
        sched.fire(fp.CACHE_LOOKUP)  # no raise
        assert sched.total_injected() == 1

    def test_truncate_at_non_stream_point_degrades_to_raise(self):
        sched = FaultSchedule([FaultSpec(fp.CACHE_STORE, "truncate", truncate_at=9)])
        with pytest.raises(TornWriteError) as excinfo:
            sched.fire(fp.CACHE_STORE)
        assert excinfo.value.byte_offset == 0

    def test_injections_are_counted_in_the_metrics_registry(self):
        reg = MetricsRegistry()
        install(reg)
        try:
            sched = FaultSchedule([FaultSpec(fp.SERVICE_EXECUTE, "raise")])
            with pytest.raises(FaultInjectedError):
                sched.fire(fp.SERVICE_EXECUTE)
        finally:
            uninstall()
        assert reg.value(
            "ppkws_faults_injected_total",
            labels={"point": fp.SERVICE_EXECUTE.name},
        ) == 1.0

    def test_wrap_write_truncates_at_byte_offset(self):
        sched = FaultSchedule(
            [FaultSpec(fp.PERSIST_SAVE_WRITE, "truncate", truncate_at=7)]
        )
        sink = io.StringIO()
        wrapped = sched.wrap_write(sink, fp.PERSIST_SAVE_WRITE)
        wrapped.write("0123")
        with pytest.raises(TornWriteError) as excinfo:
            wrapped.write("456789")
        assert sink.getvalue() == "0123456"
        assert excinfo.value.byte_offset == 7
        assert sched.total_injected() == 1

    def test_wrap_write_with_no_due_spec_returns_stream(self):
        sched = FaultSchedule(
            [FaultSpec(fp.PERSIST_SAVE_WRITE, "truncate", at_hit=5, truncate_at=0)]
        )
        sink = io.StringIO()
        assert sched.wrap_write(sink, fp.PERSIST_SAVE_WRITE) is sink


# ----------------------------------------------------------------------
# activation
# ----------------------------------------------------------------------
class TestActivation:
    def test_inactive_hooks_are_no_ops(self):
        assert not faults.is_active()
        faults.fire(fp.SERVICE_EXECUTE)  # must not raise
        sink = io.StringIO()
        assert faults.wrap_write(sink, fp.PERSIST_SAVE_WRITE) is sink

    def test_injected_activates_and_restores(self):
        sched = FaultSchedule([FaultSpec(fp.SERVICE_EXECUTE, "raise")])
        with faults.injected(sched) as active:
            assert active is sched
            assert faults.is_active()
            assert faults.active() is sched
            with pytest.raises(FaultInjectedError):
                faults.fire(fp.SERVICE_EXECUTE)
        assert not faults.is_active()

    def test_injected_nests(self):
        outer = FaultSchedule([])
        inner = FaultSchedule([])
        with faults.injected(outer):
            with faults.injected(inner):
                assert faults.active() is inner
            assert faults.active() is outer

    def test_deactivate_clears(self):
        with faults.injected(FaultSchedule([])):
            faults.deactivate()
            assert not faults.is_active()

    def test_env_activation_hook(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "service.execute:raise")
        faults._activate_from_env()
        assert faults.is_active()
        schedule = faults.active()
        assert schedule is not None
        assert schedule.specs[0].point is fp.SERVICE_EXECUTE


class TestEnvGrammar:
    def test_simple_entry(self):
        sched = schedule_from_env("service.execute:raise")
        (spec,) = sched.specs
        assert spec.point is fp.SERVICE_EXECUTE
        assert spec.kind == "raise" and spec.at_hit == 1 and not spec.every

    def test_full_grammar(self):
        sched = schedule_from_env(
            "persist.save.write:truncate@2:137; serving.cache.lookup:delay@3+:0.5"
        )
        trunc, delay = sched.specs
        assert trunc.point is fp.PERSIST_SAVE_WRITE
        assert trunc.at_hit == 2 and trunc.truncate_at == 137 and not trunc.every
        assert delay.point is fp.CACHE_LOOKUP
        assert delay.at_hit == 3 and delay.every and delay.delay_s == 0.5

    def test_seed_form(self):
        sched = schedule_from_env("seed:42")
        assert sched.seed == 42
        assert sched.specs  # non-empty

    @pytest.mark.parametrize("bad", [
        "", "service.execute", "no.such.point:raise",
        "service.execute:explode", "service.execute:raise@x",
        "service.execute:raise:1.0", "seed:abc",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            schedule_from_env(bad)

    def test_seeded_schedule_is_deterministic(self):
        a, b = seeded_schedule(5), seeded_schedule(5)
        assert a.specs == b.specs
        assert seeded_schedule(6).specs != a.specs

    def test_seeded_schedule_truncates_only_streams(self):
        for seed in range(20):
            for spec in seeded_schedule(seed).specs:
                if spec.kind == "truncate":
                    assert spec.point.stream


# ----------------------------------------------------------------------
# the atomic-write protocol
# ----------------------------------------------------------------------
class TestAtomicWrite:
    POINTS = (fp.GRAPH_SAVE_WRITE, fp.GRAPH_SAVE_FSYNC, fp.GRAPH_SAVE_RENAME)

    def test_success_is_visible_and_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_write(str(path), *self.POINTS) as fh:
            fh.write("hello\n")
        assert path.read_text() == "hello\n"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_caller_exception_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old\n")
        with pytest.raises(RuntimeError):
            with atomic_write(str(path), *self.POINTS) as fh:
                fh.write("new\n")
                raise RuntimeError("mid-write crash")
        assert path.read_text() == "old\n"
        assert os.listdir(tmp_path) == ["out.txt"]

    @pytest.mark.parametrize("crash_point", ["fsync", "rename"])
    def test_injected_crash_before_publish(self, tmp_path, crash_point):
        point = (
            fp.GRAPH_SAVE_FSYNC if crash_point == "fsync" else fp.GRAPH_SAVE_RENAME
        )
        path = tmp_path / "out.txt"
        path.write_text("old\n")
        with faults.injected(FaultSchedule([FaultSpec(point, "raise")])):
            with pytest.raises(FaultInjectedError):
                with atomic_write(str(path), *self.POINTS) as fh:
                    fh.write("new\n")
        assert path.read_text() == "old\n"
        assert os.listdir(tmp_path) == ["out.txt"]


class TestGraphIOAtomicity:
    def test_torn_graph_save_preserves_previous_file(self, tmp_path):
        g1 = random_connected_graph(8, 2, seed=1)
        g2 = random_connected_graph(8, 2, seed=2)
        path = tmp_path / "g.txt"
        save_graph(g1, path)
        before = path.read_bytes()
        sched = FaultSchedule(
            [FaultSpec(fp.GRAPH_SAVE_WRITE, "truncate", truncate_at=10)]
        )
        with faults.injected(sched):
            with pytest.raises(TornWriteError):
                save_graph(g2, path)
        assert path.read_bytes() == before
        reloaded = load_graph(path, vertex_type=int)
        assert reloaded.num_vertices == g1.num_vertices
        assert reloaded.num_edges == g1.num_edges

    def test_load_read_fault_point(self, tmp_path):
        path = tmp_path / "g.txt"
        save_graph(random_connected_graph(5, 1, seed=3), path)
        sched = FaultSchedule([FaultSpec(fp.GRAPH_LOAD_READ, "raise")])
        with faults.injected(sched):
            with pytest.raises(FaultInjectedError):
                load_graph(path)


# ----------------------------------------------------------------------
# the save_index torn-write regression (satellite 1)
# ----------------------------------------------------------------------
class TestIndexTornWriteRegression:
    def test_truncation_at_every_record_boundary(self, tmp_path, index_and_graph):
        """A crash after any whole number of records must be harmless.

        Before v2, ``save_index`` wrote straight to ``path``: a torn
        write left a parseable prefix that ``load_index`` accepted.
        Now, for every record boundary K, an injected truncation at K
        bytes must leave the previous file byte-identical and loadable.
        """
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        good_bytes = path.read_bytes()
        lines = good_bytes.decode("utf-8").splitlines(keepends=True)
        assert len(lines) >= 5  # header + records + trailer
        boundaries = [0]
        for line in lines:
            boundaries.append(boundaries[-1] + len(line))
        for offset in boundaries[:-1]:  # the full length would succeed
            sched = FaultSchedule([
                FaultSpec(fp.PERSIST_SAVE_WRITE, "truncate", truncate_at=offset)
            ])
            with faults.injected(sched):
                with pytest.raises(TornWriteError):
                    save_index(index, path)
            assert sched.total_injected() == 1, f"offset {offset} never fired"
            assert path.read_bytes() == good_bytes, f"torn at {offset}"
            load_index(g, path)  # still loadable
        assert sorted(os.listdir(tmp_path)) == ["idx.jsonl"]  # no tmp debris

    def test_crash_with_no_previous_file_leaves_nothing(self, tmp_path, index_and_graph):
        index, _ = index_and_graph
        path = tmp_path / "idx.jsonl"
        sched = FaultSchedule([
            FaultSpec(fp.PERSIST_SAVE_WRITE, "truncate", truncate_at=40)
        ])
        with faults.injected(sched):
            with pytest.raises(TornWriteError):
                save_index(index, path)
        assert os.listdir(tmp_path) == []

    def test_load_read_fault_point(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        with faults.injected(
            FaultSchedule([FaultSpec(fp.PERSIST_LOAD_READ, "raise")])
        ):
            with pytest.raises(FaultInjectedError):
                load_index(g, path)


# ----------------------------------------------------------------------
# corrupt-index detection (satellite 4)
# ----------------------------------------------------------------------
def _lines(path) -> list:
    return path.read_text(encoding="utf-8").splitlines(keepends=True)


def _line_index(lines, kind: str) -> int:
    for i, line in enumerate(lines):
        if json.loads(line).get("record") == kind:
            return i
    raise AssertionError(f"no {kind!r} record")


def _with_trailer(body_lines) -> str:
    """Rebuild a file with a *correct* trailer over ``body_lines``."""
    digest = hashlib.sha256("".join(body_lines).encode("utf-8")).hexdigest()
    trailer = json.dumps(
        {"record": "trailer", "records": len(body_lines), "sha256": digest}
    )
    return "".join(body_lines) + trailer + "\n"


class TestCorruptIndexDetection:
    @pytest.mark.parametrize("kind", ["header", "pagerank", "pads", "kpads"])
    def test_bit_flip_in_each_record_type(self, tmp_path, index_and_graph, kind):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        lines = _lines(path)
        i = _line_index(lines, kind)
        # flip one character inside the record payload
        flipped = lines[i].replace('"record"', '"recorE"', 1)
        assert flipped != lines[i]
        lines[i] = flipped
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(IndexCorruptError, match="checksum mismatch"):
            load_index(g, path)

    def test_truncation_at_every_line_boundary_is_detected(
        self, tmp_path, index_and_graph
    ):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        lines = _lines(path)
        for n in range(len(lines)):  # keep first n lines only
            path.write_text("".join(lines[:n]), encoding="utf-8")
            with pytest.raises(IndexCorruptError):
                load_index(g, path)

    def test_mid_line_truncation_is_detected(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 9])  # tear the trailer line
        with pytest.raises(IndexCorruptError, match="not valid JSON|missing checksum"):
            load_index(g, path)

    def test_version_skew_with_valid_checksum(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        lines = _lines(path)
        i = _line_index(lines, "header")
        header = json.loads(lines[i])
        header["version"] = 99
        lines[i] = json.dumps(header) + "\n"
        path.write_text(_with_trailer(lines[:-1]), encoding="utf-8")
        with pytest.raises(IndexCorruptError, match="version"):
            load_index(g, path)

    def test_record_count_mismatch(self, tmp_path, index_and_graph):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        lines = _lines(path)
        trailer = json.loads(lines[-1])
        trailer["records"] += 1
        lines[-1] = json.dumps(trailer) + "\n"
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(IndexCorruptError, match="record"):
            load_index(g, path)

    def test_undecodable_record_behind_valid_checksum(
        self, tmp_path, index_and_graph
    ):
        index, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        lines = _lines(path)
        i = _line_index(lines, "pagerank")
        rec = json.loads(lines[i])
        del rec["score"]
        lines[i] = json.dumps(rec) + "\n"
        path.write_text(_with_trailer(lines[:-1]), encoding="utf-8")
        with pytest.raises(IndexCorruptError, match="undecodable"):
            load_index(g, path)

    def test_empty_file(self, tmp_path, index_and_graph):
        _, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        path.write_text("")
        with pytest.raises(IndexCorruptError, match="empty"):
            load_index(g, path)

    def test_stale_index_is_not_corrupt(self, tmp_path, index_and_graph):
        """A vertex-count mismatch means *stale*, and must stay a plain
        IndexBuildError so the silent-rebuild path still applies."""
        index, _ = index_and_graph
        path = tmp_path / "idx.jsonl"
        save_index(index, path)
        other = LabeledGraph.from_edges([(1, 2)])
        with pytest.raises(IndexBuildError) as excinfo:
            load_index(other, path)
        assert not isinstance(excinfo.value, IndexCorruptError)

    def test_corrupt_is_an_index_build_error(self, tmp_path, index_and_graph):
        """Callers catching IndexBuildError (the pre-v2 contract) still
        catch corruption."""
        _, g = index_and_graph
        path = tmp_path / "idx.jsonl"
        path.write_text("")
        with pytest.raises(IndexBuildError):
            load_index(g, path)


# ----------------------------------------------------------------------
# service quarantine of corrupt index files
# ----------------------------------------------------------------------
class TestServiceQuarantine:
    def _make_graph(self):
        return random_connected_graph(10, 3, seed=11)

    def test_corrupt_index_is_quarantined_with_warning(self, tmp_path):
        g = self._make_graph()
        index_path = str(tmp_path / "net.idx")
        save_index(PublicIndex.build(g, k=2), index_path)
        with open(index_path, "a", encoding="utf-8") as fh:
            fh.write("garbage that breaks the trailer\n")
        corrupt_bytes = open(index_path, "rb").read()
        reg = MetricsRegistry()
        svc = PPKWSService(sketch_k=2, registry=reg)
        resp = svc.execute({
            "op": "create_network", "network": "net",
            "public": g, "index_path": index_path,
        })
        assert resp["status"] == "ok"
        assert any("corrupt index" in w for w in resp["warnings"])
        assert any(".corrupt" in w for w in resp["warnings"])
        # evidence preserved at <path>.corrupt, fresh index rebuilt at path
        assert open(index_path + ".corrupt", "rb").read() == corrupt_bytes
        assert load_index(svc._engine("net").public, index_path)
        assert reg.value("ppkws_index_corrupt_total") == 1.0
        # the rebuilt network works
        assert svc.execute({"op": "stats", "network": "net"})["status"] == "ok"

    def test_stale_index_rebuilds_silently(self, tmp_path):
        g = self._make_graph()
        other = random_connected_graph(20, 5, seed=12)
        index_path = str(tmp_path / "net.idx")
        save_index(PublicIndex.build(other, k=2), index_path)  # wrong graph
        svc = PPKWSService(sketch_k=2)
        resp = svc.execute({
            "op": "create_network", "network": "net",
            "public": g, "index_path": index_path,
        })
        assert resp["status"] == "ok"
        assert "warnings" not in resp
        assert not os.path.exists(index_path + ".corrupt")

    def test_direct_api_quarantines_without_a_request(self, tmp_path):
        """_warn outside a request must be a no-op, not a crash."""
        g = self._make_graph()
        index_path = str(tmp_path / "net.idx")
        with open(index_path, "w", encoding="utf-8") as fh:
            fh.write("not an index\n")
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", g, index_path=index_path)
        assert os.path.exists(index_path + ".corrupt")
        assert svc.networks() == ["net"]
