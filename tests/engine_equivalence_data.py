"""Seeded networks + workload for the engine-equivalence golden suite.

The engine refactor (``repro.core.engine``) must keep every answer of the
five pre-existing semantics **bit-identical**.  This module builds the
deterministic public/private pairs and the query workload both sides of
that contract share:

* ``scripts/capture_equivalence.py`` ran this workload against the
  pre-refactor pipelines and froze the canonicalized results into
  ``tests/data/engine_equivalence.json``;
* ``tests/test_engine_equivalence.py`` re-runs the same workload against
  the current code and asserts the canonical forms match the frozen file
  exactly — counters, degradation bookkeeping and all.

Budgeted runs use ``max_expansions`` only: expansion counting is exact
and deterministic, unlike wall-clock deadlines, so even the *degraded*
results (salvage paths, ``interrupted_step``) are pinned.
"""

from __future__ import annotations

import random
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.budget import QueryBudget
from repro.core.framework import (
    PPKWS,
    KnkQueryResult,
    QueryOptions,
    QueryResult,
)
from repro.graph.labeled_graph import LabeledGraph

from tests.conftest import random_connected_graph

#: The seeded networks the golden file covers.
SEEDS: Tuple[int, ...] = (11, 23, 37)

#: (keywords, tau, k) triples for the rooted semantics.
KEYWORD_QUERIES: Tuple[Tuple[Tuple[str, ...], float, int], ...] = (
    (("a", "b"), 4.0, 5),
    (("a", "z"), 6.0, 3),
    (("b", "c", "z"), 8.0, 4),
)

#: ``max_expansions`` budgets per rooted query (None = unbudgeted).
ROOTED_BUDGETS: Tuple[Optional[int], ...] = (None, 40, 150)

#: ``max_expansions`` budgets per k-nk query.
KNK_BUDGETS: Tuple[Optional[int], ...] = (None, 5, 12)

#: Budgets for the ablated-options engine (reduced refinement and the
#: completion cache both off): cap 50 interrupts ARefine on blinks, 400
#: interrupts AComplete on r-clique, pinning salvage paths the default
#: options never reach (no refined portal pairs => ARefine is loop-free).
ABLATION_BUDGETS: Tuple[Optional[int], ...] = (None, 50, 400)


def seeded_network(seed: int) -> Tuple[LabeledGraph, LabeledGraph]:
    """One deterministic public/private pair with portal structure."""
    public = random_connected_graph(
        n=36, extra_edges=18, seed=seed, labels=("a", "b", "c", "d")
    )
    rng = random.Random(seed * 7919 + 13)
    portals = sorted(rng.sample(range(36), 3))
    members = [f"m{i}" for i in range(6)]
    nodes: List[Any] = list(portals) + members
    private = LabeledGraph(f"priv{seed}")
    private.add_vertex(nodes[0])
    for i in range(1, len(nodes)):
        private.add_edge(
            nodes[i], nodes[rng.randrange(i)], rng.choice([1.0, 1.0, 2.0])
        )
    for _ in range(4):
        u, v = rng.sample(nodes, 2)
        if not private.has_edge(u, v):
            private.add_edge(u, v, rng.choice([1.0, 2.0]))
    for m in members:
        private.add_labels(m, rng.sample(("a", "b", "z"), rng.randint(1, 2)))
    # Guarantee the private-only keyword and a shared one exist.
    private.add_labels(members[0], {"z"})
    private.add_labels(members[1], {"a"})
    return public, private


def build_engine(
    seed: int, freeze: bool = True, ablate: bool = False
) -> PPKWS:
    """A PPKWS engine over the seeded pair with ``"owner"`` attached.

    ``ablate=True`` turns both Sec.-VI optimizations off (full ARefine
    double loop, no completion cache) so the workload also pins the
    unoptimized code paths.
    """
    public, private = seeded_network(seed)
    options = (
        QueryOptions(reduced_refinement=False, dp_completion=False)
        if ablate
        else None
    )
    engine = PPKWS(public, sketch_k=2, freeze=freeze, options=options)
    engine.attach("owner", private)
    return engine


# ----------------------------------------------------------------------
# canonicalization (JSON-able, backend- and refactor-independent)
# ----------------------------------------------------------------------
def _canon_rooted_answer(answer: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "root": repr(answer.root),
        "weight": answer.weight(),
        "matches": {
            q: [repr(m.vertex), m.distance]
            for q, m in sorted(answer.matches.items())
        },
    }
    edges = getattr(answer, "edges", None)
    if edges is not None:
        out["edges"] = sorted(sorted(repr(v) for v in e) for e in edges)
    return out


def canon_rooted_result(result: QueryResult) -> Dict[str, Any]:
    """Canonical form of a Blinks / r-clique / BANKS result."""
    return {
        "degraded": result.degraded,
        "completed_steps": list(result.completed_steps),
        "interrupted_step": result.interrupted_step,
        "counters": asdict(result.counters),
        "answers": [_canon_rooted_answer(a) for a in result.answers],
    }


def canon_knk_result(result: KnkQueryResult) -> Dict[str, Any]:
    """Canonical form of a (multi-)k-nk result."""
    answer = result.answer
    return {
        "degraded": result.degraded,
        "completed_steps": list(result.completed_steps),
        "interrupted_step": result.interrupted_step,
        "counters": asdict(result.counters),
        "answer": {
            "source": repr(answer.source),
            "keyword": answer.keyword,
            "matches": [
                [repr(m.vertex), m.distance] for m in answer.matches
            ],
        },
    }


def _budget(max_expansions: Optional[int]) -> Optional[QueryBudget]:
    if max_expansions is None:
        return None
    return QueryBudget(max_expansions=max_expansions)


# ----------------------------------------------------------------------
# the workload
# ----------------------------------------------------------------------
def run_ablation_workload(engine: PPKWS) -> Dict[str, List[Dict[str, Any]]]:
    """The rooted + k-nk workload on an ablated-options engine."""
    private = engine.attachment("owner").private
    members = sorted(
        (v for v in private.vertices() if isinstance(v, str)), key=repr
    )
    out: Dict[str, List[Dict[str, Any]]] = {
        "blinks": [], "rclique": [], "knk": [],
    }
    for keywords, tau, k in KEYWORD_QUERIES:
        for cap in ABLATION_BUDGETS:
            query = {"keywords": list(keywords), "tau": tau, "k": k,
                     "max_expansions": cap}
            for semantics in ("blinks", "rclique"):
                method = getattr(engine, semantics)
                result = method(
                    "owner", list(keywords), tau, k=k, budget=_budget(cap)
                )
                out[semantics].append(
                    {"query": dict(query), "result": canon_rooted_result(result)}
                )
    for cap in KNK_BUDGETS:
        result = engine.knk("owner", members[0], "a", k=4, budget=_budget(cap))
        out["knk"].append(
            {
                "query": {"source": repr(members[0]), "keyword": "a", "k": 4,
                          "max_expansions": cap},
                "result": canon_knk_result(result),
            }
        )
    return out


def run_workload(engine: PPKWS) -> Dict[str, List[Dict[str, Any]]]:
    """Every (semantics, query, budget) combination, canonicalized."""
    private = engine.attachment("owner").private
    members = sorted(
        (v for v in private.vertices() if isinstance(v, str)), key=repr
    )
    portal = sorted(engine.attachment("owner").portals, key=repr)[0]

    out: Dict[str, List[Dict[str, Any]]] = {
        "blinks": [], "rclique": [], "banks": [], "knk": [], "knk_multi": [],
    }
    for keywords, tau, k in KEYWORD_QUERIES:
        for cap in ROOTED_BUDGETS:
            query = {"keywords": list(keywords), "tau": tau, "k": k,
                     "max_expansions": cap}
            for semantics in ("blinks", "rclique", "banks"):
                method = getattr(engine, semantics)
                result = method(
                    "owner", list(keywords), tau, k=k, budget=_budget(cap)
                )
                out[semantics].append(
                    {"query": dict(query), "result": canon_rooted_result(result)}
                )
    for source in [members[0], members[2], portal]:
        for keyword in ("a", "z"):
            for cap in KNK_BUDGETS:
                result = engine.knk(
                    "owner", source, keyword, k=4, budget=_budget(cap)
                )
                out["knk"].append(
                    {
                        "query": {"source": repr(source), "keyword": keyword,
                                  "k": 4, "max_expansions": cap},
                        "result": canon_knk_result(result),
                    }
                )
    for mode in ("and", "or"):
        for cap in KNK_BUDGETS:
            result = engine.knk_multi(
                "owner", members[0], ["a", "b"], k=4, mode=mode,
                budget=_budget(cap),
            )
            out["knk_multi"].append(
                {
                    "query": {"source": repr(members[0]),
                              "keywords": ["a", "b"], "k": 4, "mode": mode,
                              "max_expansions": cap},
                    "result": canon_knk_result(result),
                }
            )
    return out


def capture_all(freeze: bool = True) -> Dict[str, Any]:
    """The full golden payload: one workload run per seed.

    Each seed runs the default-options workload plus the ablated-options
    one (stored under the ``"ablation"`` key of the per-seed dict).
    """
    seeds: Dict[str, Any] = {}
    for seed in SEEDS:
        per_seed: Dict[str, Any] = run_workload(build_engine(seed, freeze))
        per_seed["ablation"] = run_ablation_workload(
            build_engine(seed, freeze, ablate=True)
        )
        seeds[str(seed)] = per_seed
    return {"format": 1, "seeds": seeds}
