"""Integration tests replaying the paper's own worked examples.

* Example I.1 / Fig. 1: Bob's DB-AI-CV query — no private answer, a loose
  public answer, a tight public-private answer on the combined view.
* Fig. 4 / Tab. III: the PADS of the public-graph fragment — structural
  properties the paper derives by hand (v13 is the dominant center).
* Example V.2: PADS estimates d(v9, v7) exactly where ADS errs.
"""

from __future__ import annotations

import pytest

from repro.core import PPKWS
from repro.graph import LabeledGraph, combine, pagerank
from repro.semantics import blinks_search
from repro.sketches import build_pads


@pytest.fixture
def fig1_world():
    """A faithful rendition of the paper's Fig. 1 example."""
    public = LabeledGraph("fig1-public")
    public.add_vertex("Bob", {"DB"})
    public.add_vertex("Alice", {"DB"})
    public.add_vertex("Dave", {"AI"})
    public.add_vertex("Carol", {"CV"})
    public.add_vertex("Mia", {"ML"})
    # Public collaborations: Dave and Carol both reachable from Bob but
    # far from each other (the "not close" public answer).
    public.add_edge("Bob", "Dave", 2.0)
    public.add_edge("Bob", "Carol", 2.0)
    public.add_edge("Bob", "Alice", 2.0)
    public.add_edge("Dave", "Mia", 1.0)

    # Bob's private graph: close private collaborations through portals
    # Bob, Alice and Carol.
    private = LabeledGraph("fig1-bob")
    private.add_vertex("Bob", {"DB"})
    private.add_vertex("Alice")
    private.add_vertex("Carol")
    private.add_vertex("Grace", {"AI"})
    private.add_edge("Bob", "Alice", 1.0)
    private.add_edge("Bob", "Grace", 1.0)
    private.add_edge("Bob", "Carol", 1.0)
    return public, private


class TestExampleI1:
    QUERY = ["DB", "AI", "CV"]

    def test_private_graph_has_no_answer(self, fig1_world):
        _, private = fig1_world
        assert blinks_search(private, self.QUERY, tau=2.0) == []

    def test_public_answer_is_loose(self, fig1_world):
        public, _ = fig1_world
        answers = blinks_search(public, self.QUERY, tau=2.0)
        assert answers
        best = answers[0]
        assert best.root == "Bob"
        # public answer must use the far collaborators Dave and Carol
        assert best.matches["AI"].vertex == "Dave"
        assert best.matches["CV"].vertex == "Carol"
        assert best.weight() == 4.0

    def test_combined_answer_is_tight(self, fig1_world):
        public, private = fig1_world
        combined = combine(public, private)
        answers = blinks_search(combined, self.QUERY, tau=2.0)
        best = answers[0]
        assert best.root == "Bob"
        # the combined graph swaps in the close private AI collaborator
        # and the now-1-hop Carol
        assert best.matches["AI"].vertex == "Grace"
        assert best.matches["CV"].distance == 1.0
        assert best.weight() == 2.0

    def test_ppkws_matches_combined_evaluation(self, fig1_world):
        public, private = fig1_world
        engine = PPKWS(public, sketch_k=8)
        engine.attach("bob", private)
        result = engine.blinks("bob", self.QUERY, tau=2.0, k=3)
        assert result.answers
        best = result.answers[0]
        assert best.root == "Bob"
        assert best.weight() == 2.0
        assert best.matches["AI"].vertex == "Grace"


class TestFig4Pads:
    def test_v13_is_pagerank_leader(self, paper_public_graph):
        """The paper singles out v13 (pr = 0.130) as the best center."""
        scores = pagerank(paper_public_graph)
        assert max(scores, key=lambda v: scores[v]) == "v13"

    def test_pads_k1_prefers_v13_centers(self, paper_public_graph):
        """With k=1, v13 appears in the sketches of its whole component
        (Tab. III shows v13 in almost every PADS)."""
        pads = build_pads(paper_public_graph, k=1)
        containing = sum(
            1 for v in paper_public_graph.vertices() if "v13" in pads.sketch(v)
        )
        assert containing >= paper_public_graph.num_vertices - 2

    def test_pads_smaller_than_k_bound(self, paper_public_graph):
        import math

        pads = build_pads(paper_public_graph, k=1)
        n = paper_public_graph.num_vertices
        # expected size O(k ln n); allow a generous constant
        assert pads.average_size() <= 3 * math.log(n) + 2


class TestExampleV2:
    def test_pads_estimates_v9_v7_exactly(self, paper_public_graph):
        """Example V.2: PADS gives d(v9, v7) = 2 with 0% error."""
        pads = build_pads(paper_public_graph, k=1)
        assert pads.estimate("v9", "v7") == 2.0
