"""Tests for synthetic graph generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DatasetError
from repro.graph import (
    assign_zipf_labels,
    barabasi_albert_graph,
    community_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
    zipf_weights,
)


class TestErdosRenyi:
    def test_p_zero_has_no_edges(self):
        g = erdos_renyi_graph(20, 0.0, seed=1)
        assert g.num_edges == 0
        assert g.num_vertices == 20

    def test_p_one_is_complete(self):
        g = erdos_renyi_graph(8, 1.0, seed=1)
        assert g.num_edges == 8 * 7 // 2

    def test_deterministic_per_seed(self):
        g1 = erdos_renyi_graph(30, 0.2, seed=42)
        g2 = erdos_renyi_graph(30, 0.2, seed=42)
        assert sorted(map(repr, g1.edges())) == sorted(map(repr, g2.edges()))

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.1
        g = erdos_renyi_graph(n, p, seed=7)
        expected = p * n * (n - 1) / 2
        assert expected * 0.7 < g.num_edges < expected * 1.3

    def test_invalid_p(self):
        with pytest.raises(DatasetError):
            erdos_renyi_graph(10, 1.5)

    def test_no_self_loops(self):
        g = erdos_renyi_graph(50, 0.3, seed=3)
        assert all(u != v for u, v, _ in g.edges())


class TestBarabasiAlbert:
    def test_vertex_and_edge_counts(self):
        g = barabasi_albert_graph(100, 2, seed=1)
        assert g.num_vertices == 100
        # star start: m edges; then (n - m - 1) * m
        assert g.num_edges == 2 + 97 * 2

    def test_attached_vertices_have_degree_m(self):
        # Vertices added by preferential attachment get >= m edges; the
        # initial star's leaves may have fewer.
        g = barabasi_albert_graph(50, 3, seed=2)
        assert min(g.degree(v) for v in range(4, 50)) >= 3

    def test_heavy_tail(self):
        g = barabasi_albert_graph(500, 2, seed=3)
        max_deg = max(g.degree(v) for v in g.vertices())
        avg_deg = 2 * g.num_edges / g.num_vertices
        assert max_deg > 4 * avg_deg

    def test_connected(self):
        assert barabasi_albert_graph(80, 2, seed=4).is_connected()

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(DatasetError):
            barabasi_albert_graph(3, 3)


class TestWattsStrogatz:
    def test_beta_zero_is_ring_lattice(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=1)
        assert g.num_edges == 20 * 2
        for v in g.vertices():
            assert g.degree(v) == 4

    def test_edge_count_preserved_under_rewiring(self):
        g = watts_strogatz_graph(50, 4, 0.5, seed=2)
        assert g.num_edges == 50 * 2

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            watts_strogatz_graph(10, 3, 0.1)  # odd k
        with pytest.raises(DatasetError):
            watts_strogatz_graph(4, 4, 0.1)  # n <= k
        with pytest.raises(DatasetError):
            watts_strogatz_graph(10, 4, 2.0)  # bad beta

    def test_high_diameter_vs_er(self):
        """Low-rewire WS keeps much higher eccentricity than dense random."""
        from repro.graph import eccentricity

        ws = watts_strogatz_graph(200, 4, 0.0, seed=3)
        assert eccentricity(ws, 0) >= 25  # ring: n / k


class TestCommunityGraph:
    def test_block_structure(self):
        g = community_graph(4, 10, p_in=1.0, p_out_edges=0, seed=1)
        assert g.num_vertices == 40
        # complete blocks, no inter-block edges
        assert g.num_edges == 4 * (10 * 9 // 2)
        assert not g.is_connected()

    def test_bridges_connect(self):
        g = community_graph(3, 15, p_in=0.5, p_out_edges=60, seed=2)
        comps = list(g.connected_components())
        assert len(comps) <= 2  # bridges merge the blocks (allow stragglers)

    def test_invalid(self):
        with pytest.raises(DatasetError):
            community_graph(0, 5, 0.5, 1)


class TestZipfLabels:
    def test_weights_decreasing(self):
        w = zipf_weights(10)
        assert w == sorted(w, reverse=True)
        assert w[0] == 1.0

    def test_invalid_weights(self):
        with pytest.raises(DatasetError):
            zipf_weights(0)

    def test_mean_labels_per_vertex(self):
        g = erdos_renyi_graph(400, 0.01, seed=5)
        vocab = [f"t{i}" for i in range(50)]
        assign_zipf_labels(g, vocab, 3.5, seed=6)
        assert g.average_labels_per_vertex() == pytest.approx(3.5, abs=0.4)

    def test_skewed_frequencies(self):
        g = erdos_renyi_graph(500, 0.01, seed=7)
        vocab = [f"t{i}" for i in range(40)]
        assign_zipf_labels(g, vocab, 4.0, seed=8)
        assert g.label_frequency("t0") > 3 * g.label_frequency("t30")

    def test_labels_distinct_per_vertex(self):
        g = erdos_renyi_graph(50, 0.1, seed=9)
        assign_zipf_labels(g, ["a", "b", "c"], 2.0, seed=10)
        for v in g.vertices():
            labels = g.labels(v)
            assert len(labels) == len(set(labels))

    def test_invalid_rate(self):
        g = erdos_renyi_graph(10, 0.2, seed=11)
        with pytest.raises(DatasetError):
            assign_zipf_labels(g, ["a"], 0.0)
        with pytest.raises(DatasetError):
            assign_zipf_labels(g, ["a"], 2.0)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(10, 60))
def test_er_determinism_property(seed, n):
    g1 = erdos_renyi_graph(n, 0.15, seed=seed)
    g2 = erdos_renyi_graph(n, 0.15, seed=seed)
    assert g1.num_edges == g2.num_edges
