"""Protocol-level tests: answer cache semantics, epochs, error codes.

The shape matrix lives in ``test_service_shapes.py``; these tests pin
the *behavioral* wire contract of the v1 protocol:

* the cross-request answer cache — hits marked ``cached``, ``no_cache``
  / ``trace`` bypass, canonicalized keys (defaults applied), only
  ``status: "ok"`` responses cached;
* epoch-based invalidation — the acceptance property that an answer
  cached *before* an ``attach`` / ``detach`` / ``drop`` is **never**
  served after it, including through the direct Python API and through
  a drop-and-recreate of the same network name;
* the central exception-type -> error-code map;
* concurrent serving through :class:`~repro.serving.ServiceExecutor`
  against multiple networks.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    BudgetExhaustedError,
    DeadlineExceededError,
    OwnerNotAttachedError,
    QueryError,
    ReproError,
    ServiceOverloadedError,
    UnknownNetworkError,
)
from repro.service import PPKWSService, _error_code
from repro.serving import ServiceExecutor


@pytest.fixture
def service(small_public_private) -> PPKWSService:
    pub, priv = small_public_private
    svc = PPKWSService(sketch_k=2)
    svc.create_network("net", pub)
    svc.attach_user("net", "bob", priv)
    return svc


def blinks_req(**extra):
    req = {
        "op": "blinks", "network": "net", "owner": "bob",
        "keywords": ["db", "ai"], "tau": 4.0, "k": 3,
    }
    req.update(extra)
    return req


def knk_req(**extra):
    req = {
        "op": "knk", "network": "net", "owner": "bob",
        "source": "x1", "keyword": "cv", "k": 2,
    }
    req.update(extra)
    return req


def strip_meta(resp):
    return {
        k: v for k, v in resp.items() if k not in ("cached", "v", "warnings")
    }


class TestAnswerCacheSemantics:
    def test_repeat_query_is_a_marked_hit_with_identical_payload(self, service):
        cold = service.execute(blinks_req())
        hit = service.execute(blinks_req())
        assert "cached" not in cold
        assert hit["cached"] is True
        assert strip_meta(hit) == strip_meta(cold)
        assert service.answer_cache.hits == 1

    def test_default_params_share_an_entry_with_explicit_defaults(self, service):
        service.execute(knk_req(k=10))
        hit = service.execute({
            "op": "knk", "network": "net", "owner": "bob",
            "source": "x1", "keyword": "cv",  # k omitted -> default 10
        })
        assert hit.get("cached") is True

    def test_distinct_params_are_distinct_entries(self, service):
        service.execute(blinks_req())
        other = service.execute(blinks_req(k=5))
        assert "cached" not in other

    def test_distinct_owners_are_distinct_entries(self, small_public_private):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)
        svc.attach_user("net", "carol", priv)
        svc.execute(blinks_req())
        carol = svc.execute(blinks_req(owner="carol"))
        assert "cached" not in carol

    def test_no_cache_flag_bypasses(self, service):
        service.execute(blinks_req())
        resp = service.execute(blinks_req(no_cache=True))
        assert "cached" not in resp

    def test_trace_requests_bypass(self, service):
        service.execute(blinks_req())
        resp = service.execute(blinks_req(trace=True))
        assert "cached" not in resp
        assert "trace" in resp  # a real run, with a real trace

    def test_error_responses_are_not_cached(self, service):
        bad = knk_req(owner="nobody")
        first = service.execute(bad)
        second = service.execute(bad)
        assert first["status"] == second["status"] == "error"
        assert "cached" not in second

    def test_degraded_responses_are_not_cached(self, service):
        req = blinks_req(deadline_ms=0)
        assert service.execute(req)["status"] == "degraded"
        second = service.execute(req)
        assert "cached" not in second

    def test_cache_can_be_disabled(self, small_public_private):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2, answer_cache_size=0)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)
        assert svc.answer_cache is None
        svc.execute(blinks_req())
        assert "cached" not in svc.execute(blinks_req())

    def test_cache_traffic_is_observable(self, small_public_private):
        from repro.obs import MetricsRegistry

        pub, priv = small_public_private
        reg = MetricsRegistry()
        svc = PPKWSService(sketch_k=2, registry=reg)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)
        svc.execute(blinks_req())
        svc.execute(blinks_req())
        assert reg.value("ppkws_answer_cache_misses_total") == 1.0
        assert reg.value("ppkws_answer_cache_hits_total") == 1.0


class TestEpochInvalidation:
    def test_answer_cached_before_attach_is_never_served_after(self, service):
        """The acceptance property: an attach strictly invalidates."""
        cold = service.execute(blinks_req())
        assert service.execute(blinks_req())["cached"] is True

        service.attach_user("net", "carol", _tiny_private())

        after = service.execute(blinks_req())
        assert "cached" not in after  # recomputed, not served from cache
        # bob's answers are unaffected by carol's attach — but they must
        # come from a fresh evaluation, which the next repeat then caches
        assert after["answers"] == cold["answers"]
        assert service.execute(blinks_req())["cached"] is True

    def test_detach_and_reattach_changes_the_answer(self, small_public_private):
        """Content-visible staleness: re-attaching with a different
        private graph must change the served answer, not replay it."""
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)

        cold = svc.execute(knk_req())
        old_best = cold["answer"]["matches"][0]["distance"]
        assert svc.execute(knk_req())["cached"] is True

        svc.detach_user("net", "bob")
        priv.add_edge("x1", "x3")  # x3 carries "cv": distance becomes 1
        svc.attach_user("net", "bob", priv)

        fresh = svc.execute(knk_req())
        assert "cached" not in fresh
        new_best = fresh["answer"]["matches"][0]["distance"]
        assert new_best == 1.0
        assert new_best < old_best

    def test_detach_via_wire_invalidates(self, service):
        service.execute(knk_req())
        assert service.execute(knk_req())["cached"] is True
        resp = service.execute({"op": "detach", "network": "net", "owner": "bob"})
        assert resp["status"] == "ok"
        gone = service.execute(knk_req())
        assert gone["status"] == "error"
        assert gone["code"] == "unknown_owner"
        assert "cached" not in gone

    def test_drop_and_recreate_does_not_revive_answers(
        self, small_public_private
    ):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)
        svc.execute(blinks_req())
        assert svc.execute(blinks_req())["cached"] is True

        svc.drop_network("net")
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)

        resp = svc.execute(blinks_req())
        assert "cached" not in resp

    def test_epoch_is_monotonic_across_admin_ops(self, small_public_private):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        assert svc.network_epoch("net") == 0
        svc.create_network("net", pub)
        assert svc.network_epoch("net") == 1
        svc.attach_user("net", "bob", priv)
        assert svc.network_epoch("net") == 2
        svc.detach_user("net", "bob")
        assert svc.network_epoch("net") == 3
        svc.drop_network("net")
        assert svc.network_epoch("net") == 4  # survives the drop

    def test_stats_reports_the_epoch(self, service):
        resp = service.execute({"op": "stats", "network": "net"})
        assert resp["epoch"] == service.network_epoch("net") == 2


class TestErrorCodeMap:
    @pytest.mark.parametrize("exc,code", [
        (ServiceOverloadedError(1, 1), "overloaded"),
        (UnknownNetworkError("n"), "unknown_network"),
        (OwnerNotAttachedError("o"), "unknown_owner"),
        (BudgetExhaustedError(1, 1), "budget_exhausted"),
        (DeadlineExceededError(2.0, 1.0), "budget_exhausted"),
        (ReproError("nope"), "bad_request"),
        (QueryError("empty"), "bad_request"),
        (KeyError("k"), "internal"),
        (ValueError("v"), "internal"),
    ])
    def test_exception_to_code(self, exc, code):
        assert _error_code(exc) == code

    def test_unknown_network_on_the_wire(self, service):
        resp = service.execute(blinks_req(network="nope"))
        assert resp["code"] == "unknown_network"
        assert "nope" in resp["error"]

    def test_unknown_owner_on_the_wire(self, service):
        resp = service.execute(blinks_req(owner="nobody"))
        assert resp["code"] == "unknown_owner"

    def test_non_string_network_is_bad_request(self, service):
        resp = service.execute(blinks_req(network=7))
        assert resp["code"] == "bad_request"
        assert "string" in resp["error"]


class TestWarnings:
    def test_multiple_unknown_fields_sorted(self, service):
        resp = service.execute(blinks_req(zeta=1, alpha=2))
        assert resp["warnings"] == [
            "unknown field 'alpha'", "unknown field 'zeta'"
        ]

    def test_global_fields_never_warn(self, service):
        resp = service.execute(blinks_req(v=1, trace=False, no_cache=False))
        assert "warnings" not in resp

    def test_warnings_survive_errors(self, service):
        req = blinks_req(bogus=1)
        del req["keywords"]
        resp = service.execute(req)
        assert resp["status"] == "error"
        assert resp["warnings"] == ["unknown field 'bogus'"]


def _tiny_private():
    from repro.graph import LabeledGraph

    priv = LabeledGraph("tiny")
    priv.add_vertex(0)  # portal
    priv.add_vertex("y1", {"db"})
    priv.add_edge(0, "y1")
    return priv


class TestExecutorServiceIntegration:
    def _build_networks(self, svc, small_public_private, n=4):
        pub, priv = small_public_private
        for i in range(n):
            svc.create_network(f"net{i}", pub)
            svc.attach_user(f"net{i}", "bob", priv)

    def test_parallel_reads_across_networks(self, small_public_private):
        svc = PPKWSService(sketch_k=2)
        self._build_networks(svc, small_public_private)
        reqs = [
            blinks_req(network=f"net{i % 4}", k=2 + (i % 3))
            for i in range(24)
        ]
        with ServiceExecutor(svc, workers=4) as pool:
            responses = pool.execute_many(reqs)
        assert all(r["status"] == "ok" for r in responses)
        # 12 distinct (network, k) keys; the 12 repeats are spaced far
        # enough behind their twins that most hit the cache (a worker
        # stalled on an early slow query can race a few into recompute,
        # so the pooled count is a lower bound, not an exact 12)
        assert sum(1 for r in responses if r.get("cached")) >= 6
        # deterministic part: afterwards every distinct key is cached
        for req in reqs[:12]:
            assert svc.execute(req)["cached"] is True

    def test_admin_churn_under_concurrent_reads(self, small_public_private):
        """Readers racing an attach/detach flip never see internal
        errors, and bob's answers are bit-stable throughout (carol's
        churn must not leak into bob's cached entries)."""
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)
        tiny = _tiny_private()

        reqs = []
        for i in range(30):
            if i % 10 == 3:
                reqs.append({
                    "op": "attach", "network": "net", "owner": "carol",
                    "private": tiny,
                })
            elif i % 10 == 7:
                reqs.append({
                    "op": "detach", "network": "net", "owner": "carol",
                })
            else:
                reqs.append(blinks_req())
        with ServiceExecutor(svc, workers=4) as pool:
            responses = pool.execute_many(reqs)

        assert all(r.get("code") != "internal" for r in responses)
        bob_answers = {
            _freeze(r["answers"])
            for r in responses
            if r.get("status") == "ok" and "answers" in r
        }
        assert len(bob_answers) == 1  # identical payload every time


def _freeze(obj):
    if isinstance(obj, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in obj.items()))
    if isinstance(obj, list):
        return tuple(_freeze(x) for x in obj)
    return obj
