"""Tests for the cross-request answer cache (LRU + TTL + epochs)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving import AnswerCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestBasics:
    def test_roundtrip_and_miss(self):
        cache = AnswerCache(max_entries=4, ttl_s=None)
        assert cache.lookup(("k",), epoch=0) is None
        cache.store(("k",), epoch=0, value={"status": "ok", "n": 1})
        assert cache.lookup(("k",), epoch=0) == {"status": "ok", "n": 1}
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            AnswerCache(max_entries=0)

    def test_clear_keeps_counters(self):
        cache = AnswerCache(max_entries=4, ttl_s=None)
        cache.store("k", 0, 1)
        cache.lookup("k", 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_hit_rate_and_stats(self):
        cache = AnswerCache(max_entries=4, ttl_s=30.0)
        assert cache.hit_rate == 0.0
        cache.store("k", 0, 1)
        cache.lookup("k", 0)
        cache.lookup("absent", 0)
        assert cache.hit_rate == 0.5
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 4
        assert stats["ttl_s"] == 30.0
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["expirations"] == 0
        assert stats["stale_hits"] == 0


class TestEpochs:
    def test_stale_epoch_is_a_miss_and_purges(self):
        cache = AnswerCache(max_entries=4, ttl_s=None)
        cache.store("k", epoch=3, value="answer")
        assert cache.lookup("k", epoch=4) is None  # the network changed
        assert cache.stale_hits == 1
        # the entry is gone even if the epoch were to "come back"
        assert cache.lookup("k", epoch=3) is None
        assert cache.misses == 2

    def test_current_epoch_still_served(self):
        cache = AnswerCache(max_entries=4, ttl_s=None)
        cache.store("k", epoch=7, value="answer")
        assert cache.lookup("k", epoch=7) == "answer"


class TestTTL:
    def test_expiry(self):
        clock = FakeClock()
        cache = AnswerCache(max_entries=4, ttl_s=10.0, clock=clock)
        cache.store("k", 0, "v")
        clock.advance(9.0)
        assert cache.lookup("k", 0) == "v"
        clock.advance(2.0)  # 11s total > ttl
        assert cache.lookup("k", 0) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_none_ttl_never_expires(self):
        clock = FakeClock()
        cache = AnswerCache(max_entries=4, ttl_s=None, clock=clock)
        cache.store("k", 0, "v")
        clock.advance(1e9)
        assert cache.lookup("k", 0) == "v"


class TestLRU:
    def test_eviction_order(self):
        cache = AnswerCache(max_entries=2, ttl_s=None)
        cache.store("a", 0, 1)
        cache.store("b", 0, 2)
        cache.store("c", 0, 3)  # evicts "a"
        assert cache.lookup("a", 0) is None
        assert cache.lookup("b", 0) == 2
        assert cache.evictions == 1

    def test_hit_refreshes_position(self):
        cache = AnswerCache(max_entries=2, ttl_s=None)
        cache.store("a", 0, 1)
        cache.store("b", 0, 2)
        cache.lookup("a", 0)  # a becomes most-recent
        cache.store("c", 0, 3)  # evicts "b", not "a"
        assert cache.lookup("a", 0) == 1
        assert cache.lookup("b", 0) is None

    def test_restore_refreshes_position(self):
        cache = AnswerCache(max_entries=2, ttl_s=None)
        cache.store("a", 0, 1)
        cache.store("b", 0, 2)
        cache.store("a", 0, 10)  # re-store moves to the back
        cache.store("c", 0, 3)  # evicts "b"
        assert cache.lookup("a", 0) == 10
        assert cache.lookup("b", 0) is None


class TestIsolation:
    def test_mutating_the_hit_does_not_poison_the_cache(self):
        cache = AnswerCache(max_entries=4, ttl_s=None)
        cache.store("k", 0, {"answers": [1, 2]})
        first = cache.lookup("k", 0)
        first["answers"].append(3)
        first["cached"] = True
        assert cache.lookup("k", 0) == {"answers": [1, 2]}

    def test_mutating_the_stored_value_after_store(self):
        cache = AnswerCache(max_entries=4, ttl_s=None)
        value = {"answers": [1]}
        cache.store("k", 0, value)
        value["answers"].append(2)
        assert cache.lookup("k", 0) == {"answers": [1]}


class TestThreadSafety:
    def test_concurrent_store_lookup(self):
        cache = AnswerCache(max_entries=64, ttl_s=None)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    key = ("k", (base + i) % 32)
                    cache.store(key, 0, i)
                    got = cache.lookup(key, 0)
                    assert got is None or isinstance(got, int)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(b,)) for b in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors
        assert len(cache) <= 64


class _SlowToCopy:
    """A cached payload whose deep copy takes a measurable sleep.

    ``time.sleep`` releases the GIL, so copies of *different* hits can
    genuinely overlap — unless they are serialized behind a lock.
    """

    COPY_S = 0.05

    def __deepcopy__(self, memo):
        time.sleep(self.COPY_S)
        return _SlowToCopy()


class TestHitContention:
    def test_concurrent_hits_do_not_serialize_on_the_copy(self):
        # Regression: lookup() used to deep-copy the value while still
        # holding the table lock, so N concurrent hits on a large
        # response took N * copy_time wall time.  The copy now happens
        # after release; four overlapping hits should take roughly one
        # copy, not four.
        cache = AnswerCache(max_entries=8, ttl_s=None)
        cache.store("big", 0, _SlowToCopy())
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        errors = []

        def hit():
            try:
                barrier.wait(5)
                got = cache.lookup("big", 0)
                assert isinstance(got, _SlowToCopy)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(n_threads)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        elapsed = time.perf_counter() - start
        assert not errors
        assert cache.hits == n_threads
        # Serialized copies would need >= 4 * COPY_S (0.2s).  Allow
        # 2.5x one copy for scheduler noise; the pre-fix behaviour
        # fails this by a wide margin.
        assert elapsed < 2.5 * _SlowToCopy.COPY_S, (
            f"hits serialized: {elapsed:.3f}s for {n_threads} copies"
        )

    def test_hit_rate_is_consistent_under_races(self):
        # hit_rate reads two counters; unlocked it could pair a fresh
        # hits value with a stale misses value and report > 1.0.
        cache = AnswerCache(max_entries=8, ttl_s=None)
        cache.store("k", 0, 1)
        stop = threading.Event()
        errors = []

        def churn():
            while not stop.is_set():
                cache.lookup("k", 0)
                cache.lookup("absent", 0)

        def read():
            try:
                while not stop.is_set():
                    rate = cache.hit_rate
                    assert 0.0 <= rate <= 1.0
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(2)]
        threads.append(threading.Thread(target=read))
        for t in threads:
            t.start()
        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join(5)
        assert not errors
