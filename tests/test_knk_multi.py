"""Tests for multi-keyword k-nk (conjunction / disjunction)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PPKWS
from repro.exceptions import QueryError
from repro.graph import LabeledGraph, combine, dijkstra
from repro.semantics import knk_multi_search
from tests.conftest import random_connected_graph


@pytest.fixture
def multi_label_graph():
    g = LabeledGraph.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4)],
        {1: {"a"}, 2: {"a", "b"}, 3: {"b"}, 4: {"a", "b"}},
    )
    return g


class TestKnkMultiSearch:
    def test_conjunction_requires_all(self, multi_label_graph):
        ans = knk_multi_search(multi_label_graph, 0, ["a", "b"], k=3, mode="and")
        assert ans.vertices() == [2, 4]
        assert ans.distances() == [2.0, 4.0]
        assert ans.keyword == "a&b"

    def test_disjunction_accepts_any(self, multi_label_graph):
        ans = knk_multi_search(multi_label_graph, 0, ["a", "b"], k=3, mode="or")
        assert ans.vertices() == [1, 2, 3]
        assert ans.keyword == "a|b"

    def test_single_keyword_equals_knk(self, multi_label_graph):
        from repro.semantics import knk_search

        multi = knk_multi_search(multi_label_graph, 0, ["a"], k=3, mode="or")
        single = knk_search(multi_label_graph, 0, "a", k=3)
        assert multi.distances() == single.distances()

    def test_invalid(self, multi_label_graph):
        with pytest.raises(QueryError):
            knk_multi_search(multi_label_graph, 0, [], k=1)
        with pytest.raises(QueryError):
            knk_multi_search(multi_label_graph, 0, ["a"], k=0)
        with pytest.raises(QueryError):
            knk_multi_search(multi_label_graph, 0, ["a"], k=1, mode="xor")

    def test_extra_matches(self, multi_label_graph):
        ans = knk_multi_search(
            multi_label_graph, 0, ["zz"], k=1, mode="and", extra_matches={3}
        )
        assert ans.vertices() == [3]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_and_is_subset_of_or(self, seed):
        g = random_connected_graph(25, 8, seed)
        and_ans = knk_multi_search(g, 0, ["a", "b"], k=30, mode="and")
        or_ans = knk_multi_search(g, 0, ["a", "b"], k=30, mode="or")
        # every AND match also matches OR (same distances)
        or_map = dict(zip(or_ans.vertices(), or_ans.distances()))
        for v, d in zip(and_ans.vertices(), and_ans.distances()):
            if v in or_map:  # may be beyond OR's k-th entry
                assert or_map[v] == pytest.approx(d)


class TestPPKnkMulti:
    @pytest.fixture
    def engine(self, small_public_private):
        pub, priv = small_public_private
        # add overlapping labels so conjunctions are satisfiable
        pub.add_labels(3, {"db"})     # 3 carries ai + db
        priv.add_labels("x2", {"db"})  # x2 carries ai + db
        engine = PPKWS(pub, sketch_k=8)
        engine.attach("bob", priv)
        return engine, pub, priv

    def test_disjunction_sound(self, engine):
        eng, pub, priv = engine
        gc = combine(pub, priv)
        result = eng.knk_multi("bob", "x1", ["db", "ai"], k=5, mode="or")
        exact = dijkstra(gc, "x1")
        for m in result.answer.matches:
            assert m.distance >= exact.get(m.vertex, float("inf")) - 1e-9
            assert gc.labels(m.vertex) & {"db", "ai"}

    def test_conjunction_matches_carry_all_keywords(self, engine):
        eng, pub, priv = engine
        gc = combine(pub, priv)
        result = eng.knk_multi("bob", "x1", ["db", "ai"], k=5, mode="and")
        assert result.answer.matches, "expected conjunctive matches"
        for m in result.answer.matches:
            assert {"db", "ai"} <= gc.labels(m.vertex)

    def test_private_conjunctive_matches_guaranteed(self, engine):
        eng, pub, priv = engine
        gc = combine(pub, priv)
        from repro.semantics import knk_multi_search

        truth = knk_multi_search(gc, "x1", ["db", "ai"], k=5, mode="and")
        result = eng.knk_multi("bob", "x1", ["db", "ai"], k=5, mode="and")
        got = {m.vertex: m.distance for m in result.answer.matches}
        kth = truth.kth_distance()
        for m in truth.matches:
            if m.vertex in priv and m.distance < kth:
                assert m.vertex in got
                assert got[m.vertex] == pytest.approx(m.distance)

    def test_invalid_queries(self, engine):
        eng, _, _ = engine
        with pytest.raises(QueryError):
            eng.knk_multi("bob", "x1", [], k=3)
        with pytest.raises(QueryError):
            eng.knk_multi("bob", "x1", ["db"], k=0)
        with pytest.raises(QueryError):
            eng.knk_multi("bob", "not-private", ["db"], k=3)
        with pytest.raises(QueryError):
            eng.knk_multi("bob", "x1", ["db"], k=3, mode="nand")

    def test_breakdown_populated(self, engine):
        eng, _, _ = engine
        result = eng.knk_multi("bob", "x1", ["db", "ai"], k=3, mode="or")
        assert result.breakdown.total > 0
        assert result.counters.final_answers == len(result.answer.matches)
