"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DatasetError,
    EdgeNotFoundError,
    GraphError,
    IndexBuildError,
    QueryError,
    ReproError,
    VertexNotFoundError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GraphError, QueryError, IndexBuildError, DatasetError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_vertex_not_found_is_key_error(self):
        assert issubclass(VertexNotFoundError, KeyError)
        assert issubclass(VertexNotFoundError, GraphError)

    def test_edge_not_found_is_key_error(self):
        assert issubclass(EdgeNotFoundError, KeyError)

    def test_single_except_catches_everything(self):
        for exc in (
            GraphError("x"),
            QueryError("x"),
            IndexBuildError("x"),
            DatasetError("x"),
            VertexNotFoundError("v"),
            EdgeNotFoundError(1, 2),
        ):
            try:
                raise exc
            except ReproError:
                pass


class TestMessages:
    def test_vertex_error_carries_vertex(self):
        err = VertexNotFoundError("bob")
        assert err.vertex == "bob"
        assert "bob" in str(err)

    def test_edge_error_carries_edge(self):
        err = EdgeNotFoundError(1, "a")
        assert err.edge == (1, "a")
        assert "1" in str(err) and "a" in str(err)
