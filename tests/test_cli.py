"""Tests for the command-line interface."""

from __future__ import annotations


import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("ds")
    code = main([
        "generate", "--dataset", "yago", "--vertices", "300",
        "--seed", "5", "--out", str(out),
    ])
    assert code == 0
    return out


class TestGenerate:
    def test_files_written(self, dataset_dir):
        assert (dataset_dir / "public.graph").exists()
        assert (dataset_dir / "private_user0.graph").exists()

    def test_ppdblp_vertices_mapping(self, tmp_path):
        code = main([
            "generate", "--dataset", "ppdblp", "--vertices", "200",
            "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "public.graph").exists()


class TestIndex:
    def test_build_and_persist(self, dataset_dir, tmp_path):
        out = tmp_path / "idx.jsonl"
        code = main([
            "index", "--graph", str(dataset_dir / "public.graph"),
            "--out", str(out), "--k", "2",
        ])
        assert code == 0
        assert out.exists() and out.stat().st_size > 0


class TestQuery:
    def _common(self, dataset_dir):
        return [
            "--public", str(dataset_dir / "public.graph"),
            "--private", str(dataset_dir / "private_user0.graph"),
        ]

    def test_blinks_query(self, dataset_dir, capsys):
        code = main([
            "query", *self._common(dataset_dir),
            "--semantic", "blinks", "--keywords", "t0,t1", "--tau", "5",
        ])
        assert code == 0
        assert "public-private answers" in capsys.readouterr().out

    def test_rclique_with_persisted_index(self, dataset_dir, tmp_path, capsys):
        idx = tmp_path / "idx.jsonl"
        main(["index", "--graph", str(dataset_dir / "public.graph"),
              "--out", str(idx)])
        capsys.readouterr()
        code = main([
            "query", *self._common(dataset_dir), "--index", str(idx),
            "--semantic", "rclique", "--keywords", "t0,t2", "--tau", "5",
        ])
        assert code == 0
        assert "answers" in capsys.readouterr().out

    def test_knk_query(self, dataset_dir, capsys):
        code = main([
            "query", *self._common(dataset_dir),
            "--semantic", "knk", "--keywords", "t0",
            "--source", "user0:v0", "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "matches" in out

    def test_missing_keywords_is_error(self, dataset_dir, capsys):
        code = main([
            "query", *self._common(dataset_dir), "--semantic", "blinks",
        ])
        assert code == 2

    def test_knk_missing_source_is_error(self, dataset_dir):
        code = main([
            "query", *self._common(dataset_dir),
            "--semantic", "knk", "--keywords", "t0",
        ])
        assert code == 2


class TestBench:
    def test_bench_small(self, capsys):
        code = main([
            "bench", "--dataset", "ppdblp", "--semantic", "blinks",
            "--scale", "small", "--queries", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PPKWS(ms)" in out
        assert "PEval(ms)" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
