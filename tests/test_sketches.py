"""Tests for ADS / PADS / KPADS (paper Sec. V)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexBuildError
from repro.graph import INF, LabeledGraph, dijkstra, pagerank
from repro.sketches import (
    approximation_factor,
    build_ads,
    build_kpads,
    build_pads,
    build_sketch_from_ranks,
    measure_quality,
    random_ranks,
    timed_build,
)
from tests.conftest import random_connected_graph


class TestSketchConstruction:
    def test_every_vertex_has_its_own_center(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=1)
        for v in paper_public_graph.vertices():
            assert pads.sketch(v).get(v) == 0.0

    def test_top_priority_vertex_in_all_sketches(self, paper_public_graph):
        ranks = pagerank(paper_public_graph)
        top = max(ranks, key=lambda v: ranks[v])
        pads = build_pads(paper_public_graph, k=1, ranks=ranks)
        for v in paper_public_graph.vertices():
            # the graph is connected, so the global top priority center
            # is visible from everywhere
            assert top in pads.sketch(v)

    def test_invalid_k(self, triangle_graph):
        with pytest.raises(IndexBuildError):
            build_sketch_from_ranks(triangle_graph, {"a": 1, "b": 2, "c": 3}, 0)

    def test_missing_ranks_rejected(self, triangle_graph):
        with pytest.raises(IndexBuildError):
            build_sketch_from_ranks(triangle_graph, {"a": 1.0}, 1)

    def test_sketch_sizes_grow_with_k(self, paper_public_graph):
        sizes = [
            build_pads(paper_public_graph, k=k).total_entries for k in (1, 2, 3)
        ]
        assert sizes == sorted(sizes)

    def test_ads_deterministic_per_seed(self, paper_public_graph):
        a1 = build_ads(paper_public_graph, k=2, seed=3)
        a2 = build_ads(paper_public_graph, k=2, seed=3)
        assert a1.entries == a2.entries

    def test_random_ranks_in_unit_interval(self, paper_public_graph):
        ranks = random_ranks(paper_public_graph, seed=1)
        assert all(0.0 <= r <= 1.0 for r in ranks.values())
        assert len(ranks) == paper_public_graph.num_vertices


class TestEstimation:
    def test_self_distance_zero(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        assert pads.estimate("v1", "v1") == 0.0

    def test_estimate_is_upper_bound(self, paper_public_graph):
        """d_hat >= d for every pair (common-center paths are real paths)."""
        pads = build_pads(paper_public_graph, k=2)
        for s in paper_public_graph.vertices():
            exact = dijkstra(paper_public_graph, s)
            for t in paper_public_graph.vertices():
                est = pads.estimate(s, t)
                assert est >= exact.get(t, INF) - 1e-9

    def test_unknown_vertices_inf(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        assert pads.estimate("v1", "nope") == INF
        assert pads.estimate("nope", "nope") == INF

    def test_disconnected_pairs_inf(self):
        g = LabeledGraph.from_edges([(1, 2), (3, 4)])
        pads = build_pads(g, k=2)
        assert pads.estimate(1, 3) == INF

    def test_center_pair_exact(self, paper_public_graph):
        """If u is a center of v's sketch, the estimate is exact."""
        pads = build_pads(paper_public_graph, k=2)
        exact_from = {}
        for v in paper_public_graph.vertices():
            for center, d in pads.sketch(v).items():
                if center not in exact_from:
                    exact_from[center] = dijkstra(paper_public_graph, center)
                assert d == pytest.approx(exact_from[center][v])
                assert pads.estimate(v, center) == pytest.approx(d)

    def test_stats_helpers(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        assert pads.num_vertices == paper_public_graph.num_vertices
        assert pads.total_entries == sum(
            len(pads.sketch(v)) for v in paper_public_graph.vertices()
        )
        assert pads.average_size() > 0
        assert set(pads.centers()) <= set(paper_public_graph.vertices())


class TestApproximationGuarantee:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 3000))
    def test_2c_minus_1_bound(self, seed):
        """Lemma V.1: d_hat <= (2c-1) d on random connected graphs."""
        g = random_connected_graph(40, 15, seed)
        k = 2
        pads = build_pads(g, k=k)
        factor = approximation_factor(g.num_vertices, k)
        exact = dijkstra(g, 0)
        for t, d in exact.items():
            if d > 0:
                assert pads.estimate(0, t) <= factor * d + 1e-9

    def test_factor_degenerate_cases(self):
        assert approximation_factor(1, 2) == 1
        assert approximation_factor(0, 2) == 1
        assert approximation_factor(100, 1) >= 1
        assert approximation_factor(100, 2) == 2 * 7 - 1


class TestPadsVsAds:
    def test_pads_more_accurate_on_hubby_graph(self):
        """On a graph with a clear hub structure PADS must beat ADS."""
        g = LabeledGraph()
        # Two stars joined by their centers: the centers cover all paths.
        for i in range(1, 20):
            g.add_edge("hub1", f"a{i}")
            g.add_edge("hub2", f"b{i}")
        g.add_edge("hub1", "hub2")
        ads = build_ads(g, k=1, seed=5)
        pads = build_pads(g, k=1)
        qa = measure_quality(g, ads, 200, seed=9)
        qp = measure_quality(g, pads, 200, seed=9)
        assert qp.mean_approx_ratio <= qa.mean_approx_ratio + 1e-9
        assert qp.mean_approx_ratio == pytest.approx(1.0, abs=0.05)


class TestKpads:
    def test_merge_keeps_minimum(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        kpads = build_kpads(paper_public_graph, pads)
        for t in paper_public_graph.label_universe():
            merged = kpads.sketch(t)
            for center, d in merged.items():
                candidates = [
                    pads.sketch(v).get(center, INF)
                    for v in paper_public_graph.vertices_with_label(t)
                ]
                assert d == pytest.approx(min(candidates))

    def test_keyword_estimate_upper_bounds_true_distance(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        kpads = build_kpads(paper_public_graph, pads)
        for s in paper_public_graph.vertices():
            exact = dijkstra(paper_public_graph, s)
            for t in paper_public_graph.label_universe():
                true = min(
                    (exact.get(v, INF)
                     for v in paper_public_graph.vertices_with_label(t)),
                    default=INF,
                )
                est = kpads.estimate(pads, s, t)
                assert est >= true - 1e-9

    def test_witness_carries_keyword(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        kpads = build_kpads(paper_public_graph, pads)
        for s in ("v1", "p4", "v7"):
            for t in ("a", "f", "c"):
                d, witness = kpads.estimate_with_witness(pads, s, t)
                if witness is not None:
                    assert paper_public_graph.has_label(witness, t)

    def test_vertex_carrying_keyword_estimates_zero(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        kpads = build_kpads(paper_public_graph, pads)
        # v0 carries "a": its own sketch center (v0, 0) merges into
        # KPADS(a), so the estimate from v0 must be 0.
        assert kpads.estimate(pads, "v0", "a") == 0.0

    def test_unknown_keyword_inf(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        kpads = build_kpads(paper_public_graph, pads)
        assert kpads.estimate(pads, "v1", "zzz") == INF
        assert kpads.estimate_with_witness(pads, "v1", "zzz") == (INF, None)

    def test_restricted_vocabulary(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        kpads = build_kpads(paper_public_graph, pads, keywords=["a"])
        assert kpads.num_keywords == 1
        assert kpads.sketch("f") == {}

    def test_top_candidates_sorted_and_labeled(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        kpads = build_kpads(paper_public_graph, pads, per_center=4)
        cands = kpads.top_candidates(pads, "v13", "e", k=5)
        assert cands
        distances = [d for _, d in cands]
        assert distances == sorted(distances)
        for v, _ in cands:
            assert paper_public_graph.has_label(v, "e")

    def test_top_candidates_distinct(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=3)
        kpads = build_kpads(paper_public_graph, pads, per_center=4)
        cands = kpads.top_candidates(pads, "v0", "f", k=10)
        vertices = [v for v, _ in cands]
        assert len(vertices) == len(set(vertices))

    def test_total_entries_counts(self, paper_public_graph):
        pads = build_pads(paper_public_graph, k=2)
        kpads = build_kpads(paper_public_graph, pads)
        assert kpads.total_entries == sum(
            len(kpads.sketch(t)) for t in paper_public_graph.label_universe()
        )


class TestQualityMeasurement:
    def test_exact_sketch_has_ratio_one(self, paper_public_graph):
        # A very large k makes the sketch exact.
        pads = build_pads(paper_public_graph, k=50)
        q = measure_quality(paper_public_graph, pads, 100, seed=3)
        assert q.mean_approx_ratio == pytest.approx(1.0)
        assert q.exact_fraction == pytest.approx(1.0)
        assert q.mean_relative_error == pytest.approx(0.0)

    def test_empty_graph_quality(self):
        g = LabeledGraph()
        pads = build_pads(g, k=1)
        q = measure_quality(g, pads, 10)
        assert q.pairs_sampled == 0

    def test_timed_build_returns_sketch(self, triangle_graph):
        sketch, secs = timed_build(lambda: build_pads(triangle_graph, k=1))
        assert secs >= 0
        assert sketch.num_vertices == 3
