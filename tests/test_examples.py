"""Smoke tests for the runnable examples.

Only the laptop-instant examples run here (the larger ones build
multi-thousand-vertex indexes and belong to manual runs); the goal is to
catch API drift that would break the documented entry points.
"""

from __future__ import annotations

import runpy
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_tells_the_fig1_story(capsys):
    out = _run("quickstart.py", capsys)
    assert "answers on Bob's private graph alone : 0" in out
    assert "public-private answers via PPKWS" in out
    assert "root='Bob'" in out


def test_examples_exist_and_have_docstrings():
    expected = {
        "quickstart.py",
        "team_formation.py",
        "knowledge_graph_knk.py",
        "dynamic_private_graph.py",
        "compare_semantics.py",
    }
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        source = (EXAMPLES / name).read_text(encoding="utf-8")
        assert source.lstrip().startswith('"""'), f"{name} lacks a docstring"
        assert "def main()" in source
