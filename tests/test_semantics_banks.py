"""Tests for the BANKS tree-answer semantic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.graph import LabeledGraph, combine_lazy, dijkstra
from repro.semantics import banks_search, blinks_search
from repro.semantics.banks import keyword_expansion_with_paths
from tests.conftest import random_connected_graph


@pytest.fixture
def y_graph():
    """A Y-shaped graph: center 'c' joins three labeled arms."""
    g = LabeledGraph.from_edges(
        [("c", "a1"), ("a1", "a2"), ("c", "b1"), ("b1", "b2"), ("c", "d1")],
        {"a2": {"x"}, "b2": {"y"}, "d1": {"z"}},
    )
    return g


class TestExpansionWithPaths:
    def test_pred_chain_leads_to_origin(self, y_graph):
        reached, pred = keyword_expansion_with_paths(y_graph, ["a2"], tau=10)
        v = "b2"
        hops = 0
        while pred[v] is not None:
            v = pred[v]
            hops += 1
        assert v == "a2"
        assert hops == reached["b2"].distance

    def test_origins_have_no_predecessor(self, y_graph):
        _, pred = keyword_expansion_with_paths(y_graph, ["a2", "b2"], tau=10)
        assert pred["a2"] is None
        assert pred["b2"] is None


class TestBanksSearch:
    def test_center_is_best_root(self, y_graph):
        answers = banks_search(y_graph, ["x", "y", "z"], tau=3.0)
        assert answers
        assert answers[0].root == "c"
        assert answers[0].weight() == 5.0  # 2 + 2 + 1

    def test_tree_edges_form_connected_tree(self, y_graph):
        answers = banks_search(y_graph, ["x", "y", "z"], tau=3.0)
        for ans in answers:
            assert ans.is_connected_tree(y_graph)
            assert ans.tree_vertices() >= {m.vertex for m in ans.matches.values()}

    def test_tree_weight_at_most_answer_weight(self, y_graph):
        # Paths may share edges, so tree weight <= sum of path lengths.
        answers = banks_search(y_graph, ["x", "y", "z"], tau=3.0)
        best = answers[0]
        assert best.tree_weight(y_graph) <= best.weight() + 1e-9

    def test_shared_prefix_edges_deduplicated(self):
        # two keywords down the same arm: the shared path appears once
        g = LabeledGraph.from_edges(
            [("r", "m"), ("m", "k1"), ("m", "k2")],
            {"k1": {"x"}, "k2": {"y"}},
        )
        answers = banks_search(g, ["x", "y"], tau=3.0)
        root_r = next(a for a in answers if a.root == "r")
        # r-m shared; m-k1, m-k2 distinct: exactly 3 edges
        assert len(root_r.edges) == 3

    def test_no_answer_when_keyword_missing(self, y_graph):
        assert banks_search(y_graph, ["x", "none"], tau=5.0) == []

    def test_tau_prunes(self, y_graph):
        answers = banks_search(y_graph, ["x", "y"], tau=1.0)
        assert answers == []

    def test_invalid(self, y_graph):
        with pytest.raises(QueryError):
            banks_search(y_graph, [], tau=1.0)
        with pytest.raises(QueryError):
            banks_search(y_graph, ["x"], tau=-1)
        with pytest.raises(QueryError):
            banks_search(y_graph, ["x"], tau=1.0, k=0)

    def test_same_roots_as_blinks(self, y_graph):
        """BANKS and Blinks agree on roots and weights (they differ only
        in materializing the tree)."""
        banks = banks_search(y_graph, ["x", "y"], tau=4.0, k=100)
        blinks = blinks_search(y_graph, ["x", "y"], tau=4.0, k=100)
        assert {a.root for a in banks} == {a.root for a in blinks}
        banks_w = {a.root: a.weight() for a in banks}
        for b in blinks:
            assert banks_w[b.root] == pytest.approx(b.weight())

    def test_works_on_combined_view(self, small_public_private):
        pub, priv = small_public_private
        view = combine_lazy(pub, priv)
        answers = banks_search(view, ["db", "ai"], tau=4.0)
        assert answers
        for ans in answers:
            assert ans.is_connected_tree(view)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000))
def test_banks_tree_paths_are_shortest(seed):
    """Each root-to-match path implied by the tree has the reported
    (shortest) length."""
    g = random_connected_graph(25, 8, seed)
    answers = banks_search(g, ["a", "b"], tau=4.0, k=5)
    for ans in answers:
        exact = dijkstra(g, ans.root)
        for q, m in ans.matches.items():
            assert m.distance == pytest.approx(exact[m.vertex])
        assert ans.is_connected_tree(g)
