"""Unit tests for the observability layer (:mod:`repro.obs`)."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    QueryTrace,
    TraceRing,
    render_prometheus,
)


@pytest.fixture(autouse=True)
def no_global_registry():
    """Each test starts and ends with observability uninstalled."""
    obs.uninstall()
    yield
    obs.uninstall()


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", labels={"op": "blinks", "status": "ok"})
        reg.inc("requests_total", amount=2, labels={"op": "blinks", "status": "ok"})
        assert reg.value(
            "requests_total", labels={"op": "blinks", "status": "ok"}
        ) == 3.0
        # distinct label sets are distinct series
        assert reg.value(
            "requests_total", labels={"op": "blinks", "status": "error"}
        ) == 0.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("c", labels={"a": 1, "b": 2})
        assert reg.value("c", labels={"b": 2, "a": 1}) == 1.0

    def test_gauge_set(self):
        reg = MetricsRegistry()
        reg.set_gauge("in_flight", 3)
        reg.set_gauge("in_flight", 1)
        assert reg.value("in_flight") == 1.0

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.0007)   # -> le=0.001 bucket
        reg.observe("lat", 0.3)      # -> le=0.5 bucket
        reg.observe("lat", 99.0)     # -> +Inf bucket
        hist = reg.histogram("lat")
        assert hist is not None
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.3007 + 99.0)
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS
        # cumulative counts are monotone and end at the total
        cumulative = hist.cumulative_counts()
        assert cumulative[-1] == 3
        assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("c", labels={"op": "knk"})
        reg.set_gauge("g", 7.0)
        reg.observe("h", 0.01)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == {"op=knk": 1.0}
        assert snap["gauges"]["g"] == {"": 7.0}
        assert snap["histograms"]["h"][""]["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.reset()
        assert reg.value("c") == 0.0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_thread_safety_of_updates(self):
        reg = MetricsRegistry()
        threads = 8
        per_thread = 2_000
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                reg.inc("c", labels={"op": "x"})
                reg.observe("h", 0.001)

        ts = [threading.Thread(target=worker) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert reg.value("c", labels={"op": "x"}) == threads * per_thread
        assert reg.histogram("h").count == threads * per_thread

    def test_install_uninstall(self):
        reg = MetricsRegistry()
        assert obs.installed() is None
        assert obs.install(reg) is None
        assert obs.installed() is reg
        assert obs.uninstall() is reg
        assert obs.installed() is None


class TestPrometheusRenderer:
    def test_none_registry_renders_empty(self):
        assert render_prometheus(None) == ""

    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.inc("ppkws_requests_total", labels={"op": "blinks", "status": "ok"})
        reg.set_gauge("ppkws_in_flight_requests", 2)
        text = render_prometheus(reg)
        assert "# TYPE ppkws_requests_total counter" in text
        assert 'ppkws_requests_total{op="blinks",status="ok"} 1' in text
        assert "# TYPE ppkws_in_flight_requests gauge" in text
        assert "ppkws_in_flight_requests 2" in text
        assert text.endswith("\n")

    def test_histogram_triplet(self):
        reg = MetricsRegistry()
        reg.observe("lat_seconds", 0.002, labels={"op": "knk"})
        text = render_prometheus(reg)
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{op="knk",le="0.0025"} 1' in text
        assert 'lat_seconds_bucket{op="knk",le="+Inf"} 1' in text
        assert 'lat_seconds_sum{op="knk"} 0.002' in text
        assert 'lat_seconds_count{op="knk"} 1' in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.inc("c", labels={"msg": 'quote " and \\ slash'})
        text = render_prometheus(reg)
        assert r'msg="quote \" and \\ slash"' in text


class TestTraceRing:
    def test_bounded(self):
        ring = TraceRing(capacity=3)
        for i in range(10):
            ring.record(QueryTrace(op=f"op{i}", status="ok", duration_ms=1.0))
        assert len(ring) == 3
        assert ring.recorded == 10
        assert [t["op"] for t in ring.snapshot()] == ["op7", "op8", "op9"]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)

    def test_trace_to_dict_minimal_and_full(self):
        minimal = QueryTrace(op="stats", status="ok", duration_ms=0.5)
        assert minimal.to_dict() == {
            "op": "stats", "status": "ok", "duration_ms": 0.5,
        }
        full = QueryTrace(
            op="blinks", status="degraded", duration_ms=12.0,
            network="net", owner="bob",
            step_ms={"peval": 3.0}, counters={"final_answers": 2},
            expansions=128, degraded=True,
            completed_steps=("peval",), interrupted_step="arefine",
            error=None,
        )
        d = full.to_dict()
        assert d["network"] == "net" and d["owner"] == "bob"
        assert d["degraded"] is True
        assert d["completed_steps"] == ["peval"]
        assert d["interrupted_step"] == "arefine"
        assert d["expansions"] == 128


class TestPipelineObservation:
    def test_engine_queries_record_step_metrics(self, small_public_private):
        from repro import PPKWS

        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        reg = MetricsRegistry()
        obs.install(reg)
        try:
            engine.blinks("bob", ["db", "ai"], tau=4.0)
            engine.knk("bob", "x1", "cv", k=2)
        finally:
            obs.uninstall()
        for pipeline in ("blinks", "knk"):
            for step in ("peval", "arefine", "acomplete"):
                hist = reg.histogram(
                    "ppkws_step_seconds",
                    labels={"pipeline": pipeline, "step": step},
                )
                assert hist is not None and hist.count == 1, (pipeline, step)
        # work counters landed too
        assert reg.value(
            "ppkws_query_work_total",
            labels={"pipeline": "blinks", "counter": "final_answers"},
        ) > 0

    def test_banks_not_double_counted_as_blinks(self, small_public_private):
        from repro import PPKWS

        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        reg = MetricsRegistry()
        obs.install(reg)
        try:
            engine.banks("bob", ["db", "ai"], tau=4.0)
        finally:
            obs.uninstall()
        banks = reg.histogram(
            "ppkws_step_seconds", labels={"pipeline": "banks", "step": "peval"}
        )
        assert banks is not None and banks.count == 1
        assert reg.histogram(
            "ppkws_step_seconds", labels={"pipeline": "blinks", "step": "peval"}
        ) is None

    def test_degraded_pipeline_counted(self, small_public_private):
        from repro import PPKWS

        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        reg = MetricsRegistry()
        obs.install(reg)
        try:
            result = engine.blinks("bob", ["db", "ai"], tau=4.0, deadline_ms=0)
        finally:
            obs.uninstall()
        assert result.degraded
        assert reg.value(
            "ppkws_pipeline_degraded_total",
            labels={"pipeline": "blinks", "interrupted_step": "peval"},
        ) == 1.0

    def test_no_registry_records_nothing(self, small_public_private):
        from repro import PPKWS

        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        # no install: must simply not blow up (and obviously record nowhere)
        engine.blinks("bob", ["db", "ai"], tau=4.0)


class TestBatchCacheObservation:
    def test_cache_hits_and_misses_recorded(self, small_public_private):
        from repro import PPKWS
        from repro.core.batch import BatchSession

        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        session = BatchSession(engine, "bob")
        reg = MetricsRegistry()
        obs.install(reg)
        try:
            session.blinks(["db", "ai"], tau=4.0)
            session.blinks(["db", "ai"], tau=4.0)  # warm re-run
        finally:
            obs.uninstall()
        hits = reg.value("ppkws_batch_cache_hits_total")
        misses = reg.value("ppkws_batch_cache_misses_total")
        assert hits == session.cache_hits
        assert misses == session.cache_misses
        assert hits > 0
        assert 0.0 < session.cache_hit_rate <= 1.0
