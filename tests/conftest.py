"""Shared fixtures: the paper's running example and small random graphs."""

from __future__ import annotations

import random

import pytest

from repro.graph import LabeledGraph, combine


@pytest.fixture
def triangle_graph() -> LabeledGraph:
    """Three labeled vertices in a triangle with mixed weights."""
    g = LabeledGraph("triangle")
    g.add_vertex("a", {"red"})
    g.add_vertex("b", {"green"})
    g.add_vertex("c", {"blue", "red"})
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("a", "c", 4.0)
    return g


@pytest.fixture
def paper_public_graph() -> LabeledGraph:
    """The public graph fragment of the paper's Fig. 4 (unit weights).

    Vertices/edges follow the figure's PADS/ADS tables (Tab. II/III):
    v0-p4-v13 chain, the v1/p1/p2 cluster, the v4/v9 area and the
    p5/p6/p7/v7/v16 fringe.
    """
    g = LabeledGraph("fig4")
    labels = {
        "v0": {"a", "b", "f"},
        "p4": {"e"},
        "v13": {"f"},
        "v1": {"f", "g"},
        "p1": {"e"},
        "p2": {"g"},
        "v4": {"c", "e"},
        "v9": {"a"},
        "p6": {"g"},
        "v16": {"a", "e"},
        "v7": {"e", "f"},
        "p5": {"f"},
        "p7": {"f", "d"},
    }
    for v, ls in labels.items():
        g.add_vertex(v, ls)
    edges = [
        ("v0", "p4"),
        ("p4", "v13"),
        ("v13", "v1"),
        ("v13", "v4"),
        ("v1", "p1"),
        ("v1", "p2"),
        ("p2", "v13"),
        ("v4", "v9"),
        ("v4", "p6"),
        ("v9", "v16"),
        ("v16", "v7"),
        ("v7", "p7"),
        ("v7", "p6"),
        ("p5", "v16"),
    ]
    for u, v in edges:
        g.add_edge(u, v)
    return g


@pytest.fixture
def small_public_private():
    """A compact public/private pair with interesting portal structure.

    Public: an 8-cycle with chords, integer vertices 0..7.
    Private: strings 'x1'..'x4' plus portals 2 and 5.
    """
    pub = LabeledGraph("pub")
    for v in range(8):
        pub.add_vertex(v)
    cycle = [(i, (i + 1) % 8) for i in range(8)]
    for u, v in cycle:
        pub.add_edge(u, v)
    pub.add_edge(0, 4)
    pub.add_labels(0, {"db"})
    pub.add_labels(3, {"ai"})
    pub.add_labels(6, {"cv"})
    pub.add_labels(5, {"ml"})

    priv = LabeledGraph("priv")
    priv.add_vertex(2)  # portal
    priv.add_vertex(5)  # portal
    priv.add_vertex("x1", {"db"})
    priv.add_vertex("x2", {"ai"})
    priv.add_vertex("x3", {"cv"})
    priv.add_vertex("x4")
    priv.add_edge(2, "x1")
    priv.add_edge("x1", "x2")
    priv.add_edge("x2", "x4")
    priv.add_edge("x4", 5)
    priv.add_edge("x3", 5)
    return pub, priv


@pytest.fixture
def small_combined(small_public_private) -> LabeledGraph:
    pub, priv = small_public_private
    return combine(pub, priv)


def random_connected_graph(
    n: int, extra_edges: int, seed: int, labels=("a", "b", "c")
) -> LabeledGraph:
    """Random tree plus chords: connected, deterministic per seed."""
    rng = random.Random(seed)
    g = LabeledGraph(f"rand{seed}")
    g.add_vertex(0)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v), rng.choice([1.0, 1.0, 2.0, 3.0]))
    for _ in range(extra_edges):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, rng.choice([1.0, 2.0]))
    for v in range(n):
        if rng.random() < 0.6:
            g.add_labels(v, rng.sample(labels, rng.randint(1, len(labels))))
    return g
