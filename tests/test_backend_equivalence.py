"""Frozen vs dict engines return identical answers across all pipelines.

The tentpole guarantee of the frozen backend is *transparency*: a PPKWS
engine whose public graph was interned into CSR arrays must return the
same answers, distances and work counters as one built over the plain
dict graph.  These tests build both engines side by side on the shared
fixtures and compare every query pipeline (blinks, rclique, banks, knk,
knk_multi) plus the indexes themselves.
"""

from __future__ import annotations

import pytest

from repro.core.framework import PPKWS
from repro.graph import FrozenGraph, LabeledGraph
from tests.conftest import random_connected_graph


def _engines(pub, priv, owner="bob"):
    """(frozen engine, dict engine) over the same public/private pair."""
    frozen = PPKWS(pub, sketch_k=2, freeze=True)
    plain = PPKWS(pub, sketch_k=2, freeze=False)
    assert isinstance(frozen.public, FrozenGraph)
    assert isinstance(plain.public, LabeledGraph)
    frozen.attach(owner, priv)
    plain.attach(owner, priv)
    return frozen, plain


def _canon_rooted(answers):
    """Backend-independent form of a rooted answer list (order preserved)."""
    return [
        (
            a.root,
            sorted(
                (q, m.vertex, m.distance) for q, m in a.matches.items()
            ),
        )
        for a in answers
    ]


def _canon_knk(answer):
    return (
        answer.source,
        answer.keyword,
        [(m.vertex, m.distance) for m in answer.matches],
    )


@pytest.fixture
def engine_pair(small_public_private):
    pub, priv = small_public_private
    return _engines(pub, priv)


# ----------------------------------------------------------------------
# index equivalence
# ----------------------------------------------------------------------
class TestIndexEquivalence:
    def test_pagerank_scores_identical(self, engine_pair):
        frozen, plain = engine_pair
        assert frozen.index.pagerank_scores == plain.index.pagerank_scores

    def test_pads_identical(self, engine_pair):
        frozen, plain = engine_pair
        assert frozen.index.pads.entries == plain.index.pads.entries

    def test_kpads_identical(self, engine_pair):
        frozen, plain = engine_pair
        assert frozen.index.kpads.entries == plain.index.kpads.entries
        assert frozen.index.kpads.witnesses == plain.index.kpads.witnesses
        assert frozen.index.kpads.candidates == plain.index.kpads.candidates

    def test_attachments_identical(self, engine_pair):
        frozen, plain = engine_pair
        af = frozen.attachment("bob")
        ap = plain.attachment("bob")
        assert af.portals == ap.portals
        assert af.refined_portal_pairs == ap.refined_portal_pairs
        for p in af.portals:
            for q in af.portals:
                assert af.portal_map.get(p, q) == ap.portal_map.get(p, q)


# ----------------------------------------------------------------------
# query-pipeline equivalence on the shared fixture
# ----------------------------------------------------------------------
class TestPipelineEquivalence:
    @pytest.mark.parametrize("keywords,tau", [
        (["db", "ai"], 4.0),
        (["db", "cv"], 6.0),
        (["ml", "ai"], 5.0),
    ])
    def test_blinks(self, engine_pair, keywords, tau):
        frozen, plain = engine_pair
        rf = frozen.blinks("bob", keywords, tau=tau, k=5)
        rp = plain.blinks("bob", keywords, tau=tau, k=5)
        assert _canon_rooted(rf.answers) == _canon_rooted(rp.answers)
        assert rf.counters == rp.counters
        assert not rf.degraded and not rp.degraded

    @pytest.mark.parametrize("keywords,tau", [
        (["db", "ai"], 4.0),
        (["db", "cv"], 6.0),
    ])
    def test_rclique(self, engine_pair, keywords, tau):
        frozen, plain = engine_pair
        rf = frozen.rclique("bob", keywords, tau=tau, k=5)
        rp = plain.rclique("bob", keywords, tau=tau, k=5)
        assert _canon_rooted(rf.answers) == _canon_rooted(rp.answers)
        assert rf.counters == rp.counters

    def test_banks_including_tree_edges(self, engine_pair):
        frozen, plain = engine_pair
        rf = frozen.banks("bob", ["db", "ai"], tau=4.0, k=5)
        rp = plain.banks("bob", ["db", "ai"], tau=4.0, k=5)
        assert _canon_rooted(rf.answers) == _canon_rooted(rp.answers)
        for af, ap in zip(rf.answers, rp.answers):
            assert af.edges == ap.edges

    @pytest.mark.parametrize("source,keyword", [
        ("x1", "cv"), ("x1", "db"), (2, "ml"), (5, "ai"),
    ])
    def test_knk(self, engine_pair, source, keyword):
        frozen, plain = engine_pair
        rf = frozen.knk("bob", source, keyword, k=4)
        rp = plain.knk("bob", source, keyword, k=4)
        assert _canon_knk(rf.answer) == _canon_knk(rp.answer)
        assert rf.counters == rp.counters

    @pytest.mark.parametrize("mode", ["and", "or"])
    def test_knk_multi(self, engine_pair, mode):
        frozen, plain = engine_pair
        rf = frozen.knk_multi("bob", "x1", ["db", "ai"], k=5, mode=mode)
        rp = plain.knk_multi("bob", "x1", ["db", "ai"], k=5, mode=mode)
        assert _canon_knk(rf.answer) == _canon_knk(rp.answer)


# ----------------------------------------------------------------------
# query-pipeline equivalence on random public/private pairs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [2, 9])
def test_random_graph_pipeline_equivalence(seed):
    labels = ("t0", "t1", "t2")
    pub = random_connected_graph(60, 25, seed, labels=labels)
    priv = LabeledGraph("priv")
    # Two portals into the public graph plus a private-only tail.
    priv.add_edge(0, "m1")
    priv.add_edge("m1", "m2")
    priv.add_edge("m2", 13)
    priv.add_labels("m1", {"t0"})
    priv.add_labels("m2", {"t1"})
    frozen, plain = _engines(pub, priv)

    rf = frozen.blinks("bob", ["t0", "t1"], tau=6.0, k=5)
    rp = plain.blinks("bob", ["t0", "t1"], tau=6.0, k=5)
    assert _canon_rooted(rf.answers) == _canon_rooted(rp.answers)
    assert rf.counters == rp.counters

    rf = frozen.rclique("bob", ["t0", "t2"], tau=6.0, k=5)
    rp = plain.rclique("bob", ["t0", "t2"], tau=6.0, k=5)
    assert _canon_rooted(rf.answers) == _canon_rooted(rp.answers)

    kf = frozen.knk("bob", "m1", "t2", k=3)
    kp = plain.knk("bob", "m1", "t2", k=3)
    assert _canon_knk(kf.answer) == _canon_knk(kp.answer)

    kf = frozen.knk_multi("bob", "m2", ["t0", "t2"], k=3, mode="and")
    kp = plain.knk_multi("bob", "m2", ["t0", "t2"], k=3, mode="and")
    assert _canon_knk(kf.answer) == _canon_knk(kp.answer)


# ----------------------------------------------------------------------
# sharded (scatter-gather) runs are bit-identical to serial runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [2, 9])
@pytest.mark.parametrize("shards", [2, 3])
def test_sharded_run_bit_identical(seed, shards):
    """The sharded AComplete step bodies must not change any answer.

    Runs knk and blinks through ``spec.run`` with a
    :class:`~repro.serving.shards.LocalShardPlan` (the same scatter /
    bound / cancellation logic the process pool drives, minus the IPC)
    on both backends and compares against the serial runs — wire
    payloads included, so ordering is pinned too.
    """
    from repro.core.engine import ensure_builtin_semantics, semantics_spec
    from repro.serving import LocalShardPlan

    ensure_builtin_semantics()
    labels = ("t0", "t1", "t2")
    pub = random_connected_graph(60, 25, seed, labels=labels)
    priv = LabeledGraph("priv")
    priv.add_edge(0, "m1")
    priv.add_edge("m1", "m2")
    priv.add_edge("m2", 13)
    priv.add_labels("m1", {"t0"})
    priv.add_labels("m2", {"t1"})
    queries = [
        ("knk", {"source": "m1", "keyword": "t2", "k": 4}),
        ("blinks", {"keywords": ["t0", "t1"], "tau": 8.0, "k": 5}),
    ]  # wire-style requests; wire_params fills each spec's defaults
    for engine in _engines(pub, priv):
        att = engine.attachment("bob")
        for name, request in queries:
            spec = semantics_spec(name)
            params = spec.wire_params(dict(request))
            serial = spec.run(engine, att, dict(params))
            sharded = spec.run(
                engine, att, dict(params),
                shards=LocalShardPlan(engine, shards=shards, owner="bob"),
            )
            def payload(result):
                # strip the per-step wall times — the one legitimately
                # nondeterministic field
                out = spec.wire_payload(result)
                out.pop("breakdown", None)
                return out

            assert payload(sharded) == payload(serial), (
                f"{name} diverged on seed={seed} shards={shards} "
                f"backend={type(engine.public).__name__}"
            )


def test_shared_frozen_index_reuse(small_public_private):
    """One frozen index can back many engines (the deployment story)."""
    pub, priv = small_public_private
    from repro.core.framework import PublicIndex

    index = PublicIndex.build(pub, k=2)
    assert isinstance(index.graph, FrozenGraph)
    e1 = PPKWS(pub, index=index)
    e2 = PPKWS(pub, index=index)
    assert e1.index is e2.index
    assert e1.public is index.graph
    e1.attach("bob", priv)
    e2.attach("bob", priv)
    a = e1.blinks("bob", ["db", "ai"], tau=4.0, k=5)
    b = e2.blinks("bob", ["db", "ai"], tau=4.0, k=5)
    assert _canon_rooted(a.answers) == _canon_rooted(b.answers)
