"""Unit tests for :mod:`repro.graph.labeled_graph`."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph import LabeledGraph, path_weight


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.size == 0
        assert list(g.vertices()) == []

    def test_add_vertex_with_labels(self):
        g = LabeledGraph()
        g.add_vertex("v", {"x", "y"})
        assert g.labels("v") == {"x", "y"}
        assert g.vertices_with_label("x") == {"v"}

    def test_add_vertex_merges_labels(self):
        g = LabeledGraph()
        g.add_vertex("v", {"x"})
        g.add_vertex("v", {"y"})
        assert g.labels("v") == {"x", "y"}

    def test_add_edge_creates_vertices(self):
        g = LabeledGraph()
        g.add_edge(1, 2, 3.0)
        assert 1 in g and 2 in g
        assert g.weight(1, 2) == 3.0
        assert g.weight(2, 1) == 3.0

    def test_add_edge_rejects_self_loop(self):
        g = LabeledGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_add_edge_rejects_nonpositive_weight(self):
        g = LabeledGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(1, 2, -1.0)

    def test_readd_edge_overwrites_weight_not_count(self):
        g = LabeledGraph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(1, 2, 5.0)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 5.0

    def test_size_is_v_plus_e(self, triangle_graph):
        assert triangle_graph.size == 3 + 3


class TestRemoval:
    def test_remove_edge(self, triangle_graph):
        triangle_graph.remove_edge("a", "b")
        assert not triangle_graph.has_edge("a", "b")
        assert triangle_graph.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle_graph):
        with pytest.raises(EdgeNotFoundError):
            triangle_graph.remove_edge("a", "zzz")

    def test_remove_vertex_clears_edges_and_labels(self, triangle_graph):
        triangle_graph.remove_vertex("c")
        assert "c" not in triangle_graph
        assert triangle_graph.num_edges == 1
        assert triangle_graph.vertices_with_label("blue") == frozenset()
        # "red" is still carried by "a"
        assert triangle_graph.vertices_with_label("red") == {"a"}

    def test_remove_missing_vertex_raises(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            triangle_graph.remove_vertex("zzz")


class TestLabels:
    def test_label_index_tracks_additions(self):
        g = LabeledGraph()
        g.add_vertex(1)
        g.add_labels(1, {"t"})
        assert g.vertices_with_label("t") == {1}
        assert g.label_frequency("t") == 1

    def test_add_labels_unknown_vertex_raises(self):
        g = LabeledGraph()
        with pytest.raises(VertexNotFoundError):
            g.add_labels(1, {"t"})

    def test_label_universe(self, triangle_graph):
        assert triangle_graph.label_universe() == {"red", "green", "blue"}

    def test_has_label(self, triangle_graph):
        assert triangle_graph.has_label("c", "red")
        assert not triangle_graph.has_label("b", "red")

    def test_average_labels_per_vertex(self, triangle_graph):
        assert triangle_graph.average_labels_per_vertex() == pytest.approx(4 / 3)

    def test_unknown_label_is_empty(self, triangle_graph):
        assert triangle_graph.vertices_with_label("nope") == frozenset()
        assert triangle_graph.label_frequency("nope") == 0


class TestInspection:
    def test_neighbors_and_degree(self, triangle_graph):
        assert set(triangle_graph.neighbors("a")) == {"b", "c"}
        assert triangle_graph.degree("a") == 2

    def test_neighbors_unknown_vertex_raises(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            list(triangle_graph.neighbors("zzz"))
        with pytest.raises(VertexNotFoundError):
            triangle_graph.degree("zzz")
        with pytest.raises(VertexNotFoundError):
            triangle_graph.labels("zzz")

    def test_edges_iterates_each_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        pairs = {frozenset((u, v)) for u, v, _ in edges}
        assert pairs == {
            frozenset(("a", "b")),
            frozenset(("b", "c")),
            frozenset(("a", "c")),
        }

    def test_weight_missing_edge_raises(self, triangle_graph):
        with pytest.raises(EdgeNotFoundError):
            triangle_graph.weight("a", "zzz")

    def test_stats_shape(self, triangle_graph):
        stats = triangle_graph.stats()
        assert stats["num_vertices"] == 3
        assert stats["num_edges"] == 3
        assert stats["avg_degree"] == pytest.approx(2.0)


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle_graph):
        cp = triangle_graph.copy()
        cp.remove_edge("a", "b")
        assert triangle_graph.has_edge("a", "b")
        assert not cp.has_edge("a", "b")
        assert cp.labels("c") == triangle_graph.labels("c")

    def test_subgraph_induced(self, triangle_graph):
        sub = triangle_graph.subgraph(["a", "b"])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.labels("a") == {"red"}

    def test_subgraph_ignores_unknown(self, triangle_graph):
        sub = triangle_graph.subgraph(["a", "zzz"])
        assert sub.num_vertices == 1

    def test_union_merges_vertices_edges_labels(self):
        g1 = LabeledGraph.from_edges([(1, 2)], {1: {"x"}})
        g2 = LabeledGraph.from_edges([(2, 3)], {2: {"y"}})
        u = g1.union(g2)
        assert u.num_vertices == 3
        assert u.num_edges == 2
        assert u.labels(2) == {"y"}
        assert u.labels(1) == {"x"}

    def test_union_shared_edge_takes_min_weight(self):
        g1 = LabeledGraph()
        g1.add_edge(1, 2, 5.0)
        g2 = LabeledGraph()
        g2.add_edge(1, 2, 1.0)
        assert g1.union(g2).weight(1, 2) == 1.0
        assert g2.union(g1).weight(1, 2) == 1.0

    def test_connected_components(self):
        g = LabeledGraph.from_edges([(1, 2), (3, 4)])
        comps = sorted(map(sorted, g.connected_components()))
        assert comps == [[1, 2], [3, 4]]
        assert not g.is_connected()

    def test_empty_graph_is_connected(self):
        assert LabeledGraph().is_connected()

    def test_relabel_disjoint(self):
        g1 = LabeledGraph.from_edges([(1, 2)])
        g2 = LabeledGraph.from_edges([(3, 4)])
        g3 = LabeledGraph.from_edges([(2, 3)])
        assert g1.relabel_disjoint(g2)
        assert not g1.relabel_disjoint(g3)


class TestPathWeight:
    def test_path_weight(self, triangle_graph):
        assert path_weight(triangle_graph, ["a", "b", "c"]) == 3.0

    def test_invalid_path_raises(self, triangle_graph):
        g = triangle_graph
        g.remove_edge("a", "c")
        with pytest.raises(EdgeNotFoundError):
            path_weight(g, ["a", "c"])

    def test_single_vertex_path_is_zero(self, triangle_graph):
        assert path_weight(triangle_graph, ["a"]) == 0.0


class TestFromEdges:
    def test_from_edges_with_labels(self):
        g = LabeledGraph.from_edges([(1, 2), (2, 3)], {3: {"z"}})
        assert g.num_vertices == 3
        assert g.labels(3) == {"z"}

    def test_iteration_protocols(self, triangle_graph):
        assert len(triangle_graph) == 3
        assert set(iter(triangle_graph)) == {"a", "b", "c"}
        assert "a" in triangle_graph
