"""Tests for PP-BANKS (tree answers on the framework)."""

from __future__ import annotations

import pytest

from repro.core import PPKWS
from repro.graph import combine, dijkstra
from repro.semantics.banks import TreeAnswer


@pytest.fixture
def engine(small_public_private):
    pub, priv = small_public_private
    e = PPKWS(pub, sketch_k=8)
    e.attach("bob", priv)
    return e, pub, priv


class TestPPBanks:
    def test_returns_tree_answers(self, engine):
        e, pub, priv = engine
        result = e.banks("bob", ["db", "ai"], tau=4.0, k=5)
        assert result.answers
        for ans in result.answers:
            assert isinstance(ans, TreeAnswer)
            assert ans.edges

    def test_trees_connected_on_combined_graph(self, engine):
        e, pub, priv = engine
        gc = combine(pub, priv)
        result = e.banks("bob", ["db", "ai"], tau=4.0, k=5)
        for ans in result.answers:
            assert ans.is_connected_tree(gc)

    def test_distances_exact_after_materialization(self, engine):
        e, pub, priv = engine
        gc = combine(pub, priv)
        result = e.banks("bob", ["db", "cv"], tau=5.0, k=5)
        for ans in result.answers:
            exact = dijkstra(gc, ans.root)
            for q, m in ans.matches.items():
                assert m.distance == pytest.approx(exact[m.vertex])

    def test_same_roots_as_pp_blinks(self, engine):
        e, _, _ = engine
        banks = e.banks("bob", ["db", "ai"], tau=4.0, k=5)
        blinks = e.blinks("bob", ["db", "ai"], tau=4.0, k=5)
        assert {a.root for a in banks.answers} == {
            a.root for a in blinks.answers
        }

    def test_breakdown_carried_through(self, engine):
        e, _, _ = engine
        result = e.banks("bob", ["db", "ai"], tau=4.0)
        assert result.breakdown.total > 0
        assert result.counters.partial_answers > 0
