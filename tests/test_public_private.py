"""Tests for the public-private graph model (paper Sec. II)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    LabeledGraph,
    PublicPrivateNetwork,
    combine,
    dijkstra,
    portal_nodes,
)
from tests.conftest import random_connected_graph


class TestPortalNodes:
    def test_portals_are_intersection(self, small_public_private):
        pub, priv = small_public_private
        assert portal_nodes(pub, priv) == {2, 5}

    def test_no_overlap_no_portals(self):
        g1 = LabeledGraph.from_edges([(1, 2)])
        g2 = LabeledGraph.from_edges([("a", "b")])
        assert portal_nodes(g1, g2) == frozenset()

    def test_symmetric(self, small_public_private):
        pub, priv = small_public_private
        assert portal_nodes(pub, priv) == portal_nodes(priv, pub)


class TestCombine:
    def test_vertex_and_edge_union(self, small_public_private):
        pub, priv = small_public_private
        gc = combine(pub, priv)
        assert gc.num_vertices == pub.num_vertices + priv.num_vertices - 2
        assert gc.num_edges == pub.num_edges + priv.num_edges

    def test_labels_merged(self, small_public_private):
        pub, priv = small_public_private
        gc = combine(pub, priv)
        assert gc.labels("x1") == {"db"}
        assert gc.labels(0) == {"db"}

    def test_combined_distances_never_longer(self, small_public_private):
        """d_c(u, v) <= d(u, v): adding edges can only shorten paths."""
        pub, priv = small_public_private
        gc = combine(pub, priv)
        pub_dist = dijkstra(pub, 2)
        gc_dist = dijkstra(gc, 2)
        for v, d in pub_dist.items():
            assert gc_dist[v] <= d + 1e-9

    def test_private_shortcut_changes_public_distance(self, small_public_private):
        """The private path 2-x1-x2-x4-5 gives d_c(2,5) = 4 > d(2,5) = 3;
        but private edges can shorten other pairs — verify the canonical
        crossing behaviour on a custom shortcut."""
        pub, priv = small_public_private
        priv.add_edge(2, 5)  # direct private shortcut
        gc = combine(pub, priv)
        assert dijkstra(gc, 2)[5] == 1.0
        assert dijkstra(pub, 2)[5] == 3.0


class TestPublicPrivateNetwork:
    def test_attach_and_query_portals(self, small_public_private):
        pub, priv = small_public_private
        net = PublicPrivateNetwork(pub)
        portals = net.add_private_graph("bob", priv)
        assert portals == {2, 5}
        assert net.portals("bob") == {2, 5}
        assert net.private("bob") is priv

    def test_duplicate_owner_rejected(self, small_public_private):
        pub, priv = small_public_private
        net = PublicPrivateNetwork(pub)
        net.add_private_graph("bob", priv)
        with pytest.raises(GraphError):
            net.add_private_graph("bob", priv)

    def test_detached_private_graph_rejected_by_default(self):
        pub = LabeledGraph.from_edges([(1, 2)])
        priv = LabeledGraph.from_edges([("a", "b")])
        net = PublicPrivateNetwork(pub)
        with pytest.raises(GraphError):
            net.add_private_graph("bob", priv)
        net.add_private_graph("bob", priv, require_portals=False)
        assert net.portals("bob") == frozenset()

    def test_remove_private_graph(self, small_public_private):
        pub, priv = small_public_private
        net = PublicPrivateNetwork(pub)
        net.add_private_graph("bob", priv)
        net.remove_private_graph("bob")
        assert "bob" not in net
        with pytest.raises(GraphError):
            net.private("bob")

    def test_unknown_owner_raises(self, small_public_private):
        pub, _ = small_public_private
        net = PublicPrivateNetwork(pub)
        with pytest.raises(GraphError):
            net.portals("nobody")
        with pytest.raises(GraphError):
            net.remove_private_graph("nobody")

    def test_combined_matches_module_combine(self, small_public_private):
        pub, priv = small_public_private
        net = PublicPrivateNetwork(pub)
        net.add_private_graph("bob", priv)
        gc = net.combined("bob")
        ref = combine(pub, priv)
        assert gc.num_vertices == ref.num_vertices
        assert gc.num_edges == ref.num_edges

    def test_classify_answer_vertices(self, small_public_private):
        pub, priv = small_public_private
        net = PublicPrivateNetwork(pub)
        net.add_private_graph("bob", priv)
        # x1 is private-only; 0 is public-only; 2 is a portal (counts private)
        assert net.classify_answer_vertices("bob", ["x1", 0]) == (True, True)
        assert net.classify_answer_vertices("bob", [2]) == (True, False)
        assert net.classify_answer_vertices("bob", [0]) == (False, True)

    def test_stats(self, small_public_private):
        pub, priv = small_public_private
        net = PublicPrivateNetwork(pub)
        net.add_private_graph("bob", priv)
        stats = net.stats("bob")
        assert stats["portals"] == 2
        assert stats["private_vertices"] == priv.num_vertices
        assert net.stats()["num_owners"] == 1

    def test_owner_iteration(self, small_public_private):
        pub, priv = small_public_private
        net = PublicPrivateNetwork(pub)
        net.add_private_graph("bob", priv)
        assert list(net.owners()) == ["bob"]
        assert len(net) == 1


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_combine_distance_upper_bounds_property(seed: int):
    """For random pairs: d_c <= min(d_public, d_private) on shared vertices."""
    pub = random_connected_graph(25, 10, seed)
    priv = random_connected_graph(10, 3, seed + 1)
    # force overlap: private vertices 0..9 are also public 0..9
    gc = combine(pub, priv)
    d_pub = dijkstra(pub, 0)
    d_priv = dijkstra(priv, 0)
    d_c = dijkstra(gc, 0)
    for v in gc.vertices():
        bound = min(d_pub.get(v, float("inf")), d_priv.get(v, float("inf")))
        assert d_c.get(v, float("inf")) <= bound + 1e-9
