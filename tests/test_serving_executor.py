"""Tests for the bounded worker pool (ServiceExecutor)."""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.exceptions import ExecutorShutdownError, ReproError
from repro.faults import FaultSchedule, FaultSpec
from repro.faults.points import EXECUTOR_WORKER
from repro.obs import MetricsRegistry
from repro.serving import ServiceExecutor
from repro.service import PROTOCOL_VERSION


class EchoService:
    """Minimal ``execute`` stand-in: echoes the request, thread-safely."""

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def execute(self, request):
        with self._lock:
            self.calls += 1
        return {"status": "ok", "echo": request.get("n")}


class BlockingService:
    """Blocks every request on a barrier — proves genuine overlap."""

    def __init__(self, parties: int) -> None:
        self.barrier = threading.Barrier(parties, timeout=10)

    def execute(self, request):
        self.barrier.wait()
        return {"status": "ok"}


class ExplodingService:
    def execute(self, request):
        raise RuntimeError("contract break")


class TestBasics:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ServiceExecutor(EchoService(), workers=0)

    def test_submit_resolves_to_response(self):
        with ServiceExecutor(EchoService(), workers=2) as pool:
            future = pool.submit({"n": 7})
            assert future.result(timeout=10) == {"status": "ok", "echo": 7}

    def test_execute_many_preserves_order(self):
        svc = EchoService()
        with ServiceExecutor(svc, workers=4) as pool:
            responses = pool.execute_many([{"n": i} for i in range(50)])
        assert [r["echo"] for r in responses] == list(range(50))
        assert svc.calls == 50

    def test_error_responses_are_results_not_exceptions(self):
        class ErrorService:
            def execute(self, request):
                return {"status": "error", "error": "nope", "retryable": False}

        with ServiceExecutor(ErrorService(), workers=1) as pool:
            resp = pool.submit({}).result(timeout=10)
        assert resp["status"] == "error"

    def test_contract_break_surfaces_on_the_future(self):
        with ServiceExecutor(ExplodingService(), workers=1) as pool:
            future = pool.submit({})
            with pytest.raises(RuntimeError, match="contract break"):
                future.result(timeout=10)


class TestConcurrency:
    def test_four_workers_overlap(self):
        """All four requests must be inside ``execute`` simultaneously —
        with a serial loop the shared barrier would time out."""
        svc = BlockingService(parties=4)
        with ServiceExecutor(svc, workers=4) as pool:
            responses = pool.execute_many([{} for _ in range(4)])
        assert all(r["status"] == "ok" for r in responses)

    def test_pool_size_bounds_overlap(self):
        """With one worker, two barrier parties never meet: the pool
        really is bounded, so the second request would deadlock if it
        ran concurrently.  Use a cancel-after-timeout barrier to assert
        the *absence* of overlap without hanging the suite."""
        svc = BlockingService(parties=2)
        svc.barrier = threading.Barrier(2, timeout=0.2)
        results = []
        with ServiceExecutor(svc, workers=1) as pool:
            futures = [pool.submit({}) for _ in range(2)]
            for f in futures:
                try:
                    results.append(f.result(timeout=10))
                except threading.BrokenBarrierError:
                    results.append("timeout")
        assert results.count("timeout") == 2  # neither ever saw a peer


class TestShutdown:
    def test_queued_work_is_drained(self):
        svc = EchoService()
        pool = ServiceExecutor(svc, workers=1)
        futures = [pool.submit({"n": i}) for i in range(20)]
        pool.shutdown(wait=True)
        assert [f.result(timeout=10)["echo"] for f in futures] == list(range(20))

    def test_submit_after_shutdown_raises(self):
        pool = ServiceExecutor(EchoService(), workers=1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit({})

    def test_shutdown_error_is_in_taxonomy(self):
        """Pin the exception type: a `ReproError` that still satisfies the
        original `RuntimeError` contract callers may already catch."""
        pool = ServiceExecutor(EchoService(), workers=1)
        pool.shutdown()
        with pytest.raises(ExecutorShutdownError) as excinfo:
            pool.submit({})
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, RuntimeError)

    def test_shutdown_is_idempotent(self):
        pool = ServiceExecutor(EchoService(), workers=2)
        pool.shutdown()
        pool.shutdown()

    def test_context_manager_shuts_down(self):
        with ServiceExecutor(EchoService(), workers=2) as pool:
            pass
        with pytest.raises(RuntimeError):
            pool.submit({})

    def test_workers_property(self):
        with ServiceExecutor(EchoService(), workers=3) as pool:
            assert pool.workers == 3


class GateService:
    """``execute`` blocks on an event the test controls."""

    def __init__(self) -> None:
        self.gate = threading.Event()

    def execute(self, request):
        assert self.gate.wait(timeout=10)
        return {"status": "ok", "n": request.get("n")}


class TestSelfHealing:
    """Worker deaths (injected kills at ``serving.executor.worker``)."""

    @pytest.fixture(autouse=True)
    def _no_leaked_schedule(self):
        faults.deactivate()
        yield
        faults.deactivate()

    def test_worker_death_quarantines_request_and_respawns(self):
        reg = MetricsRegistry()
        with ServiceExecutor(EchoService(), workers=2, registry=reg) as pool:
            sched = FaultSchedule([FaultSpec(EXECUTOR_WORKER, "kill", at_hit=1)])
            with faults.injected(sched):
                resp = pool.submit({"n": 1}).result(timeout=10)
                # the poison request resolves to a well-formed quarantine
                # response, not a hung future or a raised exception
                assert resp["status"] == "error"
                assert resp["code"] == "internal"
                assert resp["retryable"] is False
                assert "worker died" in resp["error"]
                # the literal version in executor.py must track the
                # service protocol (the import would be a cycle)
                assert resp["v"] == PROTOCOL_VERSION
                # the pool still works: the next request is served
                assert pool.submit({"n": 2}).result(timeout=10)["echo"] == 2
            health = pool.health()
            assert health["workers"] == 2
            assert health["alive"] == 2  # the dead worker respawned
            assert health["respawns"] == 1
            assert health["pending"] == 0
            assert health["shutdown"] is False
        assert reg.value("ppkws_worker_respawns_total") == 1.0

    def test_every_future_resolves_under_repeated_kills(self):
        """Drain guarantee: kill on *every* hit still resolves all futures."""
        with ServiceExecutor(EchoService(), workers=1) as pool:
            sched = FaultSchedule(
                [FaultSpec(EXECUTOR_WORKER, "kill", at_hit=1, every=True)]
            )
            with faults.injected(sched):
                futures = [pool.submit({"n": i}) for i in range(5)]
                responses = [f.result(timeout=10) for f in futures]
            assert all(r["code"] == "internal" for r in responses)
            assert pool.health()["respawns"] == 5
            # fault off: the same pool serves again
            assert pool.submit({"n": 9}).result(timeout=10)["echo"] == 9

    def test_death_during_shutdown_fails_inflight_future(self):
        """A worker dying mid-shutdown must fail its request loudly
        (ExecutorShutdownError), not fabricate a quarantine response —
        and the pool must still drain to a clean exit."""
        svc = GateService()
        pool = ServiceExecutor(svc, workers=1)
        sched = FaultSchedule([FaultSpec(EXECUTOR_WORKER, "kill", at_hit=2)])
        with faults.injected(sched):
            first = pool.submit({"n": 1})   # hit 1: survives, blocks on gate
            second = pool.submit({"n": 2})  # hit 2: killed after dequeue
            pool.shutdown(wait=False)       # shutdown before the kill lands
            svc.gate.set()
            assert first.result(timeout=10)["status"] == "ok"
            with pytest.raises(ExecutorShutdownError, match="worker died"):
                second.result(timeout=10)
        for t in pool._workers:
            t.join(timeout=10)
        health = pool.health()
        assert health["shutdown"] is True
        assert health["pending"] == 0

    def test_bind_executor_registration(self):
        class BindService(EchoService):
            def __init__(self):
                super().__init__()
                self.bound = []

            def bind_executor(self, executor):
                self.bound.append(executor)

        svc = BindService()
        with ServiceExecutor(svc, workers=1) as pool:
            assert svc.bound == [pool]


class TestMetrics:
    def test_executor_metrics_recorded(self):
        reg = MetricsRegistry()
        with ServiceExecutor(EchoService(), workers=2, registry=reg) as pool:
            pool.execute_many([{"n": i} for i in range(10)])
            # wait until the last completion was observed
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                total = sum(
                    reg.value(
                        "ppkws_executor_completed_total",
                        labels={"worker": str(w)},
                    )
                    for w in range(2)
                )
                if total == 10:
                    break
                time.sleep(0.01)
        assert total == 10
        assert reg.value("ppkws_executor_queue_depth") == 0
        wait_hist = reg.histogram("ppkws_executor_wait_seconds")
        assert wait_hist is not None and wait_hist.count == 10
        per_worker = sum(
            (reg.histogram(
                "ppkws_worker_request_seconds", labels={"worker": str(w)}
            ) or type("H", (), {"count": 0})).count
            for w in range(2)
        )
        assert per_worker == 10

    def test_no_registry_is_fine(self):
        with ServiceExecutor(EchoService(), workers=1) as pool:
            assert pool.submit({}).result(timeout=10)["status"] == "ok"

    def test_falls_back_to_service_registry(self):
        reg = MetricsRegistry()

        class RegistryService(EchoService):
            def _metrics_registry(self):
                return reg

        with ServiceExecutor(RegistryService(), workers=1) as pool:
            pool.submit({}).result(timeout=10)
            pool.shutdown()
        assert reg.value(
            "ppkws_executor_completed_total", labels={"worker": "0"}
        ) == 1.0
