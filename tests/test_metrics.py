"""Tests for structural graph metrics."""

from __future__ import annotations

import pytest

from repro.graph import (
    LabeledGraph,
    approximate_diameter,
    average_shortest_path_length,
    ball_coverage,
    clustering_coefficient,
    degree_distribution,
    degree_skew,
    structural_summary,
    watts_strogatz_graph,
)


@pytest.fixture
def path5():
    return LabeledGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])


class TestDegreeMetrics:
    def test_distribution(self, path5):
        assert degree_distribution(path5) == {1: 2, 2: 3}

    def test_skew_regular_graph(self):
        ring = LabeledGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert degree_skew(ring) == pytest.approx(1.0)

    def test_skew_star(self):
        star = LabeledGraph.from_edges([(0, i) for i in range(1, 9)])
        assert degree_skew(star) > 3.0

    def test_empty(self):
        assert degree_skew(LabeledGraph()) == 0.0
        assert degree_distribution(LabeledGraph()) == {}


class TestDiameter:
    def test_path_diameter_exact(self, path5):
        assert approximate_diameter(path5, seed=1) == 4

    def test_ring_lattice(self):
        ws = watts_strogatz_graph(40, 4, 0.0, seed=1)
        # ring with k=4: diameter = ceil(n / k) = 10
        assert approximate_diameter(ws, seed=2) == 10

    def test_empty(self):
        assert approximate_diameter(LabeledGraph()) == 0


class TestPathLength:
    def test_path_graph(self, path5):
        # exact mean over all ordered pairs of the path is 2.0; sources
        # are sampled with replacement so allow estimation slack
        est = average_shortest_path_length(path5, samples=5, seed=1)
        assert est == pytest.approx(2.0, abs=0.6)

    def test_single_vertex(self):
        g = LabeledGraph()
        g.add_vertex(1)
        assert average_shortest_path_length(g) == 0.0


class TestClustering:
    def test_triangle_is_one(self, triangle_graph):
        assert clustering_coefficient(triangle_graph, seed=1) == pytest.approx(1.0)

    def test_tree_is_zero(self, path5):
        assert clustering_coefficient(path5, seed=1) == 0.0

    def test_no_eligible_vertices(self):
        g = LabeledGraph.from_edges([(0, 1)])
        assert clustering_coefficient(g) == 0.0


class TestBallCoverage:
    def test_radius_covers_all(self, path5):
        assert ball_coverage(path5, 10.0, samples=5, seed=1) == pytest.approx(1.0)

    def test_radius_zero_covers_self(self, path5):
        assert ball_coverage(path5, 0.0, samples=5, seed=1) == pytest.approx(0.2)

    def test_locality_regime_of_datasets(self):
        """The yago stand-in must be in the paper's locality regime:
        a tau-ball covers well under half the graph."""
        from repro.datasets import yago_like

        ds = yago_like(num_vertices=2000, seed=5)
        coverage = ball_coverage(ds.public, 5.0, samples=10, seed=3)
        assert coverage < 0.5

    def test_empty(self):
        assert ball_coverage(LabeledGraph(), 1.0) == 0.0


class TestSummary:
    def test_all_fields_present(self, path5):
        summary = structural_summary(path5, tau=2.0)
        assert set(summary) == {
            "num_vertices", "num_edges", "avg_degree", "degree_skew",
            "approx_diameter", "avg_path_length", "clustering",
            "ball_coverage_tau",
        }
        assert summary["num_vertices"] == 5.0
