"""Response-shape contract tests: every op x {ok, degraded, error}.

The facade's wire contract is the *exact* set of top-level keys each
``(op, status)`` pair returns — RPC wrappers and dashboards key off
them, so a key silently appearing or vanishing is a breaking change.
These tests pin the full matrix, including the protocol-version echo
(``"v": 1`` on every response), the machine-readable ``code`` on every
error, the ``cached`` marker on answer-cache hits, the ``warnings``
list for unrecognized request fields, the ``counters`` / ``trace`` keys
that only the ``"trace": true`` request flag may add, and the
``metrics`` op's snapshot shape.
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from repro.service import ERROR_CODES, PROTOCOL_VERSION, PPKWSService

ROOTED_OPS = ("blinks", "rclique", "banks")
KNK_OPS = ("knk", "knk_multi")
QUERY_OPS = ROOTED_OPS + KNK_OPS

#: every response echoes the protocol version
V_KEYS = {"v"}
ERROR_KEYS = {"status", "error", "retryable", "code", "v"}
DEGRADATION_KEYS = {"completed_steps", "interrupted_step"}
TRACE_KEYS = {"counters", "trace"}

#: the exact QueryCounters field set every ``counters`` payload carries
COUNTER_FIELDS = {
    "partial_answers",
    "refinement_checks",
    "refinements_applied",
    "completion_lookups",
    "completion_cache_hits",
    "answers_pruned",
    "final_answers",
}


@pytest.fixture
def service(small_public_private) -> PPKWSService:
    pub, priv = small_public_private
    svc = PPKWSService(sketch_k=2)
    svc.create_network("net", pub)
    svc.attach_user("net", "bob", priv)
    return svc


def _query(op: str, **extra: Any) -> Dict[str, Any]:
    req: Dict[str, Any] = {"op": op, "network": "net", "owner": "bob"}
    if op in ROOTED_OPS:
        req.update({"keywords": ["db", "ai"], "tau": 4.0, "k": 3})
    elif op == "knk":
        req.update({"source": "x1", "keyword": "cv", "k": 2})
    else:  # knk_multi
        req.update({"source": "x1", "keywords": ["cv", "ml"], "k": 2})
    req.update(extra)
    return req


class TestQueryOpShapes:
    @pytest.mark.parametrize("op", ROOTED_OPS)
    def test_rooted_ok(self, service, op):
        resp = service.execute(_query(op))
        assert resp["status"] == "ok"
        assert resp["v"] == PROTOCOL_VERSION
        assert set(resp) == {"status", "answers", "breakdown"} | V_KEYS
        assert set(resp["breakdown"]) == {"peval", "arefine", "acomplete"}

    @pytest.mark.parametrize("op", KNK_OPS)
    def test_knk_ok(self, service, op):
        resp = service.execute(_query(op))
        assert resp["status"] == "ok"
        assert set(resp) == {"status", "answer"} | V_KEYS
        assert set(resp["answer"]) == {"source", "keyword", "matches"}

    @pytest.mark.parametrize("op", QUERY_OPS)
    def test_cached_repeat_adds_only_cached_marker(self, service, op):
        cold = service.execute(_query(op))
        hit = service.execute(_query(op))
        assert hit["cached"] is True
        assert set(hit) == set(cold) | {"cached"}

    @pytest.mark.parametrize("op", ROOTED_OPS)
    def test_rooted_degraded(self, service, op):
        resp = service.execute(_query(op, deadline_ms=0))
        assert resp["status"] == "degraded"
        assert set(resp) == (
            {"status", "answers", "breakdown"} | DEGRADATION_KEYS | V_KEYS
        )

    @pytest.mark.parametrize("op", KNK_OPS)
    def test_knk_degraded(self, service, op):
        resp = service.execute(_query(op, deadline_ms=0))
        assert resp["status"] == "degraded"
        assert set(resp) == {"status", "answer"} | DEGRADATION_KEYS | V_KEYS

    @pytest.mark.parametrize("op", QUERY_OPS)
    def test_query_error(self, service, op):
        req = _query(op)
        del req["owner"]
        resp = service.execute(req)
        assert resp["status"] == "error"
        assert set(resp) == ERROR_KEYS
        assert resp["retryable"] is False
        assert resp["code"] == "bad_request"

    @pytest.mark.parametrize("op", QUERY_OPS)
    def test_unknown_field_warns(self, service, op):
        resp = service.execute(_query(op, frobnicate=1))
        assert resp["status"] == "ok"
        assert resp["warnings"] == ["unknown field 'frobnicate'"]

    def test_error_code_enum_is_closed(self, service):
        assert set(ERROR_CODES) == {
            "bad_request", "unknown_network", "unknown_owner",
            "overloaded", "budget_exhausted", "internal",
        }


class TestTraceFlagShapes:
    @pytest.mark.parametrize("op", QUERY_OPS)
    def test_ok_with_trace(self, service, op):
        resp = service.execute(_query(op, trace=True))
        assert resp["status"] == "ok"
        base = (
            {"status", "answers", "breakdown"}
            if op in ROOTED_OPS
            else {"status", "answer"}
        )
        assert set(resp) == base | TRACE_KEYS | V_KEYS
        assert set(resp["counters"]) == COUNTER_FIELDS
        assert resp["trace"]["op"] == op
        assert resp["trace"]["status"] == "ok"

    @pytest.mark.parametrize("op", QUERY_OPS)
    def test_degraded_with_trace(self, service, op):
        resp = service.execute(_query(op, deadline_ms=0, trace=True))
        assert resp["status"] == "degraded"
        assert set(resp["counters"]) == COUNTER_FIELDS
        assert resp["trace"]["degraded"] is True
        assert resp["trace"]["interrupted_step"] in (
            "peval", "arefine", "acomplete"
        )

    def test_error_with_trace_has_trace_but_no_counters(self, service):
        # No query result exists, so no counters — but the trace record
        # still describes the failed request.
        resp = service.execute({"op": "blinks", "trace": True})
        assert resp["status"] == "error"
        assert set(resp) == ERROR_KEYS | {"trace"}
        assert resp["trace"]["error"] == "ReproError"

    @pytest.mark.parametrize("op", QUERY_OPS)
    def test_no_flag_means_no_trace_keys(self, service, op):
        resp = service.execute(_query(op))
        assert not TRACE_KEYS & set(resp)


class TestAdminOpShapes:
    PUBLIC_EDGES = [[0, 1], [1, 2], [2, 0]]
    PRIVATE_EDGES = [[0, "q1"]]

    def test_create_network_ok(self):
        svc = PPKWSService(sketch_k=2)
        resp = svc.execute({
            "op": "create_network", "network": "n",
            "public_edges": self.PUBLIC_EDGES,
        })
        assert resp == {"status": "ok", "network": "n", "v": PROTOCOL_VERSION}

    def test_create_network_error(self, service):
        resp = service.execute({
            "op": "create_network", "network": "net",
            "public_edges": self.PUBLIC_EDGES,
        })
        assert set(resp) == ERROR_KEYS
        assert resp["code"] == "bad_request"

    def test_attach_ok_and_error(self, service):
        resp = service.execute({
            "op": "attach", "network": "net", "owner": "eve",
            "private_edges": self.PRIVATE_EDGES,
        })
        assert set(resp) == {"status", "owner", "portals"} | V_KEYS
        assert resp["status"] == "ok"
        dup = service.execute({
            "op": "attach", "network": "net", "owner": "eve",
            "private_edges": self.PRIVATE_EDGES,
        })
        assert set(dup) == ERROR_KEYS

    def test_detach_ok_and_error(self, service):
        resp = service.execute({"op": "detach", "network": "net", "owner": "bob"})
        assert resp == {"status": "ok", "owner": "bob", "v": PROTOCOL_VERSION}
        resp = service.execute({"op": "detach", "network": "net", "owner": "bob"})
        assert set(resp) == ERROR_KEYS
        assert resp["code"] == "unknown_owner"

    def test_drop_ok_and_error(self, service):
        resp = service.execute({"op": "drop", "network": "net"})
        assert resp == {"status": "ok", "network": "net", "v": PROTOCOL_VERSION}
        resp = service.execute({"op": "drop", "network": "net"})
        assert set(resp) == ERROR_KEYS
        assert resp["code"] == "unknown_network"

    def test_stats_ok(self, service):
        resp = service.execute({"op": "stats", "network": "net"})
        assert set(resp) == (
            {"status", "public", "owners", "index_entries", "epoch"} | V_KEYS
        )
        with_owner = service.execute(
            {"op": "stats", "network": "net", "owner": "bob"}
        )
        assert set(with_owner) == (
            {"status", "public", "owners", "index_entries", "epoch",
             "attachment"} | V_KEYS
        )
        assert set(with_owner["attachment"]) == {
            "private_vertices", "private_edges", "portals",
            "refined_portal_pairs",
        }

    def test_stats_error(self, service):
        resp = service.execute({"op": "stats", "network": "nope"})
        assert set(resp) == ERROR_KEYS
        assert resp["code"] == "unknown_network"


class TestMetricsOpShape:
    def test_metrics_shape(self, service):
        resp = service.execute({"op": "metrics"})
        assert set(resp) == (
            {"status", "metrics", "recent_traces", "answer_cache",
             "prometheus"} | V_KEYS
        )
        assert resp["status"] == "ok"
        # no registry installed: empty-but-well-typed payloads
        assert resp["metrics"] == {}
        assert isinstance(resp["recent_traces"], list)
        assert resp["prometheus"] == ""
        assert set(resp["answer_cache"]) >= {"entries", "hits", "misses"}

    def test_metrics_with_registry(self, small_public_private):
        from repro.obs import MetricsRegistry

        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2, registry=MetricsRegistry())
        svc.create_network("net", pub)
        svc.attach_user("net", "bob", priv)
        svc.execute(_query("blinks"))
        resp = svc.execute({"op": "metrics"})
        assert set(resp["metrics"]) == {"counters", "gauges", "histograms"}
        assert "ppkws_requests_total" in resp["metrics"]["counters"]
        assert "# TYPE ppkws_requests_total counter" in resp["prometheus"]


class TestHelpOpShape:
    def test_help_catalogue(self, service):
        resp = service.execute({"op": "help"})
        assert set(resp) == (
            {"status", "protocol", "ops", "global_fields", "error_codes"}
            | V_KEYS
        )
        assert resp["protocol"] == PROTOCOL_VERSION
        assert resp["error_codes"] == list(ERROR_CODES)
        for op, entry in resp["ops"].items():
            assert set(entry) == {
                "summary", "required", "optional", "mode", "cacheable"
            }, op
        assert resp["ops"]["blinks"]["mode"] == "read"
        assert resp["ops"]["blinks"]["cacheable"] is True
        assert resp["ops"]["attach"]["mode"] == "admin"
        assert resp["ops"]["metrics"]["mode"] == "control"
        assert set(resp["ops"]) == {
            "blinks", "rclique", "banks", "knk", "knk_multi", "truss",
            "batch", "stats", "metrics", "help", "health",
            "create_network", "attach", "detach", "drop",
        }
        # Query ops are generated from the semantics registry: every
        # registered semantics appears, with its wire schema.
        from repro.core.engine import registered_semantics, semantics_spec

        for name in registered_semantics():
            entry = resp["ops"][name]
            spec = semantics_spec(name)
            assert entry["summary"] == spec.summary
            assert entry["required"] == list(spec.wire_required)
            assert entry["optional"] == (
                list(spec.wire_optional)
                + ["deadline_ms", "max_expansions", "execution_mode"]
            )
            assert entry["mode"] == "read"
            assert entry["cacheable"] is True


class TestUnknownAndOverloadShapes:
    def test_unknown_op(self, service):
        resp = service.execute({"op": "explode"})
        assert set(resp) == ERROR_KEYS
        assert "unknown op" in resp["error"]
        assert resp["code"] == "bad_request"

    def test_overloaded_is_retryable(self, small_public_private):
        pub, _ = small_public_private
        svc = PPKWSService(sketch_k=2, max_in_flight=0)
        resp = svc.execute({"op": "stats", "network": "x"})
        assert set(resp) == ERROR_KEYS | {"retry_after_ms"}
        assert resp["retryable"] is True
        assert resp["code"] == "overloaded"
        assert 1.0 <= resp["retry_after_ms"] <= 5000.0

    def test_bad_protocol_version(self, service):
        resp = service.execute({"op": "stats", "network": "net", "v": 2})
        assert set(resp) == ERROR_KEYS
        assert resp["code"] == "bad_request"
        assert "protocol version" in resp["error"]

    def test_pinned_protocol_version_accepted(self, service):
        resp = service.execute({"op": "stats", "network": "net", "v": 1})
        assert resp["status"] == "ok"
