"""Seeded chaos replay: the full serving stack under injected faults.

Each case activates a :func:`repro.faults.seeded_schedule` and drives a
:class:`PPKWSService` through a :class:`ServiceExecutor` worker pool
with a deterministic mixed workload (queries, admin ops, persistence,
introspection, malformed requests).  Whatever the schedule does — kills
workers, tears index writes, fails cache lookups, delays locks — the
invariants must hold:

* every future resolves, and every response is a well-formed v1 dict;
* no network rwlock is leaked (readers == 0, no writer) after drain;
* the worker pool is fully alive afterwards (deaths respawned);
* with faults off again, cached and uncached answers agree (no stale
  or poisoned cache entry survives the chaos);
* a post-recovery index save is byte-identical to a fault-free build's
  (the on-disk artifact carries no scar tissue).

The CI ``chaos`` job replays extra seeds via ``PPKWS_CHAOS_SEED``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import faults
from repro.core import PublicIndex, save_index
from repro.faults import seeded_schedule
from repro.serving import ServiceExecutor
from repro.service import ERROR_CODES, PROTOCOL_VERSION, PPKWSService
from tests.conftest import random_connected_graph

SEEDS = [0, 1, 2, 3, 4]
_extra = os.environ.get("PPKWS_CHAOS_SEED")
if _extra:
    SEEDS.append(int(_extra))

_STATUSES = {"ok", "error", "degraded"}


def _assert_well_formed(resp: object) -> None:
    assert isinstance(resp, dict), f"non-dict response: {resp!r}"
    assert resp.get("v") == PROTOCOL_VERSION, resp
    assert resp.get("status") in _STATUSES, resp
    if resp["status"] == "error":
        assert isinstance(resp.get("error"), str) and resp["error"], resp
        assert resp.get("code") in ERROR_CODES, resp
        assert isinstance(resp.get("retryable"), bool), resp


def _workload(rng: random.Random, disk_index: str) -> list:
    """~60 deterministic requests over every part of the surface."""
    requests = []
    owners = ("alice", "bob")
    labels = ("a", "b", "c")
    for owner in owners:  # initial attachments (may fail under faults)
        requests.append({
            "op": "attach", "network": "net", "owner": owner,
            "private_edges": [
                [f"{owner}-x", f"{owner}-y"],
                [f"{owner}-x", rng.randrange(20)],
            ],
            "private_labels": {f"{owner}-y": [rng.choice(labels)]},
        })
    for i in range(50):
        roll = rng.random()
        owner = rng.choice(owners)
        if roll < 0.35:
            requests.append({
                "op": "knk", "network": "net", "owner": owner,
                "source": rng.randrange(20), "keyword": rng.choice(labels),
                "k": rng.choice((1, 3)),
            })
        elif roll < 0.6:
            requests.append({
                "op": "blinks", "network": "net", "owner": owner,
                "keywords": rng.sample(labels, 2), "k": 2,
            })
        elif roll < 0.7:
            requests.append({"op": "stats", "network": "net"})
        elif roll < 0.78:
            requests.append({"op": "health"})
        elif roll < 0.86:
            # admin churn: detach / re-attach bumps epochs under fire
            requests.append({
                "op": rng.choice(("detach", "attach")),
                "network": "net", "owner": owner,
                "private_edges": [[f"{owner}-x", rng.randrange(20)]],
            })
        elif roll < 0.94:
            # the persistence path: create/drop a disk-backed network
            requests.append(rng.choice((
                {"op": "create_network", "network": "disk",
                 "public_edges": [[0, 1], [1, 2], [2, 3], [3, 0]],
                 "public_labels": {"0": ["a"], "2": ["b"]},
                 "index_path": disk_index},
                {"op": "drop", "network": "disk"},
            )))
        else:
            # malformed on purpose: bad_request handling under faults
            requests.append(rng.choice((
                {"op": "knk", "network": "net"},          # missing fields
                {"op": "no_such_op"},
                {"op": "stats", "network": "nowhere"},
            )))
    return requests


@pytest.mark.timeout(120)
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_replay(seed, tmp_path):
    faults.deactivate()
    public = random_connected_graph(20, 8, seed=seed)
    svc = PPKWSService(sketch_k=2)
    svc.create_network("net", public)  # fault-free baseline network
    rng = random.Random(seed)
    requests = _workload(rng, str(tmp_path / "disk.idx"))
    schedule = seeded_schedule(seed, faults=6, max_hit=8)

    pool = ServiceExecutor(svc, workers=3)
    try:
        with faults.injected(schedule):
            futures = [pool.submit(r) for r in requests]
            responses = [f.result(timeout=60) for f in futures]

        # 1. every response (including worker-death quarantines) is a
        #    well-formed v1 protocol dict
        for resp in responses:
            _assert_well_formed(resp)

        # 2. no rwlock leaked: injected raises/delays at the acquire
        #    points must never leave a network lock half-held
        for network, lock in svc._network_locks.items():
            assert lock.readers == 0, f"leaked reader on {network!r}"
            assert not lock.write_active, f"leaked writer on {network!r}"

        # 3. the pool healed every worker death
        health = pool.health()
        assert health["alive"] == health["workers"] == 3
        assert health["pending"] == 0

        # 4. faults off: cached and uncached answers agree, so no stale
        #    or fault-poisoned cache entry outlived the chaos
        volatile = ("cached", "warnings", "breakdown")  # timings differ

        def strip(r):
            return {k: v for k, v in r.items() if k not in volatile}

        for query in (r for r in requests if r["op"] in ("knk", "blinks")):
            cached = svc.execute(dict(query))
            fresh = svc.execute({**query, "no_cache": True})
            assert strip(cached) == strip(fresh), query

        # 5. post-recovery persistence is bit-identical to fault-free:
        #    the index is deterministic, so a save after the chaos must
        #    equal a save that never saw a fault
        post_path = tmp_path / "post.idx"
        svc.create_network("post", public, index_path=str(post_path))
        ref_path = tmp_path / "ref.idx"
        save_index(PublicIndex.build(public, k=2), ref_path)
        assert post_path.read_bytes() == ref_path.read_bytes()
    finally:
        faults.deactivate()
        pool.shutdown(wait=True)

    # the replay is deterministic, so for the built-in seeds we know the
    # schedule actually bit (env-provided seeds may arm cold points)
    if seed in (0, 1, 2, 3, 4):
        assert schedule.total_injected() >= 1, schedule.injections()


@pytest.mark.timeout(120)
def test_chaos_is_deterministic(tmp_path):
    """Same seed, same workload -> the exact same faults fire."""
    records = []
    for run in range(2):
        faults.deactivate()
        public = random_connected_graph(20, 8, seed=3)
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", public)
        requests = _workload(random.Random(3), str(tmp_path / f"d{run}.idx"))
        schedule = seeded_schedule(3, faults=6, max_hit=8)
        with faults.injected(schedule):
            for request in requests:  # serial: one deterministic thread
                _assert_well_formed(svc.execute(dict(request)))
        faults.deactivate()
        records.append(schedule.injections())
    assert records[0] == records[1]
