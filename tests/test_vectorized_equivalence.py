"""Vectorized == pure: the randomized equivalence property suite.

The vectorized execution path (``repro.core.vectorized``) is an
*optimization*, never a semantics change: every kernel replicates its
pure counterpart bit-for-bit — same float arithmetic, same tie-breaks,
same dict insertion order.  This suite pins that contract at two
levels:

* **kernel level** — ``offset_sweep_batch`` against
  ``pp_blinks._offset_sweep``, ``probe_many`` /
  ``top_candidates_many`` against the ``KeywordSketch`` scans, on the
  seeded equivalence networks plus a tie-heavy unit-weight graph;
* **query level** — full pipelines through :class:`BatchSession` in
  ``execution_mode="pure"`` vs ``"vectorized"``, across backends
  (honouring ``REPRO_ENGINE_BACKEND``), seeds, semantics (including the
  ones that only have a pure path and must fall back), batch sizes and
  budget degradation.

Counters note: rooted pipelines are compared *minus* counters —
vectorized AComplete accounts probe/cache work differently (one batched
lookup instead of per-portal scans) while answers stay identical.
Budgets that expire in the shared pure steps (PEval/ARefine) must match
counters and all.
"""

from __future__ import annotations

import os
import random

import pytest

import repro.core.engine as engine_mod
from repro import obs
from repro.core.batch import BatchSession
from repro.core.budget import QueryBudget
from repro.core.engine import (
    SemanticsSpec,
    StepSpec,
    register_semantics,
    registered_semantics,
)
from repro.core.framework import (
    PPKWS,
    QueryOptions,
    QueryResult,
    query_model_m1,
    query_model_m2,
)
from repro.core.pp_blinks import _offset_sweep
from repro.core.vectorized import (
    SweepMemo,
    numpy_available,
    offset_sweep_batch,
    plan_for,
    runtime_for,
    validate_execution_mode,
)
from repro.exceptions import QueryError
from repro.graph.labeled_graph import LabeledGraph

from tests.engine_equivalence_data import (
    KEYWORD_QUERIES,
    SEEDS,
    build_engine,
    canon_knk_result,
    canon_rooted_result,
    seeded_network,
)

# Same contract as test_engine_equivalence: CI exports
# REPRO_ENGINE_BACKEND to split the matrix; locally both backends run.
_BACKENDS = {"dict": (False,), "frozen": (True,)}.get(
    os.environ.get("REPRO_ENGINE_BACKEND", ""), (False, True)
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vectorized path needs numpy"
)


def _no_counters(canon):
    out = dict(canon)
    out.pop("counters")
    return out


def _members(engine):
    private = engine.attachment("owner").private
    return sorted(
        (v for v in private.vertices() if isinstance(v, str)), key=repr
    )


def _tie_engine():
    """A unit-weight engine: every Dijkstra layer is one big tie."""
    g = LabeledGraph("ties")
    rng = random.Random(5)
    n = 20
    for i in range(1, n):
        g.add_edge(i, rng.randrange(i), 1.0)
    for _ in range(15):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, 1.0)
    for v in range(n):
        g.add_labels(v, {"a"} if v % 3 == 0 else {"b"})
    return PPKWS(g, sketch_k=2, freeze=True)


# ----------------------------------------------------------------------
# kernel level
# ----------------------------------------------------------------------
@needs_numpy
class TestSweepKernel:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_columns_match_pure(self, seed):
        engine = build_engine(seed, freeze=True)
        runtime = runtime_for(engine)
        assert runtime is not None
        rng = random.Random(seed * 31 + 7)
        vertices = sorted(engine.public.vertices(), key=repr)
        columns = []
        for c in range(6):
            seeds = []
            for i in range(rng.randint(1, 6)):
                # Offsets above tau must be dropped by both kernels.
                seeds.append((
                    rng.choice([0.0, 0.5, 1.0, 1.0, 2.5, 9.0]),
                    rng.choice(vertices),
                    f"w{c}_{i}",
                ))
            columns.append((seeds, rng.choice([2.0, 4.0, 6.0, 8.0])))
        batched = offset_sweep_batch(runtime, columns)
        assert len(batched) == len(columns)
        for (seeds, tau), got in zip(columns, batched):
            want = _offset_sweep(engine.public, list(seeds), tau)
            assert list(got) == list(want)  # same insertion (pop) order
            assert got == want  # same Match values, bit for bit

    def test_tie_heavy_unit_weights(self):
        engine = _tie_engine()
        runtime = runtime_for(engine)
        assert runtime is not None
        # Duplicate (offset, portal) seeds with different witnesses: the
        # pure heap breaks the tie by push counter (first seed wins) and
        # the batched kernel must agree.
        seeds = [(0.0, 0, "w0"), (0.0, 3, "w1"), (1.0, 7, "w2"),
                 (0.0, 3, "w3")]
        for tau in (1.0, 2.0, 3.0, 5.0):
            columns = [(seeds, tau), (seeds[:2], tau), ([], tau)]
            batched = offset_sweep_batch(runtime, columns)
            for (col_seeds, col_tau), got in zip(columns, batched):
                want = _offset_sweep(engine.public, list(col_seeds), col_tau)
                assert list(got) == list(want)
                assert got == want

    def test_memo_returns_identical_results_without_rerunning(self):
        engine = build_engine(11, freeze=True)
        plan = plan_for(engine, "vectorized", memo=SweepMemo())
        assert plan is not None
        seeds = [(0.0, v, f"w{v}") for v in sorted(
            engine.public.vertices(), key=repr)[:3]]
        first = plan.sweeps([(seeds, 4.0)])
        again = plan.sweeps([(seeds, 4.0)])
        assert plan.memo.hits == 1
        assert again == first
        assert list(again[0]) == list(first[0])


@needs_numpy
class TestSketchKernels:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_probe_many_matches_pure(self, seed):
        engine = build_engine(seed, freeze=True)
        runtime = runtime_for(engine)
        assert runtime is not None
        kpads, pads = engine.index.kpads, engine.index.pads
        vertices = sorted(engine.public.vertices(), key=repr)
        for keyword in ("a", "b", "c", "d", "z", "missing"):
            got = runtime.probe_many(vertices, keyword)
            for v in vertices:
                assert got[v] == kpads.estimate_with_witness(
                    pads, v, keyword
                ), (keyword, v)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_top_candidates_many_matches_pure(self, seed):
        engine = build_engine(seed, freeze=True)
        runtime = runtime_for(engine)
        assert runtime is not None
        kpads, pads = engine.index.kpads, engine.index.pads
        vertices = sorted(engine.public.vertices(), key=repr)
        for keyword in ("a", "b", "d", "missing"):
            for k in (1, 2, 4):
                got = runtime.top_candidates_many(vertices, keyword, k)
                # All-public candidate sets on these graphs: the ranked
                # path must be available, not falling back.
                assert got is not None
                for v, lst in zip(vertices, got):
                    assert lst == kpads.top_candidates(
                        pads, v, keyword, k
                    ), (keyword, k, v)


# ----------------------------------------------------------------------
# full-query level
# ----------------------------------------------------------------------
class TestFullQueryEquivalence:
    @pytest.mark.parametrize("freeze", _BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_rooted_semantics(self, seed, freeze):
        engine = build_engine(seed, freeze)
        pure = BatchSession(engine, "owner", execution_mode="pure")
        vec = BatchSession(engine, "owner", execution_mode="vectorized")
        for keywords, tau, k in KEYWORD_QUERIES:
            params = dict(keywords=list(keywords), tau=tau, k=k,
                          require_public_private=True)
            for semantics in ("blinks", "banks", "rclique"):
                rp = canon_rooted_result(pure.query(semantics, **params))
                rv = canon_rooted_result(vec.query(semantics, **params))
                assert _no_counters(rp) == _no_counters(rv), (
                    semantics, keywords, tau, k, freeze
                )

    @pytest.mark.parametrize("freeze", _BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_knk_with_exact_counters(self, seed, freeze):
        engine = build_engine(seed, freeze)
        pure = BatchSession(engine, "owner", execution_mode="pure")
        vec = BatchSession(engine, "owner", execution_mode="vectorized")
        members = _members(engine)
        for source in (members[0], members[2]):
            for keyword in ("a", "z"):
                rp = canon_knk_result(
                    pure.query("knk", source=source, keyword=keyword, k=4)
                )
                rv = canon_knk_result(
                    vec.query("knk", source=source, keyword=keyword, k=4)
                )
                # k-nk AComplete replicates the pure candidate scan
                # one-to-one, so even the counters must match.
                assert rp == rv, (source, keyword, freeze)

    @pytest.mark.parametrize("freeze", _BACKENDS)
    def test_knk_multi_falls_back_identically(self, freeze):
        engine = build_engine(23, freeze)
        pure = BatchSession(engine, "owner", execution_mode="pure")
        vec = BatchSession(engine, "owner", execution_mode="vectorized")
        source = _members(engine)[0]
        for mode in ("and", "or"):
            rp = canon_knk_result(pure.query(
                "knk_multi", source=source, keywords=["a", "b"], k=4,
                mode=mode,
            ))
            rv = canon_knk_result(vec.query(
                "knk_multi", source=source, keywords=["a", "b"], k=4,
                mode=mode,
            ))
            assert rp == rv

    @pytest.mark.parametrize("freeze", _BACKENDS)
    @pytest.mark.parametrize("batch_size", (1, 3, 6))
    def test_batched_workloads_with_memo_reuse(self, freeze, batch_size):
        """One memo-sharing session == fresh pure runs, any batch size."""
        engine = build_engine(37, freeze)
        queries = [
            {"keywords": list(kw), "tau": tau, "k": k,
             "require_public_private": True}
            for kw, tau, k in KEYWORD_QUERIES
        ]
        # Repeat the workload so batches beyond len(KEYWORD_QUERIES)
        # re-ask earlier queries — the sweep memo must not change them.
        workload = [queries[i % len(queries)] for i in range(batch_size)]
        vec = BatchSession(engine, "owner", execution_mode="vectorized")
        got = vec.run_queries("blinks", workload)
        pure = BatchSession(engine, "owner", execution_mode="pure")
        for params, result in zip(workload, got):
            want = pure.query("blinks", **params)
            assert _no_counters(canon_rooted_result(result)) == _no_counters(
                canon_rooted_result(want)
            )
        if freeze and numpy_available() and batch_size > len(queries):
            assert vec.sweep_memo.hits > 0

    @pytest.mark.parametrize("freeze", _BACKENDS)
    def test_budget_degradation_parity_in_shared_steps(self, freeze):
        """Budgets expiring in PEval degrade identically, counters and all.

        PEval/ARefine run the same pure code in both modes, so a cap that
        binds there must produce the same salvage answers, the same
        ``interrupted_step`` *and* the same counters.
        """
        engine = build_engine(11, freeze)
        pure = BatchSession(engine, "owner", execution_mode="pure")
        vec = BatchSession(engine, "owner", execution_mode="vectorized")
        keywords, tau, k = KEYWORD_QUERIES[0]
        params = dict(keywords=list(keywords), tau=tau, k=k,
                      require_public_private=True)
        for cap in (1, 3):
            rp = canon_rooted_result(pure.query(
                "blinks", budget=QueryBudget(max_expansions=cap), **params
            ))
            rv = canon_rooted_result(vec.query(
                "blinks", budget=QueryBudget(max_expansions=cap), **params
            ))
            assert rp["degraded"] and rv["degraded"]
            assert rp["interrupted_step"] == "peval"
            assert rp == rv

    @pytest.mark.parametrize("freeze", _BACKENDS)
    def test_expired_deadline_degrades_both_modes(self, freeze):
        engine = build_engine(11, freeze)
        keywords, tau, k = KEYWORD_QUERIES[0]
        params = dict(keywords=list(keywords), tau=tau, k=k,
                      require_public_private=True)
        for mode in ("pure", "vectorized"):
            session = BatchSession(engine, "owner", execution_mode=mode)
            result = session.query(
                "blinks", budget=QueryBudget(deadline_ms=0.0), **params
            )
            assert result.degraded
            assert result.interrupted_step == "peval"

    def test_engine_options_mode_threads_through_query(self):
        """An engine whose *default* mode is vectorized answers like pure."""
        engine = build_engine(11, freeze=True)
        pub, priv = seeded_network(11)
        vec_engine = PPKWS(
            pub, sketch_k=2, freeze=True,
            options=QueryOptions(execution_mode="vectorized"),
        )
        vec_engine.attach("owner", priv)
        keywords, tau, k = KEYWORD_QUERIES[1]
        want = canon_rooted_result(engine.query(
            "blinks", "owner", keywords=list(keywords), tau=tau, k=k,
            require_public_private=True,
        ))
        got = canon_rooted_result(vec_engine.query(
            "blinks", "owner", keywords=list(keywords), tau=tau, k=k,
            require_public_private=True,
        ))
        assert _no_counters(want) == _no_counters(got)


# ----------------------------------------------------------------------
# mode selection and fallback
# ----------------------------------------------------------------------
class TestModeSelection:
    def test_validate_execution_mode(self):
        for mode in ("pure", "vectorized", "auto"):
            validate_execution_mode(mode)
        with pytest.raises(QueryError, match="unknown execution_mode"):
            validate_execution_mode("nope")

    def test_session_rejects_bad_mode(self):
        engine = build_engine(11)
        session = BatchSession(engine, "owner")
        with pytest.raises(QueryError, match="unknown execution_mode"):
            session.query(
                "blinks", execution_mode="turbo",
                keywords=["a"], tau=4.0, k=2, require_public_private=True,
            )

    @needs_numpy
    def test_auto_picks_vectorized_on_frozen(self):
        engine = build_engine(11, freeze=True)
        assert plan_for(engine, "auto") is not None
        assert plan_for(engine, "vectorized") is not None
        assert plan_for(engine, "pure") is None

    def test_dict_backend_falls_back(self):
        engine = build_engine(11, freeze=False)
        registry = obs.MetricsRegistry()
        obs.install(registry)
        try:
            # auto: silent fallback, no metric.
            assert plan_for(engine, "auto") is None
            assert registry.value("ppkws_vectorized_fallbacks_total") == 0
            # explicit vectorized: fallback is counted.
            assert plan_for(engine, "vectorized") is None
            assert registry.value("ppkws_vectorized_fallbacks_total") == 1
        finally:
            obs.uninstall()


# ----------------------------------------------------------------------
# satellite 3: query models route through the registry
# ----------------------------------------------------------------------
class TestQueryModelDispatch:
    @pytest.fixture
    def scratch_registry(self):
        before = set(registered_semantics())
        yield
        with engine_mod._REGISTRY_LOCK:
            for name in set(engine_mod._REGISTRY) - before:
                del engine_mod._REGISTRY[name]

    def _toy_spec(self):
        def _step(ctx):
            ctx.answers = []

        return SemanticsSpec(
            name="toy_baseline",
            summary="test semantics with single-graph baselines",
            steps=(StepSpec("peval", _step),),
            validate=lambda ctx: None,
            init=lambda ctx: None,
            salvage=lambda ctx, step: [],
            count_answers=len,
            result_type=QueryResult,
            wire_required=("network", "owner"),
            wire_optional=(),
            wire_params=lambda req: {},
            wire_payload=lambda res: {},
            wire_cache_params=lambda req: (),
            baseline_m1=lambda g, keywords, tau, k: [
                ("m1", g.name, tuple(keywords), tau, k)
            ],
            baseline_m2=lambda g, keywords, tau, k: [],
        )

    def test_builtin_m1_m2_still_work(self, small_public_private):
        pub, priv = small_public_private
        pub_answers, priv_answers = query_model_m1(
            pub, priv, "blinks", ["db"], 5.0, k=3
        )
        assert isinstance(pub_answers, list)
        assert isinstance(priv_answers, list)
        answers = query_model_m2(pub, priv, "rclique", ["db"], 5.0, k=3)
        assert isinstance(answers, list)

    def test_plugin_baselines_are_dispatched(
        self, scratch_registry, small_public_private
    ):
        register_semantics(self._toy_spec())
        pub, priv = small_public_private
        pub_answers, priv_answers = query_model_m1(
            pub, priv, "toy_baseline", ["db", "x"], 3.0, k=7
        )
        assert pub_answers == [("m1", pub.name, ("db", "x"), 3.0, 7)]
        assert priv_answers == [("m1", priv.name, ("db", "x"), 3.0, 7)]
        assert query_model_m2(
            pub, priv, "toy_baseline", ["db"], 3.0, k=7
        ) == []

    def test_semantics_without_baseline_raise(self, small_public_private):
        pub, priv = small_public_private
        with pytest.raises(QueryError, match="does not support query model"):
            query_model_m1(pub, priv, "knk", ["a"], 4.0)
        with pytest.raises(QueryError, match="does not support query model"):
            query_model_m2(pub, priv, "knk", ["a"], 4.0)

    def test_unknown_semantics_raise(self, small_public_private):
        pub, priv = small_public_private
        with pytest.raises(QueryError, match="unknown semantics"):
            query_model_m1(pub, priv, "nope", ["a"], 4.0)
