"""Tests for the Blinks baseline semantic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.graph import LabeledGraph, dijkstra
from repro.semantics import blinks_search, keyword_expansion
from tests.conftest import random_connected_graph


@pytest.fixture
def line_graph():
    """a(x) - b - c(y) - d - e(z), unit weights."""
    g = LabeledGraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")],
        {"a": {"x"}, "c": {"y"}, "e": {"z"}},
    )
    return g


class TestKeywordExpansion:
    def test_witness_is_nearest_origin(self, line_graph):
        cover = keyword_expansion(line_graph, ["a", "e"], tau=10)
        assert cover["b"].vertex == "a"
        assert cover["b"].distance == 1.0
        assert cover["d"].vertex == "e"

    def test_tau_bounds_cover(self, line_graph):
        cover = keyword_expansion(line_graph, ["a"], tau=1.0)
        assert set(cover) == {"a", "b"}

    def test_empty_origins(self, line_graph):
        assert keyword_expansion(line_graph, [], tau=3) == {}

    def test_unknown_origins_skipped(self, line_graph):
        cover = keyword_expansion(line_graph, ["ghost", "a"], tau=1)
        assert "a" in cover


class TestBlinksSearch:
    def test_basic_tree_answer(self, line_graph):
        answers = blinks_search(line_graph, ["x", "y"], tau=2.0)
        assert answers
        best = answers[0]
        # "b" is the balanced root (1 + 1); "a" and "c" have weight 2 too;
        # all valid roots must cover both keywords within tau
        assert best.matches["x"].vertex == "a"
        assert best.matches["y"].vertex == "c"
        assert best.weight() == 2.0

    def test_root_distance_constraint(self, line_graph):
        # x at 'a' and z at 'e' are 4 apart: no root within tau=1
        assert blinks_search(line_graph, ["x", "z"], tau=1.0) == []

    def test_missing_keyword_no_answers(self, line_graph):
        assert blinks_search(line_graph, ["x", "missing"], tau=5.0) == []

    def test_top_k_truncation_and_order(self, line_graph):
        answers = blinks_search(line_graph, ["x", "y"], tau=4.0, k=2)
        assert len(answers) == 2
        assert answers[0].weight() <= answers[1].weight()

    def test_duplicate_keywords_collapse(self, line_graph):
        answers = blinks_search(line_graph, ["x", "x", "y"], tau=3.0)
        assert answers
        assert set(answers[0].matches) == {"x", "y"}

    def test_single_keyword(self, line_graph):
        answers = blinks_search(line_graph, ["y"], tau=0.0)
        assert [a.root for a in answers] == ["c"]
        assert answers[0].weight() == 0.0

    def test_extra_origins_admit_portals(self, line_graph):
        # 'e' doesn't carry 'x' but is admitted as an origin for it.
        answers = blinks_search(
            line_graph, ["x", "z"], tau=1.0, extra_origins={"x": {"e"}}
        )
        assert answers
        assert any(a.matches["x"].vertex == "e" for a in answers)

    def test_invalid_queries(self, line_graph):
        with pytest.raises(QueryError):
            blinks_search(line_graph, [], tau=1.0)
        with pytest.raises(QueryError):
            blinks_search(line_graph, ["x"], tau=-1.0)
        with pytest.raises(QueryError):
            blinks_search(line_graph, ["x"], tau=1.0, k=0)

    def test_answers_respect_bound(self, line_graph):
        for a in blinks_search(line_graph, ["x", "y", "z"], tau=3.0):
            assert a.within_bound(3.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 3000), tau=st.sampled_from([2.0, 3.0, 5.0]))
def test_blinks_answers_verified_against_dijkstra(seed, tau):
    """Every reported match distance equals the true shortest distance
    from the root to the nearest vertex carrying that keyword."""
    g = random_connected_graph(30, 10, seed)
    keywords = ["a", "b"]
    answers = blinks_search(g, keywords, tau=tau, k=5)
    for ans in answers:
        exact = dijkstra(g, ans.root)
        for q, match in ans.matches.items():
            assert match.distance <= tau
            assert g.has_label(match.vertex, q)
            true_best = min(
                exact.get(v, float("inf")) for v in g.vertices_with_label(q)
            )
            assert match.distance == pytest.approx(true_best)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 3000))
def test_blinks_root_coverage_complete(seed):
    """Brute force: every vertex that covers all keywords within tau is
    reported when k is large enough."""
    g = random_connected_graph(20, 6, seed)
    tau = 3.0
    keywords = ["a", "c"]
    answers = blinks_search(g, keywords, tau=tau, k=1000)
    roots = {a.root for a in answers}
    for v in g.vertices():
        exact = dijkstra(g, v, cutoff=tau)
        covered = all(
            any(exact.get(u, float("inf")) <= tau for u in g.vertices_with_label(q))
            for q in keywords
        )
        assert (v in roots) == covered
