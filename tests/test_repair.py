"""Tests for equal-distance witness repair (Def. II.2 re-qualification)."""

from __future__ import annotations

import pytest

from repro.core import PPKWS
from repro.core.partial import PartialAnswer
from repro.core.pp_rclique import CompletionCache
from repro.core.repair import try_requalify
from repro.graph import LabeledGraph
from repro.semantics import Match, RootedAnswer


@pytest.fixture
def tie_world():
    """Portal 'p' has an equally close private and public 'kw' vertex."""
    pub = LabeledGraph()
    pub.add_edge("p", "pub_kw")
    pub.add_labels("pub_kw", {"kw"})
    pub.add_edge("p", "other")
    pub.add_labels("other", {"aux"})
    priv = LabeledGraph()
    priv.add_edge("p", "priv_kw")
    priv.add_labels("priv_kw", {"kw"})
    engine = PPKWS(pub, sketch_k=8)
    engine.attach("u", priv)
    return engine, engine.attachment("u")


class TestTryRequalify:
    def test_already_qualified_untouched(self, tie_world):
        engine, att = tie_world
        partial = PartialAnswer(
            answer=RootedAnswer("p", {
                "kw": Match("priv_kw", 1.0),
                "aux": Match("other", 1.0),
            })
        )
        cache = CompletionCache(True)
        assert try_requalify(engine, att, partial, ["kw", "aux"], cache)
        assert partial.answer.matches["kw"].vertex == "priv_kw"

    def test_swaps_private_to_public_on_tie(self, tie_world):
        engine, att = tie_world
        # kw matched privately twice over (aux is... private? no: 'aux'
        # must stay private-side so the kw swap is safe) — use a second
        # private keyword to anchor the private side.
        att.private.add_labels("priv_kw", {"anchor"})
        partial = PartialAnswer(
            answer=RootedAnswer("p", {
                "kw": Match("priv_kw", 1.0),
                "anchor": Match("priv_kw", 1.0),
            })
        )
        cache = CompletionCache(True)
        assert try_requalify(engine, att, partial, ["kw", "anchor"], cache)
        assert partial.answer.matches["kw"].vertex == "pub_kw"
        assert partial.answer.matches["kw"].distance == 1.0
        # the anchor keeps the private side
        assert partial.answer.matches["anchor"].vertex == "priv_kw"

    def test_single_keyword_cannot_straddle(self, tie_world):
        engine, att = tie_world
        # one non-portal match can satisfy only one side of Def. II.2; a
        # swap that would trade one side for the other must be refused
        partial = PartialAnswer(
            answer=RootedAnswer("p", {"kw": Match("priv_kw", 1.0)})
        )
        cache = CompletionCache(True)
        assert not try_requalify(engine, att, partial, ["kw"], cache)
        # and the match was left untouched
        assert partial.answer.matches["kw"].vertex == "priv_kw"

    def test_swaps_public_to_private_on_tie(self, tie_world):
        engine, att = tie_world
        # all matches public: lacks the private side; priv_kw ties via p
        partial = PartialAnswer(
            answer=RootedAnswer("p", {
                "kw": Match("pub_kw", 1.0),
                "aux": Match("other", 1.0),
            })
        )
        partial.answer.matches["kw"].vertex = "pub_kw"
        cache = CompletionCache(True)
        assert try_requalify(engine, att, partial, ["aux", "kw"], cache)
        vertices = {m.vertex for m in partial.answer.matches.values()}
        assert "priv_kw" in vertices

    def test_fails_when_no_tie_exists(self, tie_world):
        engine, att = tie_world
        # 'aux' exists only publicly; an all-aux answer can't gain a
        # private side at equal distance
        partial = PartialAnswer(
            answer=RootedAnswer("p", {"aux": Match("other", 1.0)})
        )
        cache = CompletionCache(True)
        assert not try_requalify(engine, att, partial, ["aux"], cache)

    def test_portal_with_public_label_counts_private(self):
        """A portal carrying the keyword publicly is a valid private-side
        witness (it belongs to G'.V)."""
        pub = LabeledGraph()
        pub.add_edge("p", "far")
        pub.add_labels("p", {"kw"})  # the portal itself carries kw publicly
        priv = LabeledGraph()
        priv.add_edge("p", "x")
        engine = PPKWS(pub, sketch_k=8)
        engine.attach("u", priv)
        att = engine.attachment("u")
        partial = PartialAnswer(
            answer=RootedAnswer("far", {"kw": Match("p", 1.0)})
        )
        cache = CompletionCache(True)
        # match p is a portal: private AND public side simultaneously
        assert try_requalify(engine, att, partial, ["kw"], cache)

    def test_swap_preserves_distances(self, tie_world):
        engine, att = tie_world
        partial = PartialAnswer(
            answer=RootedAnswer("p", {"kw": Match("priv_kw", 1.0)})
        )
        before = partial.answer.weight()
        try_requalify(engine, att, partial, ["kw"], CompletionCache(True))
        assert partial.answer.weight() == before
