"""Tests for the PPKWS engine: indexes, attachments, query models."""

from __future__ import annotations

import pytest

from repro.core import (
    PPKWS,
    PublicIndex,
    QueryOptions,
    query_model_m1,
    query_model_m2,
)
from repro.exceptions import GraphError, QueryError
from repro.graph import LabeledGraph, combine


class TestEngineLifecycle:
    def test_attach_builds_portal_state(self, small_public_private):
        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        att = engine.attach("bob", priv)
        assert att.portals == {2, 5}
        assert att.portal_map.portals >= {2, 5}
        assert engine.owners() == ["bob"]
        assert engine.attachment("bob") is att

    def test_attach_without_portals_rejected(self):
        pub = LabeledGraph.from_edges([(1, 2)])
        priv = LabeledGraph.from_edges([("a", "b")])
        engine = PPKWS(pub, sketch_k=1)
        with pytest.raises(GraphError):
            engine.attach("bob", priv)

    def test_duplicate_attach_rejected(self, small_public_private):
        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=1)
        engine.attach("bob", priv)
        with pytest.raises(GraphError):
            engine.attach("bob", priv)

    def test_detach(self, small_public_private):
        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=1)
        engine.attach("bob", priv)
        engine.detach("bob")
        assert engine.owners() == []
        with pytest.raises(GraphError):
            engine.detach("bob")
        with pytest.raises(GraphError):
            engine.attachment("bob")

    def test_shared_index_reuse(self, small_public_private):
        pub, priv = small_public_private
        index = PublicIndex.build(pub, k=2)
        e1 = PPKWS(pub, index=index)
        e2 = PPKWS(pub, index=index)
        assert e1.index is e2.index

    def test_foreign_index_rejected(self, small_public_private):
        pub, priv = small_public_private
        other = LabeledGraph.from_edges([(1, 2)])
        index = PublicIndex.build(other, k=1)
        with pytest.raises(GraphError):
            PPKWS(pub, index=index)

    def test_query_unattached_owner(self, small_public_private):
        pub, _ = small_public_private
        engine = PPKWS(pub, sketch_k=1)
        with pytest.raises(GraphError):
            engine.rclique("ghost", ["db"], tau=3.0)


class TestPublicIndex:
    def test_build_produces_all_parts(self, small_public_private):
        pub, _ = small_public_private
        index = PublicIndex.build(pub, k=2)
        assert index.pads.num_vertices == pub.num_vertices
        assert index.kpads.num_keywords == len(pub.label_universe())
        assert sum(index.pagerank_scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_provider_roundtrip(self, small_public_private):
        pub, _ = small_public_private
        index = PublicIndex.build(pub, k=3)
        provider = index.provider()
        # vertex 0 carries 'db'
        assert provider.keyword_distance(0, "db") == 0.0
        d, w = provider.keyword_distance_with_witness(1, "db")
        assert w == 0
        assert d >= 1.0


class TestQueryModels:
    def test_m1_returns_both_sides(self, small_public_private):
        pub, priv = small_public_private
        pub_answers, priv_answers = query_model_m1(
            pub, priv, "blinks", ["db", "ai"], tau=4.0
        )
        for a in pub_answers:
            assert all(m.vertex in pub for m in a.matches.values())
        for a in priv_answers:
            assert all(m.vertex in priv for m in a.matches.values())

    def test_m1_unknown_semantic(self, small_public_private):
        pub, priv = small_public_private
        with pytest.raises(QueryError):
            query_model_m1(pub, priv, "nope", ["db"], tau=1.0)

    def test_m2_filters_public_private(self, small_public_private):
        pub, priv = small_public_private
        answers = query_model_m2(pub, priv, "blinks", ["db", "ai"], tau=4.0)
        for a in answers:
            vertices = [m.vertex for m in a.matches.values()]
            assert any(v in priv for v in vertices)
            assert any(v in pub for v in vertices)

    def test_m2_unfiltered(self, small_public_private):
        pub, priv = small_public_private
        all_answers = query_model_m2(
            pub, priv, "blinks", ["db", "ai"], tau=4.0,
            require_public_private=False,
        )
        filtered = query_model_m2(pub, priv, "blinks", ["db", "ai"], tau=4.0)
        assert len(all_answers) >= len(filtered)

    def test_m2_accepts_premade_combined(self, small_public_private):
        pub, priv = small_public_private
        gc = combine(pub, priv)
        a1 = query_model_m2(pub, priv, "rclique", ["db", "ai"], 4.0, combined=gc)
        a2 = query_model_m2(pub, priv, "rclique", ["db", "ai"], 4.0)
        assert [a.sort_key() for a in a1] == [a.sort_key() for a in a2]

    def test_m2_unknown_semantic(self, small_public_private):
        pub, priv = small_public_private
        with pytest.raises(QueryError):
            query_model_m2(pub, priv, "nope", ["db"], tau=1.0)


class TestBreakdownAndCounters:
    def test_breakdown_populated(self, small_public_private):
        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        result = engine.blinks("bob", ["db", "ai"], tau=4.0)
        b = result.breakdown
        assert b.total == pytest.approx(b.peval + b.arefine + b.acomplete)
        fr = b.fractions()
        assert sum(fr) == pytest.approx(1.0)

    def test_empty_breakdown_fractions(self):
        from repro.core import StepBreakdown

        assert StepBreakdown().fractions() == (0.0, 0.0, 0.0)

    def test_counters_track_work(self, small_public_private):
        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        result = engine.rclique("bob", ["db", "cv"], tau=6.0)
        c = result.counters
        assert c.partial_answers > 0
        assert c.final_answers == len(result.answers)

    def test_dp_cache_hits_accumulate(self, small_public_private):
        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        result = engine.rclique("bob", ["db", "cv"], tau=6.0)
        assert result.counters.completion_lookups >= (
            result.counters.completion_cache_hits
        )


class TestQueryOptionsEquivalence:
    @pytest.mark.parametrize("semantic", ["rclique", "blinks"])
    def test_optimizations_do_not_change_answers(
        self, small_public_private, semantic
    ):
        pub, priv = small_public_private
        index = PublicIndex.build(pub, k=2)
        on = PPKWS(pub, index=index)
        off = PPKWS(
            pub,
            index=index,
            options=QueryOptions(reduced_refinement=False, dp_completion=False),
        )
        on.attach("bob", priv)
        off.attach("bob", priv)
        for keywords in (["db", "ai"], ["db", "cv"], ["ai", "ml", "cv"]):
            run_on = getattr(on, semantic)("bob", keywords, tau=6.0)
            run_off = getattr(off, semantic)("bob", keywords, tau=6.0)
            assert [a.sort_key() for a in run_on.answers] == [
                a.sort_key() for a in run_off.answers
            ]

    def test_optimizations_do_not_change_knk(self, small_public_private):
        pub, priv = small_public_private
        index = PublicIndex.build(pub, k=2)
        on = PPKWS(pub, index=index)
        off = PPKWS(
            pub,
            index=index,
            options=QueryOptions(reduced_refinement=False, dp_completion=False),
        )
        on.attach("bob", priv)
        off.attach("bob", priv)
        for keyword in ("db", "ai", "cv", "ml"):
            a = on.knk("bob", "x1", keyword, k=5).answer
            b = off.knk("bob", "x1", keyword, k=5).answer
            assert a.distances() == b.distances()
