"""Tests for the r-clique baseline semantic (Kargar-An star approximation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.graph import LabeledGraph, dijkstra
from repro.semantics import build_neighbor_lists, rclique_search
from tests.conftest import random_connected_graph


@pytest.fixture
def two_cluster_graph():
    """Two keyword clusters at distance 4: {a1(x), a2(y)} and {b1(x), b2(y)}."""
    g = LabeledGraph.from_edges(
        [("a1", "a2"), ("a2", "m1"), ("m1", "m2"), ("m2", "m3"), ("m3", "b1"),
         ("b1", "b2")],
        {"a1": {"x"}, "a2": {"y"}, "b1": {"x"}, "b2": {"y"}},
    )
    return g


class TestNeighborLists:
    def test_lists_sorted_and_capped(self, two_cluster_graph):
        g = two_cluster_graph
        lists = build_neighbor_lists(g, {"x": {"a1", "b1"}}, tau=10.0, m=2)
        for v in g.vertices():
            entries = lists.lists["x"].get(v, [])
            assert len(entries) <= 2
            distances = [d for d, _ in entries]
            assert distances == sorted(distances)

    def test_nearest_respects_exclusions(self, two_cluster_graph):
        g = two_cluster_graph
        lists = build_neighbor_lists(g, {"x": {"a1", "b1"}}, tau=10.0, m=2)
        d1, u1 = lists.nearest("a2", "x", frozenset())
        assert (u1, d1) == ("a1", 1.0)
        d2, u2 = lists.nearest("a2", "x", frozenset({"a1"}))
        assert (u2, d2) == ("b1", 4.0)
        assert lists.nearest("a2", "x", frozenset({"a1", "b1"})) is None

    def test_tau_cutoff(self, two_cluster_graph):
        lists = build_neighbor_lists(
            two_cluster_graph, {"x": {"a1"}}, tau=1.0, m=2
        )
        assert "b1" not in lists.lists["x"]


class TestRcliqueSearch:
    def test_local_cluster_preferred(self, two_cluster_graph):
        answers = rclique_search(two_cluster_graph, ["x", "y"], tau=2.0, k=2)
        assert answers
        best = answers[0]
        vertices = {m.vertex for m in best.matches.values()}
        assert vertices in ({"a1", "a2"}, {"b1", "b2"})
        assert best.weight() == 1.0

    def test_bound_prunes_cross_cluster(self, two_cluster_graph):
        # force exclusions so only cross-cluster stars remain: they exceed
        # tau=2 and must be pruned
        answers = rclique_search(two_cluster_graph, ["x", "y"], tau=2.0, k=10)
        for a in answers:
            assert a.within_bound(2.0)

    def test_enforce_bound_false_keeps_wide_answers(self, two_cluster_graph):
        answers = rclique_search(
            two_cluster_graph, ["x", "y"], tau=0.5, k=10, enforce_bound=False
        )
        assert answers  # nothing within tau, but partials are kept

    def test_top_k_distinct_answers(self, two_cluster_graph):
        answers = rclique_search(two_cluster_graph, ["x", "y"], tau=10.0, k=4)
        signatures = [
            tuple(sorted((q, m.vertex) for q, m in a.matches.items()))
            for a in answers
        ]
        assert len(signatures) == len(set(signatures))
        weights = [a.weight() for a in answers]
        assert weights == sorted(weights)

    def test_missing_keyword_returns_empty(self, two_cluster_graph):
        assert rclique_search(two_cluster_graph, ["x", "nope"], tau=3.0) == []

    def test_extra_candidates_match_any_keyword(self, two_cluster_graph):
        answers = rclique_search(
            two_cluster_graph, ["x", "zz"], tau=3.0, k=3,
            extra_candidates={"m1"},
        )
        # zz has no real matches; only the portal m1 can stand in for it
        assert answers
        for a in answers:
            assert a.matches["zz"].vertex == "m1"

    def test_invalid_queries(self, two_cluster_graph):
        with pytest.raises(QueryError):
            rclique_search(two_cluster_graph, [], tau=1.0)
        with pytest.raises(QueryError):
            rclique_search(two_cluster_graph, ["x"], tau=-1)
        with pytest.raises(QueryError):
            rclique_search(two_cluster_graph, ["x"], tau=1.0, k=0)

    def test_single_keyword_roots_are_matches(self, two_cluster_graph):
        answers = rclique_search(two_cluster_graph, ["x"], tau=1.0, k=5)
        roots = {a.root for a in answers}
        assert roots == {"a1", "b1"}


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000))
def test_rclique_star_distances_are_exact(seed):
    """Each reported match distance equals d(root, match) in the graph."""
    g = random_connected_graph(25, 8, seed)
    answers = rclique_search(g, ["a", "b"], tau=4.0, k=5)
    for ans in answers:
        exact = dijkstra(g, ans.root)
        for q, m in ans.matches.items():
            assert g.has_label(m.vertex, q) or m.vertex == ans.root
            assert m.distance == pytest.approx(exact[m.vertex])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2000))
def test_rclique_greedy_weight_vs_optimum(seed):
    """Thm A.5 shape: the greedy star weight is within (l-1) * OPT of the
    best star on brute-forceable instances (l = #keywords = 2 -> optimal)."""
    g = random_connected_graph(18, 6, seed)
    keywords = ["a", "b"]
    answers = rclique_search(g, keywords, tau=5.0, k=1)
    if not answers:
        return
    got = answers[0].weight()
    # brute force the best star
    best = float("inf")
    for root_kw, other_kw in ((0, 1), (1, 0)):
        for root in g.vertices_with_label(keywords[root_kw]):
            exact = dijkstra(g, root)
            candidates = [
                exact.get(v, float("inf"))
                for v in g.vertices_with_label(keywords[other_kw])
            ]
            if candidates:
                best = min(best, min(candidates))
    if best <= 5.0:
        # l = 2 so (l-1) = 1: greedy must be optimal on two keywords
        assert got == pytest.approx(best)
