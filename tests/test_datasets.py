"""Tests for synthetic datasets and query workload generators."""

from __future__ import annotations

import pytest

from repro.datasets import (
    dataset_by_name,
    dbpedia_like,
    generate_keyword_queries,
    generate_knk_queries,
    ppdblp_like,
    yago_like,
    zipfian_tenant_workload,
    zipfian_weights,
)
from repro.exceptions import DatasetError, QueryError
from repro.graph import portal_nodes


class TestDatasetFamilies:
    @pytest.mark.parametrize(
        "builder,avg_labels",
        [(yago_like, 3.8), (dbpedia_like, 3.7)],
    )
    def test_knowledge_graph_label_density(self, builder, avg_labels):
        ds = builder(num_vertices=600, num_labels=80, seed=1)
        assert ds.public.average_labels_per_vertex() == pytest.approx(
            avg_labels, abs=0.5
        )

    def test_yago_degree(self):
        ds = yago_like(num_vertices=600, seed=2)
        avg_degree = 2 * ds.public.num_edges / ds.public.num_vertices
        assert 3.5 <= avg_degree <= 5.0

    def test_ppdblp_label_density(self):
        ds = ppdblp_like(num_communities=10, community_size=20, seed=3)
        assert ds.public.average_labels_per_vertex() == pytest.approx(10.0, abs=1.0)

    def test_private_graph_has_portals(self):
        ds = yago_like(num_vertices=500, private_vertices=50, seed=4)
        priv = ds.private("user0")
        portals = portal_nodes(ds.public, priv)
        assert portals
        assert priv.num_vertices == pytest.approx(50, abs=10)

    def test_multiple_private_graphs(self):
        ds = yago_like(num_vertices=500, num_private=3, seed=5)
        assert len(ds.owners()) == 3
        for owner in ds.owners():
            assert portal_nodes(ds.public, ds.private(owner))

    def test_unknown_owner(self):
        ds = yago_like(num_vertices=300, seed=6)
        with pytest.raises(DatasetError):
            ds.private("ghost")

    def test_deterministic_per_seed(self):
        d1 = yago_like(num_vertices=400, seed=7)
        d2 = yago_like(num_vertices=400, seed=7)
        assert d1.public.num_edges == d2.public.num_edges
        assert sorted(map(repr, d1.private("user0").vertices())) == sorted(
            map(repr, d2.private("user0").vertices())
        )

    def test_dataset_by_name(self):
        ds = dataset_by_name("yago", num_vertices=300, seed=8)
        assert ds.name == "yago"
        with pytest.raises(DatasetError):
            dataset_by_name("nope")

    def test_hub_overlay_creates_degree_skew(self):
        ds = yago_like(num_vertices=1000, seed=9)
        degrees = sorted(ds.public.degree(v) for v in ds.public.vertices())
        assert degrees[-1] >= 2.0 * (2 * ds.public.num_edges / 1000)


class TestKeywordQueryGeneration:
    def _ds(self):
        return yago_like(num_vertices=500, num_labels=60, seed=10)

    def test_queries_straddle_alphabets(self):
        ds = self._ds()
        priv = ds.private("user0")
        queries = generate_keyword_queries(ds.public, priv, 20, seed=1)
        priv_labels = priv.label_universe()
        pub_labels = ds.public.label_universe()
        for q in queries:
            assert any(t in priv_labels for t in q.keywords)
            assert any(t in pub_labels for t in q.keywords)

    def test_keywords_distinct(self):
        ds = self._ds()
        queries = generate_keyword_queries(
            ds.public, ds.private("user0"), 30, keywords_per_query=3, seed=2
        )
        for q in queries:
            assert len(set(q.keywords)) == len(q.keywords)

    def test_count_and_size(self):
        ds = self._ds()
        queries = generate_keyword_queries(
            ds.public, ds.private("user0"), 7, keywords_per_query=4,
            tau=6.0, seed=3,
        )
        assert len(queries) == 7
        assert all(len(q.keywords) == 4 and q.tau == 6.0 for q in queries)

    def test_deterministic(self):
        ds = self._ds()
        q1 = generate_keyword_queries(ds.public, ds.private("user0"), 5, seed=4)
        q2 = generate_keyword_queries(ds.public, ds.private("user0"), 5, seed=4)
        assert q1 == q2

    def test_too_few_keywords_rejected(self):
        ds = self._ds()
        with pytest.raises(QueryError):
            generate_keyword_queries(
                ds.public, ds.private("user0"), 5, keywords_per_query=1
            )

    def test_unlabeled_graph_rejected(self):
        from repro.graph import LabeledGraph

        bare = LabeledGraph.from_edges([(1, 2)])
        ds = self._ds()
        with pytest.raises(QueryError):
            generate_keyword_queries(ds.public, bare, 5)


class TestKnkQueryGeneration:
    def test_sources_are_private(self):
        ds = yago_like(num_vertices=500, seed=11)
        priv = ds.private("user0")
        queries = generate_knk_queries(ds.public, priv, 20, seed=5)
        assert len(queries) == 20
        for q in queries:
            assert q.source in priv
            assert q.k == 64

    def test_keywords_follow_combined_distribution(self):
        ds = yago_like(num_vertices=800, num_labels=60, seed=12)
        priv = ds.private("user0")
        queries = generate_knk_queries(ds.public, priv, 200, seed=6)
        # t0 (most frequent) should be drawn more often than t50 (rare)
        from collections import Counter

        counts = Counter(q.keyword for q in queries)
        assert counts.get("t0", 0) > counts.get("t50", 0)


class TestZipfianTenantWorkload:
    def test_weights_decay_by_rank(self):
        weights = zipfian_weights(4, exponent=1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25]
        assert zipfian_weights(3, exponent=0.0) == [1.0, 1.0, 1.0]
        assert zipfian_weights(0) == []

    def test_bad_parameters_rejected(self):
        with pytest.raises(QueryError, match="non-negative rank count"):
            zipfian_weights(-1)
        with pytest.raises(QueryError, match="exponent must be >= 0"):
            zipfian_weights(3, exponent=-0.5)
        with pytest.raises(QueryError, match="at least one tenant"):
            zipfian_tenant_workload([], 10)
        with pytest.raises(QueryError, match="non-negative request count"):
            zipfian_tenant_workload(["a"], -1)

    def test_seed_makes_the_draw_deterministic(self):
        tenants = [f"net{i}" for i in range(5)]
        a = zipfian_tenant_workload(tenants, 100, exponent=1.2, seed=9)
        b = zipfian_tenant_workload(tenants, 100, exponent=1.2, seed=9)
        assert a == b
        assert len(a) == 100
        assert set(a) <= set(tenants)

    def test_popularity_follows_tenant_rank(self):
        from collections import Counter

        tenants = [f"net{i}" for i in range(4)]
        draw = zipfian_tenant_workload(tenants, 4000, exponent=1.3, seed=7)
        counts = Counter(draw)
        # Rank 1 beats the tail decisively on a sample this large.
        assert counts["net0"] > counts["net2"]
        assert counts["net0"] > counts["net3"]
        assert counts["net0"] > len(draw) // 4  # strictly above uniform share

    def test_zero_exponent_is_near_uniform(self):
        from collections import Counter

        tenants = ["a", "b"]
        counts = Counter(zipfian_tenant_workload(tenants, 4000, 0.0, seed=3))
        assert abs(counts["a"] - counts["b"]) < 400
