"""Unit tests for query budgets and their traversal/batch integration."""

from __future__ import annotations

import pytest

from repro.core import BatchBudget, QueryBudget
from repro.exceptions import (
    BudgetError,
    BudgetExhaustedError,
    DeadlineExceededError,
    QueryCancelledError,
    ReproError,
)
from repro.graph import LabeledGraph, dijkstra, multi_source_dijkstra
from repro.graph.traversal import dijkstra_ordered

from .conftest import random_connected_graph


class FakeClock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self) -> None:
        self.t = 0.0
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return self.t


class TestQueryBudget:
    def test_unlimited_budget_never_raises(self):
        budget = QueryBudget()
        for _ in range(10_000):
            budget.checkpoint()
        assert budget.expansions == 10_000
        assert not budget.expired()

    def test_expansion_cap(self):
        budget = QueryBudget(max_expansions=3)
        budget.checkpoint()
        budget.checkpoint()
        budget.checkpoint()
        with pytest.raises(BudgetExhaustedError) as exc_info:
            budget.checkpoint()
        assert "4" in str(exc_info.value) and "3" in str(exc_info.value)

    def test_cost_parameter(self):
        budget = QueryBudget(max_expansions=10)
        budget.checkpoint(cost=10)
        with pytest.raises(BudgetExhaustedError):
            budget.checkpoint()

    def test_deadline_with_fake_clock(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=10.0, check_interval=1, clock=clock)
        budget.checkpoint()  # clock at 0ms: fine
        clock.t = 0.02  # 20ms > 10ms deadline
        with pytest.raises(DeadlineExceededError) as exc_info:
            budget.checkpoint()
        assert exc_info.value.deadline_ms == 10.0
        assert exc_info.value.elapsed_ms == pytest.approx(20.0)

    def test_already_expired_budget_fails_on_first_checkpoint(self):
        budget = QueryBudget(deadline_ms=0.0)
        with pytest.raises(DeadlineExceededError):
            budget.checkpoint()

    def test_clock_reads_are_amortized(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=1000.0, check_interval=100, clock=clock)
        reads_after_init = clock.reads
        for _ in range(1000):
            budget.checkpoint()
        # the interval grows to check_interval within a few cheap reads,
        # so clock reads stay a tiny fraction of the checkpoints
        assert clock.reads - reads_after_init <= 15

    def test_interval_shrinks_for_heavy_loops(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=10_000.0, check_interval=256, clock=clock)
        for _ in range(10):
            clock.t += 0.002  # each checkpoint guards 2ms of work
            budget.checkpoint()
        # gaps above the ~1ms target collapse the interval to 1: every
        # further checkpoint reads the clock, bounding overshoot in time
        assert budget._interval == 1

    def test_recheck_is_unamortized(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=10.0, check_interval=256, clock=clock)
        budget.checkpoint()
        clock.t = 0.02  # deadline passed, but next amortized read is far away
        budget.checkpoint()
        with pytest.raises(DeadlineExceededError):
            budget.recheck()

    def test_no_clock_reads_without_deadline(self):
        clock = FakeClock()
        budget = QueryBudget(max_expansions=10**6, check_interval=1, clock=clock)
        reads_after_init = clock.reads
        for _ in range(1000):
            budget.checkpoint()
        assert clock.reads == reads_after_init

    def test_cancellation(self):
        budget = QueryBudget()
        assert not budget.cancelled
        budget.cancel()
        assert budget.cancelled
        with pytest.raises(QueryCancelledError):
            budget.checkpoint()

    def test_expired_probe_does_not_raise(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=10.0, clock=clock)
        assert not budget.expired()
        clock.t = 1.0
        assert budget.expired()
        capped = QueryBudget(max_expansions=1)
        capped.checkpoint()
        with pytest.raises(BudgetExhaustedError):
            capped.checkpoint()
        assert capped.expired()

    def test_expansion_cap_boundary_consistency(self):
        """A query sitting *exactly* at the cap is not expired.

        Regression: ``expired()`` used ``>=`` while ``checkpoint()``
        raises on ``>``, so a boundary query was declared expired at
        step boundaries (``expired()`` / ``recheck()`` probes) but never
        in-loop — pipelines could report a different ``interrupted_step``
        for the same exhaustion point depending on where they probed.
        """
        budget = QueryBudget(max_expansions=5)
        for _ in range(5):
            budget.checkpoint()
        assert budget.expansions == 5
        # At the cap: the in-loop probe (recheck -> checkpoint(cost=0))
        # and the boundary probe (expired) must agree: not expired.
        assert not budget.expired()
        budget.recheck()  # must not raise either
        # One past the cap: both must agree it is spent.
        with pytest.raises(BudgetExhaustedError):
            budget.checkpoint()
        assert budget.expired()
        with pytest.raises(BudgetExhaustedError):
            budget.recheck()

    def test_elapsed_and_remaining(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=100.0, clock=clock)
        clock.t = 0.03
        assert budget.elapsed_ms() == pytest.approx(30.0)
        assert budget.remaining_ms() == pytest.approx(70.0)
        assert QueryBudget(clock=clock).remaining_ms() is None

    def test_budget_errors_are_repro_errors(self):
        for exc in (
            DeadlineExceededError(10.0, 5.0),
            BudgetExhaustedError(4, 3),
            QueryCancelledError(),
        ):
            assert isinstance(exc, BudgetError)
            assert isinstance(exc, ReproError)


class TestTraversalBudgets:
    def test_dijkstra_raises_on_tiny_cap(self):
        g = random_connected_graph(200, 100, seed=7)
        with pytest.raises(BudgetExhaustedError):
            dijkstra(g, 0, budget=QueryBudget(max_expansions=5))

    def test_dijkstra_identical_with_generous_budget(self):
        g = random_connected_graph(200, 100, seed=7)
        plain = dijkstra(g, 0)
        budgeted = dijkstra(g, 0, budget=QueryBudget(max_expansions=10**9))
        assert plain == budgeted

    def test_multi_source_budget(self):
        g = random_connected_graph(100, 50, seed=3)
        plain = multi_source_dijkstra(g, [0, 1])
        budgeted = multi_source_dijkstra(g, [0, 1], budget=QueryBudget())
        assert plain == budgeted
        with pytest.raises(BudgetExhaustedError):
            multi_source_dijkstra(g, [0, 1], budget=QueryBudget(max_expansions=2))

    def test_dijkstra_ordered_charges_per_pop(self):
        g = LabeledGraph()
        for i in range(10):
            g.add_edge(i, i + 1)
        budget = QueryBudget(max_expansions=4)
        seen = []
        with pytest.raises(BudgetExhaustedError):
            for v, _ in dijkstra_ordered(g, 0, budget=budget):
                seen.append(v)
        assert 0 < len(seen) <= 4


class TestBatchBudget:
    def test_unbudgeted_yields_none(self):
        batch = BatchBudget()
        assert batch.unbudgeted
        assert batch.slice_for(5) is None

    def test_expansions_split_evenly(self):
        batch = BatchBudget(max_expansions=100)
        first = batch.slice_for(4)
        assert first.max_expansions == 25
        with pytest.raises(BudgetExhaustedError):
            first.checkpoint(cost=40)  # overruns its slice...
        batch.charge(first)  # ...and the overrun still counts against the batch
        second = batch.slice_for(3)
        assert second.max_expansions == 20  # (100 - 40) // 3

    def test_spent_batch_gives_zero_budgets(self):
        batch = BatchBudget(max_expansions=10)
        spent = batch.slice_for(1)
        spent.checkpoint(cost=10)
        batch.charge(spent)
        tail = batch.slice_for(1)
        assert tail.max_expansions == 0
        with pytest.raises(BudgetExhaustedError):
            tail.checkpoint()

    def test_deadline_share_is_non_negative(self):
        batch = BatchBudget(deadline_ms=0.0)
        tail = batch.slice_for(3)
        assert tail.deadline_ms == 0.0
        with pytest.raises(DeadlineExceededError):
            tail.checkpoint()
