"""PP-truss: the sixth registered semantics, validated against brute force.

Three layers:

* the :func:`repro.semantics.truss.truss_search` oracle on hand-built
  graphs (known trusses, keyword filtering, the ``k < 2`` contract);
* the headline equivalence — ``pp_truss_query`` through the engine's
  PEval/ARefine/AComplete pipeline equals the oracle run on the
  *materialized* combined graph, across several seeded random
  public-private graphs and several ``k``;
* the surrounding machinery: Def.-II.2 qualification, degradation under
  an expansion budget, the generic ``PPKWS.query``/``BatchSession.query``
  entry points and the ``truss`` wire op.
"""

from __future__ import annotations

import random

import pytest

from repro.core.batch import BatchSession
from repro.core.framework import PPKWS
from repro.core.pp_truss import pp_truss_query
from repro.exceptions import QueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.semantics.truss import TrussAnswer, edge_key, truss_search
from repro.service import PPKWSService

SEEDS = (3, 17, 91)
VOCAB = ("a", "b", "c", "d")


def seeded_pp_graph(seed):
    """A random public graph plus an overlapping private graph.

    A ring backbone keeps both graphs connected-ish; random chords at a
    generous density guarantee triangles, so nontrivial k-trusses exist.
    """
    rng = random.Random(seed)
    n_pub = 28
    pub = LabeledGraph(f"pub{seed}")
    for i in range(n_pub):
        pub.add_vertex(f"p{i}", rng.sample(VOCAB, rng.randint(1, 2)))
    for i in range(n_pub):
        pub.add_edge(f"p{i}", f"p{(i + 1) % n_pub}")
    for i in range(n_pub):
        for j in range(i + 2, n_pub):
            if rng.random() < 0.18:
                pub.add_edge(f"p{i}", f"p{j}")

    portals = rng.sample([f"p{i}" for i in range(n_pub)], 6)
    private_only = [f"s{seed}x{i}" for i in range(8)]
    priv = LabeledGraph(f"priv{seed}")
    for v in portals:
        priv.add_vertex(v, rng.sample(VOCAB, 1))
    for v in private_only:
        priv.add_vertex(v, rng.sample(VOCAB, rng.randint(1, 2)))
    members = portals + private_only
    for i, v in enumerate(members[1:], start=1):
        priv.add_edge(members[rng.randrange(i)], v)
    for i in range(len(members)):
        for j in range(i + 1, len(members)):
            if rng.random() < 0.3 and not priv.has_edge(members[i], members[j]):
                priv.add_edge(members[i], members[j])
    return pub, priv


def engine_for(pub, priv):
    engine = PPKWS(pub, sketch_k=2)
    engine.attach("alice", priv)
    return engine


def spans_both(answer, pub, priv):
    """The Def.-II.2 qualification predicate, stated independently."""
    has_private = any(priv.has_edge(u, v) for u, v in answer.edges)
    has_public = any(pub.has_edge(u, v) for u, v in answer.edges)
    return has_private and has_public


# ----------------------------------------------------------------------
# the brute-force oracle on hand-built graphs
# ----------------------------------------------------------------------
class TestTrussOracle:
    def test_two_triangles_sharing_an_edge(self):
        # 1-2-3 and 2-3-4: every edge is in a triangle -> all survive k=3.
        g = LabeledGraph.from_edges(
            [(1, 2), (2, 3), (1, 3), (2, 4), (3, 4)],
            {1: {"a"}, 2: {"b"}, 3: {"a"}, 4: {"c"}},
        )
        [answer] = truss_search(g, 3)
        assert set(answer.vertices) == {1, 2, 3, 4}
        assert len(answer.edges) == 5

    def test_k4_peels_weak_triangles(self):
        # K4 on 1..4 survives k=4; the pendant triangle (4,5,6) does not.
        k4 = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        g = LabeledGraph.from_edges(k4 + [(4, 5), (4, 6), (5, 6)])
        [answer] = truss_search(g, 4)
        assert set(answer.vertices) == {1, 2, 3, 4}
        assert truss_search(g, 3)[0].vertices == (1, 2, 3, 4, 5, 6)

    def test_keyword_filter_drops_uncovered_components(self):
        g = LabeledGraph.from_edges(
            [(1, 2), (2, 3), (1, 3), (10, 11), (11, 12), (10, 12)],
            {1: {"a"}, 2: {"b"}, 3: {"b"}, 10: {"a"}, 11: {"a"}, 12: {"a"}},
        )
        both = truss_search(g, 3)
        assert len(both) == 2
        covered = truss_search(g, 3, keywords=["a", "b"])
        assert [set(a.vertices) for a in covered] == [{1, 2, 3}]
        assert truss_search(g, 3, keywords=["z"]) == []

    def test_k_below_two_rejected(self):
        g = LabeledGraph.from_edges([(1, 2)])
        with pytest.raises(QueryError, match="k-truss requires k >= 2"):
            truss_search(g, 1)

    def test_answers_sort_largest_first(self):
        g = LabeledGraph.from_edges(
            [(1, 2), (2, 3), (1, 3), (10, 11), (11, 12), (10, 12),
             (12, 13), (11, 13)],
        )
        answers = truss_search(g, 3)
        sizes = [len(a.vertices) for a in answers]
        assert sizes == sorted(sizes, reverse=True)


# ----------------------------------------------------------------------
# the headline equivalence: pipeline == brute force on materialized Gc
# ----------------------------------------------------------------------
class TestPipelineMatchesBruteForce:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", (3, 4))
    def test_unqualified_answers_equal_oracle(self, seed, k):
        pub, priv = seeded_pp_graph(seed)
        engine = engine_for(pub, priv)
        combined = pub.union(priv)
        result = pp_truss_query(
            engine, engine.attachment("alice"), k,
            require_public_private=False,
        )
        assert not result.degraded
        assert result.answers == truss_search(combined, k)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_keyword_filtered_answers_equal_oracle(self, seed):
        pub, priv = seeded_pp_graph(seed)
        engine = engine_for(pub, priv)
        combined = pub.union(priv)
        for keywords in (["a"], ["a", "b"], ["a", "b", "c", "d"]):
            result = pp_truss_query(
                engine, engine.attachment("alice"), 3, keywords,
                require_public_private=False,
            )
            assert result.answers == truss_search(combined, 3, keywords)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_qualified_answers_span_both_graphs(self, seed):
        pub, priv = seeded_pp_graph(seed)
        engine = engine_for(pub, priv)
        combined = pub.union(priv)
        result = pp_truss_query(engine, engine.attachment("alice"), 3)
        expected = [
            a for a in truss_search(combined, 3)
            if spans_both(a, pub, priv)
        ]
        assert result.answers == expected
        assert all(spans_both(a, pub, priv) for a in result.answers)

    def test_oracle_equivalence_is_not_vacuous(self):
        # At least one seed must produce a nonempty 3-truss, else the
        # parametrized equality above proves nothing.
        nonempty = 0
        for seed in SEEDS:
            pub, priv = seeded_pp_graph(seed)
            nonempty += bool(truss_search(pub.union(priv), 3))
        assert nonempty == len(SEEDS)


# ----------------------------------------------------------------------
# pipeline machinery: validation, counters, degradation
# ----------------------------------------------------------------------
class TestPipelineMachinery:
    def test_k_below_two_is_a_query_error(self):
        pub, priv = seeded_pp_graph(3)
        engine = engine_for(pub, priv)
        with pytest.raises(QueryError, match="k >= 2"):
            pp_truss_query(engine, engine.attachment("alice"), 1)

    def test_breakdown_and_counters_populated(self):
        pub, priv = seeded_pp_graph(3)
        engine = engine_for(pub, priv)
        result = pp_truss_query(engine, engine.attachment("alice"), 3)
        assert result.completed_steps == ("peval", "arefine", "acomplete")
        assert result.breakdown.peval >= 0.0
        assert result.counters.refinement_checks == priv.num_edges
        assert result.counters.completion_lookups > 0

    def test_tiny_expansion_budget_degrades_with_salvage(self):
        pub, priv = seeded_pp_graph(3)
        engine = engine_for(pub, priv)
        budget = engine.make_budget(max_expansions=2)
        result = pp_truss_query(
            engine, engine.attachment("alice"), 3, budget=budget
        )
        assert result.degraded
        assert result.interrupted_step in ("peval", "arefine", "acomplete")
        # Salvage peels private edges only: every salvaged answer lives
        # entirely inside the private graph.
        for answer in result.answers:
            assert all(priv.has_edge(u, v) for u, v in answer.edges)

    def test_salvage_answers_are_truss_answers(self):
        pub, priv = seeded_pp_graph(17)
        engine = engine_for(pub, priv)
        budget = engine.make_budget(max_expansions=priv.num_edges + 3)
        result = pp_truss_query(
            engine, engine.attachment("alice"), 3, budget=budget
        )
        assert result.degraded
        assert all(isinstance(a, TrussAnswer) for a in result.answers)


# ----------------------------------------------------------------------
# generic entry points and the wire
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_engine_generic_query(self):
        pub, priv = seeded_pp_graph(3)
        engine = engine_for(pub, priv)
        direct = pp_truss_query(engine, engine.attachment("alice"), 3)
        generic = engine.query("truss", "alice", k=3)
        assert generic.answers == direct.answers

    def test_batch_session_generic_query(self):
        pub, priv = seeded_pp_graph(3)
        engine = engine_for(pub, priv)
        direct = pp_truss_query(engine, engine.attachment("alice"), 3)
        session = BatchSession(engine, "alice")
        assert session.query("truss", k=3).answers == direct.answers

    def test_wire_op_round_trip(self):
        pub, priv = seeded_pp_graph(3)
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        svc.attach_user("net", "alice", priv)
        resp = svc.execute({
            "op": "truss", "network": "net", "owner": "alice", "k": 3,
        })
        assert resp["status"] == "ok"
        assert resp["answers"]
        first = resp["answers"][0]
        assert set(first) == {"vertices", "edges"}
        assert all(isinstance(e, list) and len(e) == 2 for e in first["edges"])
        engine = svc._engine("net")
        expected = pp_truss_query(engine, engine.attachment("alice"), 3)
        assert len(resp["answers"]) == len(expected.answers)

    def test_wire_rejects_bad_k(self):
        pub, priv = seeded_pp_graph(3)
        svc = PPKWSService(sketch_k=2)
        svc.create_network("net", pub)
        svc.attach_user("net", "alice", priv)
        resp = svc.execute({
            "op": "truss", "network": "net", "owner": "alice", "k": 0,
        })
        assert resp["status"] == "error"
        assert resp["code"] == "bad_request"

    def test_edge_key_orders_pairs(self):
        assert edge_key(2, 1) == edge_key(1, 2)
