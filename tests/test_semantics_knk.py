"""Tests for the k-nk baseline semantic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.graph import LabeledGraph, dijkstra
from repro.semantics import knk_search
from tests.conftest import random_connected_graph


@pytest.fixture
def star_graph():
    g = LabeledGraph.from_edges(
        [(0, i) for i in range(1, 6)],
        {1: {"t"}, 3: {"t"}, 5: {"t"}, 0: {"s"}},
    )
    return g


class TestKnkSearch:
    def test_finds_k_nearest(self, star_graph):
        ans = knk_search(star_graph, 0, "t", k=2)
        assert len(ans.matches) == 2
        assert ans.distances() == [1.0, 1.0]
        assert all(star_graph.has_label(v, "t") for v in ans.vertices())

    def test_source_counts_when_labeled(self, star_graph):
        ans = knk_search(star_graph, 0, "s", k=1)
        assert ans.matches[0].vertex == 0
        assert ans.matches[0].distance == 0.0

    def test_fewer_matches_than_k(self, star_graph):
        ans = knk_search(star_graph, 0, "t", k=10)
        assert len(ans.matches) == 3

    def test_cutoff(self):
        g = LabeledGraph.from_edges([(0, 1), (1, 2)], {2: {"t"}})
        ans = knk_search(g, 0, "t", k=1, cutoff=1.0)
        assert len(ans.matches) == 0

    def test_extra_matches_admitted(self, star_graph):
        ans = knk_search(star_graph, 0, "none", k=2, extra_matches={2, 4})
        assert {m.vertex for m in ans.matches} == {2, 4}

    def test_distances_sorted(self):
        g = LabeledGraph.from_edges(
            [(0, 1), (1, 2), (2, 3)], {1: {"t"}, 3: {"t"}}
        )
        ans = knk_search(g, 0, "t", k=5)
        assert ans.distances() == sorted(ans.distances())

    def test_invalid_queries(self, star_graph):
        with pytest.raises(QueryError):
            knk_search(star_graph, 0, "t", k=0)
        with pytest.raises(QueryError):
            knk_search(star_graph, 0, "", k=1)

    def test_answer_helpers(self, star_graph):
        ans = knk_search(star_graph, 0, "t", k=2)
        assert len(ans) == 2
        assert ans.kth_distance() == 1.0
        empty = knk_search(star_graph, 0, "none", k=2)
        assert empty.kth_distance() == float("inf")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 3000), k=st.integers(1, 6))
def test_knk_matches_brute_force(seed, k):
    """The reported distance multiset equals the brute-force k nearest."""
    g = random_connected_graph(25, 8, seed)
    ans = knk_search(g, 0, "a", k=k)
    exact = dijkstra(g, 0)
    truth = sorted(
        exact[v] for v in g.vertices_with_label("a") if v in exact
    )[:k]
    assert ans.distances() == pytest.approx(truth)
