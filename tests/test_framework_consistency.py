"""Cross-model consistency: PPKWS (M3) vs the baseline on Gc (M2).

With *exact* distance estimation (huge sketch k), the two models must
agree on the core answer content:

* every PPKWS Blinks answer root is also a baseline answer root with the
  same weight (PPKWS is a faithful evaluator, not a heuristic);
* PP-knk's distance ranking matches the baseline's for distances the
  framework guarantees (private members, Lemma A.1);
* answers never regress when the bound loosens (tau monotonicity).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PPKWS, query_model_m2
from repro.graph import combine
from repro.semantics import blinks_search
from tests.test_core_correctness import _instance


def _exact_engine(pub):
    return PPKWS(pub, sketch_k=128)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1500))
def test_pp_blinks_roots_subset_of_baseline(seed):
    pub, priv = _instance(seed)
    engine = _exact_engine(pub)
    engine.attach("u", priv)
    gc = combine(pub, priv)
    tau = 4.0
    pp = engine.blinks("u", ["a", "b"], tau, k=50)
    base = blinks_search(gc, ["a", "b"], tau, k=10_000)
    base_weights = {a.root: a.weight() for a in base}
    for ans in pp.answers:
        assert ans.root in base_weights, (seed, ans)
        # PPKWS may have found a different-but-equal-weight witness set;
        # the weight can never beat the exact evaluator's.
        assert ans.weight() >= base_weights[ans.root] - 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1500))
def test_baseline_public_private_roots_found_by_ppkws(seed):
    """Completeness over roots the framework promises: every baseline
    public-private answer rooted in the private graph (where PEval
    enumerates exhaustively) is found by PP-Blinks."""
    pub, priv = _instance(seed)
    engine = _exact_engine(pub)
    engine.attach("u", priv)
    tau = 4.0
    pp_roots = {a.root for a in engine.blinks("u", ["a", "b"], tau, k=10_000).answers}
    base = query_model_m2(pub, priv, "blinks", ["a", "b"], tau, k=10_000)
    for ans in base:
        if ans.root in priv:
            assert ans.root in pp_roots, (seed, ans)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1500))
def test_tau_monotonicity(seed):
    """Loosening tau can only add answers (same k cap lifted)."""
    pub, priv = _instance(seed)
    engine = _exact_engine(pub)
    engine.attach("u", priv)
    tight = {a.root for a in engine.blinks("u", ["a", "b"], 3.0, k=10_000).answers}
    loose = {a.root for a in engine.blinks("u", ["a", "b"], 5.0, k=10_000).answers}
    assert tight <= loose


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1500), k=st.sampled_from([1, 3, 6]))
def test_knk_k_prefix_property(seed, k):
    """The top-k list is a prefix of the top-(k+2) list."""
    pub, priv = _instance(seed)
    engine = _exact_engine(pub)
    engine.attach("u", priv)
    small = engine.knk("u", "x0", "a", k=k).answer
    large = engine.knk("u", "x0", "a", k=k + 2).answer
    assert small.distances() == large.distances()[: len(small.distances())]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000))
def test_rclique_distance_guarantees(seed):
    """Thm A.6 shape under exact estimation: reported distances are
    achievable (>= true d_c), within tau, and *exact* for matches that
    live in the private graph (Eq.-4 refinement is exact there).
    Portal-routed public completions go through the single portal PEval
    chose, so they may exceed the true distance — that slack is exactly
    the paper's (2c-1) approximation, not a bug."""
    pub, priv = _instance(seed)
    engine = _exact_engine(pub)
    engine.attach("u", priv)
    gc = combine(pub, priv)
    tau = 4.0
    pp = engine.rclique("u", ["a", "b"], tau, k=20)
    from repro.graph import dijkstra

    portals = engine.attachment("u").portals
    for ans in pp.answers:
        exact = dijkstra(gc, ans.root)
        for m in ans.matches.values():
            assert m.distance >= exact[m.vertex] - 1e-9
            assert m.distance <= tau + 1e-9
            # exactness applies to matches PEval found privately; a
            # portal can also arrive as a (route-specific) public
            # completion witness, so restrict to non-portal privates
            if m.vertex in priv and m.vertex not in portals:
                assert m.distance == pytest.approx(exact[m.vertex])

def test_witness_repair_uses_combined_portal_map():
    """Regression: a portal-rooted answer whose only qualifying witness is
    another portal reachable at the recorded distance *only via the Algo-7
    combined portal map* (both the private-only and public-only routes are
    longer) must survive requalification.  Seed 1280 exhibits this: root 28
    completes both keywords through public witnesses, and the equal-distance
    private-side swap target is portal 1 with dc(28, 1) = 3 while
    d'(28, 1) = d_pub(28, 1) = 4."""
    pub, priv = _instance(1280)
    engine = _exact_engine(pub)
    att = engine.attach("u", priv)
    assert att.portal_map.get(28, 1) < min(
        att.private_portal_map.get(28, 1),
        engine.index.provider().vertex_distance(28, 1),
    )
    pp_roots = {a.root for a in engine.blinks("u", ["a", "b"], 4.0, k=10_000).answers}
    base = query_model_m2(pub, priv, "blinks", ["a", "b"], 4.0, k=10_000)
    for ans in base:
        if ans.root in priv:
            assert ans.root in pp_roots, ans
