"""Bit-identity contract for the ``repro.core.engine`` refactor.

``tests/data/engine_equivalence.json`` froze the canonicalized results
of the full workload (``tests/engine_equivalence_data.py``) as produced
by the pre-refactor pipelines.  This suite re-runs the identical
workload against the current code and asserts exact equality — answers,
counters, ``completed_steps``/``interrupted_step`` bookkeeping and the
degraded salvage paths all included.

The backend dimension is driven by ``REPRO_ENGINE_BACKEND`` so CI's
``semantics-matrix`` job can pin one backend per matrix leg:

* ``dict``   — mutable adjacency-dict backend only
* ``frozen`` — frozen CSR-style backend only
* unset      — both
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

import pytest

from tests.engine_equivalence_data import (
    SEEDS,
    build_engine,
    run_ablation_workload,
    run_workload,
)

DATA = os.path.join(os.path.dirname(__file__), "data",
                    "engine_equivalence.json")

_BACKENDS = {"dict": (False,), "frozen": (True,)}.get(
    os.environ.get("REPRO_ENGINE_BACKEND", ""), (False, True)
)


@pytest.fixture(scope="module")
def golden() -> Dict[str, Any]:
    with open(DATA, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["format"] == 1
    return payload


def _diff_runs(expected: List[Dict[str, Any]],
               actual: List[Dict[str, Any]], label: str) -> None:
    assert len(actual) == len(expected), label
    for exp, act in zip(expected, actual):
        assert act["query"] == exp["query"], label
        assert act["result"] == exp["result"], (
            f"{label}: result drifted for query {exp['query']!r}"
        )


@pytest.mark.parametrize("freeze", _BACKENDS, ids=lambda f: "frozen" if f else "dict")
@pytest.mark.parametrize("seed", SEEDS)
def test_workload_bit_identical(golden: Dict[str, Any], seed: int,
                                freeze: bool) -> None:
    expected = golden["seeds"][str(seed)]
    actual = run_workload(build_engine(seed, freeze=freeze))
    for semantics in ("blinks", "rclique", "banks", "knk", "knk_multi"):
        _diff_runs(expected[semantics], actual[semantics],
                   f"seed {seed} {semantics}")


@pytest.mark.parametrize("freeze", _BACKENDS, ids=lambda f: "frozen" if f else "dict")
@pytest.mark.parametrize("seed", SEEDS)
def test_ablated_workload_bit_identical(golden: Dict[str, Any], seed: int,
                                        freeze: bool) -> None:
    expected = golden["seeds"][str(seed)]["ablation"]
    actual = run_ablation_workload(
        build_engine(seed, freeze=freeze, ablate=True)
    )
    for semantics in ("blinks", "rclique", "knk"):
        _diff_runs(expected[semantics], actual[semantics],
                   f"seed {seed} ablation/{semantics}")
