"""FrozenGraph unit tests + property-style equivalence vs LabeledGraph."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, VertexNotFoundError
from repro.graph import FrozenGraph, LabeledGraph, freeze
from repro.graph.pagerank import pagerank, pagerank_csr, pagerank_numpy, pagerank_pure
from repro.graph.traversal import (
    INF,
    bfs_hops,
    dijkstra,
    dijkstra_ordered,
    dijkstra_with_paths,
    multi_source_dijkstra,
    nearest_vertices_with_label,
    shortest_distance,
    shortest_path,
)
from repro.sketches.pads import build_pads
from tests.conftest import random_connected_graph


# ----------------------------------------------------------------------
# construction and the read API
# ----------------------------------------------------------------------
class TestFrozenGraphBasics:
    def test_counts_match_source(self, triangle_graph):
        fg = FrozenGraph(triangle_graph)
        assert fg.num_vertices == triangle_graph.num_vertices
        assert fg.num_edges == triangle_graph.num_edges
        assert len(fg) == len(triangle_graph)
        assert fg.size == triangle_graph.size

    def test_vertex_set_and_iteration_order(self, triangle_graph):
        fg = FrozenGraph(triangle_graph)
        assert list(fg.vertices()) == list(triangle_graph.vertices())
        assert list(iter(fg)) == list(iter(triangle_graph))
        for v in triangle_graph.vertices():
            assert v in fg
        assert "nope" not in fg

    def test_adjacency_round_trip(self, triangle_graph):
        fg = FrozenGraph(triangle_graph)
        for v in triangle_graph.vertices():
            assert sorted(fg.neighbors(v), key=repr) == sorted(
                triangle_graph.neighbors(v), key=repr
            )
            assert dict(fg.neighbor_items(v)) == dict(
                triangle_graph.neighbor_items(v)
            )
            assert fg.degree(v) == triangle_graph.degree(v)
        assert fg.weight("b", "c") == 2.0
        assert fg.has_edge("a", "c") and fg.has_edge("c", "a")
        assert not fg.has_edge("a", "missing")

    def test_edges_yield_each_edge_once(self, paper_public_graph):
        fg = FrozenGraph(paper_public_graph)
        frozen_edges = {frozenset((u, v)) for u, v, _ in fg.edges()}
        dict_edges = {
            frozenset((u, v)) for u, v, _ in paper_public_graph.edges()
        }
        assert frozen_edges == dict_edges
        assert len(list(fg.edges())) == fg.num_edges

    def test_labels(self, triangle_graph):
        fg = FrozenGraph(triangle_graph)
        assert fg.labels("c") == {"blue", "red"}
        assert fg.has_label("a", "red")
        assert not fg.has_label("b", "red")
        assert fg.vertices_with_label("red") == {"a", "c"}
        assert fg.vertices_with_label("unused") == frozenset()
        assert fg.label_universe() == triangle_graph.label_universe()
        assert fg.label_frequency("red") == 2
        assert fg.label_frequency("unused") == 0

    def test_missing_vertex_errors(self, triangle_graph):
        fg = FrozenGraph(triangle_graph)
        with pytest.raises(VertexNotFoundError):
            fg.intern("zz")
        with pytest.raises(VertexNotFoundError):
            list(fg.neighbors("zz"))
        with pytest.raises(VertexNotFoundError):
            fg.labels("zz")
        with pytest.raises(EdgeNotFoundError):
            fg.weight("a", "zz")

    def test_intern_and_vertex_table_are_inverse(self, paper_public_graph):
        fg = FrozenGraph(paper_public_graph)
        vx = fg.vertex_table
        for i, v in enumerate(vx):
            assert fg.intern(v) == i
        indptr, indices, weights = fg.csr()
        assert len(indptr) == fg.num_vertices + 1
        assert len(indices) == len(weights) == 2 * fg.num_edges

    def test_mutation_is_impossible(self, triangle_graph):
        fg = FrozenGraph(triangle_graph)
        with pytest.raises(AttributeError):
            fg.add_edge("a", "d")
        with pytest.raises(AttributeError):
            fg.add_vertex("d")
        with pytest.raises(AttributeError):
            fg.remove_edge("a", "b")

    def test_empty_graph(self):
        fg = FrozenGraph(LabeledGraph("empty"))
        assert fg.num_vertices == 0
        assert fg.num_edges == 0
        assert fg.stats()["avg_degree"] == 0.0
        assert pagerank(fg) == {}


class TestFreezeThawCopy:
    def test_freeze_is_noop_on_frozen(self, triangle_graph):
        fg = freeze(triangle_graph)
        assert freeze(fg) is fg

    def test_copy_shares_immutable_instance(self, triangle_graph):
        fg = FrozenGraph(triangle_graph)
        assert fg.copy() is fg
        renamed = fg.copy(name="other")
        assert renamed is not fg
        assert renamed.name == "other"
        assert renamed.num_edges == fg.num_edges

    def test_thaw_round_trip(self, paper_public_graph):
        fg = FrozenGraph(paper_public_graph)
        thawed = fg.thaw()
        assert isinstance(thawed, LabeledGraph)
        assert set(thawed.vertices()) == set(paper_public_graph.vertices())
        for v in paper_public_graph.vertices():
            assert thawed.labels(v) == paper_public_graph.labels(v)
        assert {frozenset((u, v)) for u, v, _ in thawed.edges()} == {
            frozenset((u, v)) for u, v, _ in paper_public_graph.edges()
        }
        # Thawed graphs are mutable and independent.
        thawed.add_edge("v0", "brand-new")
        assert "brand-new" not in fg

    def test_union_with_dict_graph(self, small_public_private):
        pub, priv = small_public_private
        fg = freeze(pub)
        combined = fg.union(priv, name="gc")
        reference = pub.union(priv, name="gc")
        assert combined.num_vertices == reference.num_vertices
        assert combined.num_edges == reference.num_edges

    def test_subgraph_goes_through_thaw(self, triangle_graph):
        fg = FrozenGraph(triangle_graph)
        sub = fg.subgraph(["a", "b"])
        assert isinstance(sub, LabeledGraph)
        assert set(sub.vertices()) == {"a", "b"}


class TestStats:
    def test_stats_all_floats_and_identical_shape(self, paper_public_graph):
        fg = FrozenGraph(paper_public_graph)
        fs = fg.stats()
        ds = paper_public_graph.stats()
        assert set(fs) == set(ds)
        for key, value in fs.items():
            assert isinstance(value, float), key
            assert isinstance(ds[key], float), key
            assert value == pytest.approx(ds[key])

    def test_nbytes_is_flat_array_payload(self, paper_public_graph):
        fg = FrozenGraph(paper_public_graph)
        n, m = fg.num_vertices, fg.num_edges
        assert fg.nbytes() == 8 * (n + 1) + 8 * (2 * m) + 8 * (2 * m)


# ----------------------------------------------------------------------
# property-style equivalence on random graphs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 17, 42])
def test_dijkstra_equivalence_random(seed):
    g = random_connected_graph(60, 25, seed)
    fg = freeze(g)
    for source in (0, 7, 31):
        assert dijkstra(fg, source) == dijkstra(g, source)
        assert dijkstra(fg, source, cutoff=4.0) == dijkstra(g, source, cutoff=4.0)
        dist_f, pred_f = dijkstra_with_paths(fg, source)
        dist_d, pred_d = dijkstra_with_paths(g, source)
        assert dist_f == dist_d
        # Predecessors reconstruct equally-long paths (ties may differ).
        for v, p in pred_f.items():
            if p is not None:
                assert dist_f[v] == pytest.approx(dist_f[p] + fg.weight(p, v))
        assert pred_f.keys() == pred_d.keys()


@pytest.mark.parametrize("seed", [5, 23])
def test_traversal_variants_equivalence_random(seed):
    g = random_connected_graph(50, 20, seed)
    fg = freeze(g)
    assert dict(dijkstra_ordered(fg, 0)) == dict(dijkstra_ordered(g, 0))
    assert multi_source_dijkstra(fg, [0, 9, 17]) == multi_source_dijkstra(
        g, [0, 9, 17]
    )
    assert bfs_hops(fg, 0) == bfs_hops(g, 0)
    assert bfs_hops(fg, 0, max_hops=3) == bfs_hops(g, 0, max_hops=3)
    for target in (1, 29, 44):
        assert shortest_distance(fg, 0, target) == pytest.approx(
            shortest_distance(g, 0, target)
        )
        path_f = shortest_path(fg, 0, target)
        path_d = shortest_path(g, 0, target)
        if path_d is None:
            assert path_f is None
        else:
            from repro.graph.labeled_graph import path_weight

            assert path_weight(g, path_f) == pytest.approx(
                path_weight(g, path_d)
            )
    assert nearest_vertices_with_label(fg, 0, "a", 3) == (
        nearest_vertices_with_label(g, 0, "a", 3)
    )


def test_unreachable_target_is_inf_on_both_backends():
    g = LabeledGraph()
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    fg = freeze(g)
    assert shortest_distance(g, 0, 3) == INF
    assert shortest_distance(fg, 0, 3) == INF
    assert shortest_path(fg, 0, 3) is None
    # Targets absent from the graph must not break early-stopping.
    assert dijkstra(fg, 0, targets=[99, 1]) == dijkstra(g, 0, targets=[99, 1])


@pytest.mark.parametrize("seed", [11, 29])
def test_label_api_equivalence_random(seed):
    g = random_connected_graph(80, 30, seed, labels=("a", "b", "c", "d"))
    fg = freeze(g)
    assert fg.label_universe() == g.label_universe()
    for label in ("a", "b", "c", "d", "missing"):
        assert fg.vertices_with_label(label) == g.vertices_with_label(label)
        assert fg.label_frequency(label) == g.label_frequency(label)
    for v in g.vertices():
        assert fg.labels(v) == g.labels(v)
        assert fg.degree(v) == g.degree(v)
    assert fg.stats() == pytest.approx(g.stats())


@pytest.mark.parametrize("seed", [7, 13])
def test_pagerank_backends_agree(seed):
    g = random_connected_graph(70, 30, seed)
    fg = freeze(g)
    pure = pagerank_pure(g)
    vect = pagerank_numpy(g)
    csr = pagerank_csr(fg)
    for v in g.vertices():
        assert csr[v] == pytest.approx(pure[v], abs=1e-9)
        assert csr[v] == pytest.approx(vect[v], abs=1e-12)
    # Auto-selection returns the same scores on either backend.
    assert pagerank(fg) == pagerank(g)


@pytest.mark.parametrize("seed", [19, 31])
def test_pads_identical_across_backends(seed):
    g = random_connected_graph(45, 18, seed)
    fg = freeze(g)
    ranks = pagerank_pure(g)
    pads_d = build_pads(g, k=2, ranks=ranks)
    pads_f = build_pads(fg, k=2, ranks=ranks)
    assert pads_f.entries == pads_d.entries
    assert pads_f.total_entries == pads_d.total_entries
