"""Tests for :mod:`repro.analysis` — the invariant linter.

Three layers:

* engine mechanics (suppressions, selection, file walking);
* one good/bad fixture pair per rule under ``tests/analysis_fixtures/``,
  run with ``force=True`` so scope predicates don't mask the rule;
* the meta-test: the analyzer runs over the real tree in-process and
  must report **zero** unsuppressed findings, so an invariant regression
  fails tier-1 locally, not just the CI ``analysis`` job.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    analyze_file,
    analyze_paths,
    analyze_source,
    render_json,
    render_text,
    rules_by_id,
)
from repro.analysis.__main__ import check_catalogue, main
from repro.analysis.engine import module_name_for, parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

RULE_IDS = (
    "RA001", "RA002", "RA003", "RA004", "RA005", "RA006", "RA007", "RA008",
    "RA009", "RA010", "RA011", "RA012",
)


def _run_rule(rule_id: str, fixture: str):
    rule = rules_by_id()[rule_id]
    findings, _ = analyze_file(str(FIXTURES / fixture), [rule], force=True)
    return findings


# ----------------------------------------------------------------------
# fixture pairs: every rule fires on its bad case, stays silent on good
# ----------------------------------------------------------------------
class TestFixturePairs:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_fires(self, rule_id):
        findings = _run_rule(rule_id, f"{rule_id.lower()}_bad.py")
        assert findings, f"{rule_id} did not fire on its bad fixture"
        assert all(f.rule == rule_id for f in findings)

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_silent(self, rule_id):
        findings = _run_rule(rule_id, f"{rule_id.lower()}_good.py")
        assert findings == [], f"{rule_id} misfired: {findings}"

    def test_ra001_counts_each_unlocked_write(self):
        findings = _run_rule("RA001", "ra001_bad.py")
        # item write, delete, .pop, attachment write, epoch bump
        assert len(findings) == 5

    def test_ra002_flags_raise_and_both_blind_handlers(self):
        findings = _run_rule("RA002", "ra002_bad.py")
        messages = [f.message for f in findings]
        assert any("RuntimeError" in m for m in messages)
        assert sum("blind" in m for m in messages) == 2

    def test_ra006_flags_the_import_form_too(self):
        findings = _run_rule("RA006", "ra006_bad_import.py")
        assert any("from time import time" in f.message for f in findings)

    def test_ra008_flags_each_hand_rolled_mechanism(self):
        findings = _run_rule("RA008", "ra008_bad.py")
        messages = " ".join(f.message for f in findings)
        assert "_Timer" in messages
        assert "breakdown.peval" in messages
        assert "setattr(breakdown" in messages
        assert "BudgetError" in messages
        assert "observe_pipeline" in messages
        assert "interrupted_step" in messages
        assert "completed_steps" in messages


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_suppression(self):
        src = "import time\n\nd = time.time()  # ra: ignore[RA006]\n"
        findings, suppressed = analyze_source(
            src, "src/repro/fake.py", [rules_by_id()["RA006"]], force=True
        )
        assert findings == []
        assert suppressed == 1

    def test_preceding_comment_suppression(self):
        src = (
            "import time\n\n"
            "# justification for the wall clock below\n"
            "# ra: ignore[RA006]\n"
            "d = time.time()\n"
        )
        findings, suppressed = analyze_source(
            src, "src/repro/fake.py", [rules_by_id()["RA006"]], force=True
        )
        assert findings == []
        assert suppressed == 1

    def test_unbracketed_ignore_suppresses_every_rule(self):
        src = "import time\n\nd = time.time()  # ra: ignore\n"
        findings, _ = analyze_source(
            src, "src/repro/fake.py", [rules_by_id()["RA006"]], force=True
        )
        assert findings == []

    def test_file_level_suppression(self):
        src = (
            "# ra: ignore-file[RA006]\n"
            "import time\n\n"
            "d = time.time()\ne = time.time()\n"
        )
        findings, suppressed = analyze_source(
            src, "src/repro/fake.py", [rules_by_id()["RA006"]], force=True
        )
        assert findings == []
        assert suppressed == 2

    def test_wrong_rule_id_does_not_suppress(self):
        src = "import time\n\nd = time.time()  # ra: ignore[RA001]\n"
        findings, _ = analyze_source(
            src, "src/repro/fake.py", [rules_by_id()["RA006"]], force=True
        )
        assert len(findings) == 1

    def test_marker_inside_string_is_not_a_suppression(self):
        src = (
            "import time\n\n"
            'note = "ra: ignore[RA006]"\n'
            "d = time.time()\n"
        )
        findings, _ = analyze_source(
            src, "src/repro/fake.py", [rules_by_id()["RA006"]], force=True
        )
        assert len(findings) == 1

    def test_directives_survive_parse(self):
        sup = parse_suppressions("# ra: ignore-file[RA003]\nx = 1\n")
        assert sup.is_suppressed("RA003", 2)
        assert not sup.is_suppressed("RA001", 2)


class TestEngine:
    def test_module_name_derivation(self):
        assert module_name_for("src/repro/core/budget.py") == "repro.core.budget"
        assert module_name_for("src/repro/graph/__init__.py") == "repro.graph"
        assert module_name_for("tests/test_obs.py") == "tests.test_obs"

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="RA999"):
            analyze_paths([str(FIXTURES / "ra001_bad.py")], select=["RA999"])

    def test_walk_skips_fixture_directory(self):
        result = analyze_paths([str(FIXTURES.parent)], select=["RA006"])
        bad = str(FIXTURES / "ra006_bad.py")
        assert all(f.path != bad for f in result.findings)

    def test_explicit_fixture_file_is_analyzed(self):
        result = analyze_paths([str(FIXTURES / "ra006_bad.py")], force=True)
        assert any(f.rule == "RA006" for f in result.findings)

    def test_reporters_render(self):
        result = analyze_paths([str(FIXTURES / "ra006_bad.py")], force=True)
        text = render_text(result)
        assert "RA006" in text and "finding(s)" in text
        as_json = render_json(result)
        assert '"version": 1' in as_json and '"RA006"' in as_json

    def test_every_rule_has_id_title_rationale(self):
        seen = set()
        for rule in ALL_RULES:
            assert rule.id.startswith("RA") and len(rule.id) == 5
            assert rule.id not in seen
            seen.add(rule.id)
            assert rule.title and rule.rationale


# ----------------------------------------------------------------------
# the meta-test: the real tree stays clean
# ----------------------------------------------------------------------
class TestTreeIsClean:
    def test_src_tests_benchmarks_have_zero_findings(self):
        result = analyze_paths(
            [
                str(REPO_ROOT / "src" / "repro"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        assert result.errors == []
        assert result.findings == [], render_text(result)
        assert result.files_checked > 100

    def test_metric_catalogue_in_sync(self):
        problems = check_catalogue(
            src_root=str(REPO_ROOT / "src" / "repro"),
            readme_path=str(REPO_ROOT / "README.md"),
        )
        assert problems == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
@pytest.fixture()
def bad_clock_module(tmp_path):
    """A wall-clock offender under a ``repro``-anchored path.

    The CLI does not force rules out of scope, so the offending file must
    live where :func:`module_name_for` maps it into ``repro.*``.
    """
    pkg = tmp_path / "repro"
    pkg.mkdir()
    target = pkg / "bad_clock.py"
    target.write_text(
        "import time\n\n\ndef now():\n    return time.time()\n",
        encoding="utf-8",
    )
    return target


class TestCli:
    def test_clean_path_exits_zero(self, capsys):
        rc = main([str(FIXTURES / "ra006_good.py")])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys, bad_clock_module):
        rc = main([str(bad_clock_module)])
        assert rc == 1
        assert "RA006" in capsys.readouterr().out

    def test_json_format(self, capsys, bad_clock_module):
        rc = main(["--format", "json", str(bad_clock_module)])
        assert rc == 1
        out = capsys.readouterr().out
        assert '"rule": "RA006"' in out

    def test_unknown_select_is_usage_error(self, capsys):
        rc = main(["--select", "RA999", "src"])
        assert rc == 2

    def test_no_paths_is_usage_error(self):
        assert main([]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out
