"""Tests for answer dataclasses and partial-answer bookkeeping."""

from __future__ import annotations


from repro.core import PartialAnswer
from repro.core.partial import KeywordIndicator, PairIndicator, PartialKnkAnswer
from repro.graph import INF
from repro.semantics import KnkAnswer, Match, RootedAnswer


class TestMatch:
    def test_resolved(self):
        assert Match("v", 1.0).is_resolved()
        assert not Match(None, 1.0).is_resolved()
        assert not Match("v", INF).is_resolved()

    def test_copy_independent(self):
        m = Match("v", 1.0)
        c = m.copy()
        c.distance = 9.0
        assert m.distance == 1.0


class TestRootedAnswer:
    def _answer(self):
        return RootedAnswer("r", {"a": Match("u", 1.0), "b": Match("w", 3.0)})

    def test_weight_and_max(self):
        a = self._answer()
        assert a.weight() == 4.0
        assert a.max_distance() == 3.0

    def test_empty_answer(self):
        a = RootedAnswer("r")
        assert a.weight() == 0.0
        assert a.max_distance() == 0.0

    def test_within_bound(self):
        a = self._answer()
        assert a.within_bound(3.0)
        assert not a.within_bound(2.9)

    def test_is_complete(self):
        a = self._answer()
        assert a.is_complete(iter(["a", "b"]))
        assert not a.is_complete(iter(["a", "zzz"]))
        a.matches["a"] = Match(None, INF)
        assert not a.is_complete(iter(["a"]))

    def test_vertices_includes_root_and_matches(self):
        a = self._answer()
        assert set(a.vertices()) == {"r", "u", "w"}

    def test_copy_deep(self):
        a = self._answer()
        c = a.copy()
        c.matches["a"].distance = 99.0
        assert a.matches["a"].distance == 1.0

    def test_sort_key_orders_by_weight(self):
        light = RootedAnswer("r1", {"a": Match("u", 1.0)})
        heavy = RootedAnswer("r2", {"a": Match("u", 5.0)})
        assert sorted([heavy, light], key=RootedAnswer.sort_key)[0] is light


class TestKnkAnswer:
    def test_accessors(self):
        a = KnkAnswer("s", "t", [Match("u", 1.0), Match("w", 2.0)])
        assert a.distances() == [1.0, 2.0]
        assert a.vertices() == ["u", "w"]
        assert a.kth_distance() == 2.0
        assert len(a) == 2

    def test_empty(self):
        a = KnkAnswer("s", "t")
        assert a.kth_distance() == INF
        assert a.vertices() == []


class TestPartialAnswer:
    def test_match_slots(self):
        p = PartialAnswer(answer=RootedAnswer("r"))
        assert p.match("a") is None
        p.set_match("a", "u", 2.0)
        assert p.match("a").vertex == "u"
        assert p.root == "r"

    def test_public_private_flag(self):
        p = PartialAnswer(answer=RootedAnswer("r"))
        assert not p.is_public_private()
        p.private_matched.add("a")
        assert not p.is_public_private()
        p.public_matched.add("b")
        assert p.is_public_private()

    def test_copy_deep(self):
        p = PartialAnswer(answer=RootedAnswer("r"))
        p.set_match("a", "u", 1.0)
        p.private_matched.add("a")
        p.pair_indicators.append(PairIndicator("r", "u", "a"))
        c = p.copy()
        c.set_match("a", "u", 9.0)
        c.private_matched.add("b")
        assert p.match("a").distance == 1.0
        assert p.private_matched == {"a"}
        assert c.pair_indicators == p.pair_indicators

    def test_indicators_hashable(self):
        assert PairIndicator(1, 2, "a") == PairIndicator(1, 2, "a")
        assert len({KeywordIndicator("r", "q"), KeywordIndicator("r", "q")}) == 1


class TestPartialKnkAnswer:
    def test_holds_portal_entries(self):
        p = PartialKnkAnswer(answer=KnkAnswer("s", "t"))
        p.portal_entries.append(("p", 1.0))
        assert p.portal_entries == [("p", 1.0)]
        assert p.pair_indicators == []
