"""Tests for the benchmark harness itself (timings, selection, rendering)."""

from __future__ import annotations

import pytest

from repro.bench import (
    DATASET_SCALES,
    QueryTiming,
    build_setup,
    dataset_names,
    render_breakdown,
    render_query_comparison,
    render_series,
    render_table,
    run_keyword_experiment,
    run_knk_experiment,
    select_representative,
    speedups,
    timings_payload,
    write_json_report,
    write_report,
)
from repro.core import StepBreakdown
from repro.datasets import generate_keyword_queries, generate_knk_queries


def _timing(label: str, pp: float, base: float) -> QueryTiming:
    return QueryTiming(label, pp, base, StepBreakdown(pp / 2, pp / 4, pp / 4), 3, 2)


class TestQueryTiming:
    def test_speedup(self):
        assert _timing("Q1", 0.5, 1.0).speedup == 2.0
        assert _timing("Q1", 0.0, 1.0).speedup == float("inf")

    def test_speedups_aggregate(self):
        stats = speedups([_timing("Q1", 1.0, 2.0), _timing("Q2", 1.0, 4.0)])
        assert stats["mean"] == pytest.approx(3.0)
        assert stats["min"] == 2.0
        assert stats["max"] == 4.0
        assert stats["total"] == pytest.approx(3.0)

    def test_speedups_empty(self):
        assert speedups([])["mean"] == 0.0


class TestSelectRepresentative:
    def test_small_sets_pass_through(self):
        ts = [_timing(f"Q{i}", 1.0, float(i)) for i in range(5)]
        assert select_representative(ts, 10) == ts

    def test_good_medium_bad_selection(self):
        ts = [_timing(f"orig{i}", 1.0, float(i + 1)) for i in range(20)]
        chosen = select_representative(ts, 10)
        assert len(chosen) == 10
        speed = [t.speedup for t in chosen]
        # first three are the best, last three the worst
        assert speed[0] >= speed[1] >= speed[2]
        assert speed[-1] <= speed[-2] <= speed[-3]
        assert max(speed[:3]) == 20.0
        assert min(speed[-3:]) == 1.0
        # relabelled Q1..Q10
        assert [t.label for t in chosen] == [f"Q{i}" for i in range(1, 11)]


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table("T", ["col", "x"], [["a", 1.5], ["bbbb", 100.0]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2]
        assert any("bbbb" in ln for ln in lines)

    def test_render_query_comparison_contains_stats(self):
        out = render_query_comparison("cmp", [_timing("Q1", 0.5, 1.0)])
        assert "Q1" in out
        assert "2.0x" in out
        assert "mean" in out

    def test_render_query_comparison_m1(self):
        t = _timing("Q1", 0.5, 1.0)
        t.m1_seconds = 0.7
        out = render_query_comparison("cmp", [t], include_m1=True)
        assert "M1(ms)" in out

    def test_render_breakdown_shares(self):
        out = render_breakdown("b", [_timing("Q1", 1.0, 2.0)])
        assert "PEval" in out
        assert "overall shares" in out

    def test_render_series(self):
        out = render_series("s", "k", [1, 2], [[1.0, 2.0], [3.0, 4.0]], ["A", "B"])
        assert "A" in out and "B" in out

    def test_write_report(self, tmp_path):
        path = write_report("unit", "hello\n", directory=str(tmp_path))
        assert open(path).read() == "hello\n"


class TestJsonReports:
    def test_timings_payload_shape(self):
        t = _timing("Q1", 0.5, 1.0)
        payload = timings_payload([t])
        [entry] = payload["queries"]
        assert entry["query"] == "Q1"
        assert entry["pp_ms"] == pytest.approx(500.0)
        assert entry["baseline_ms"] == pytest.approx(1000.0)
        assert entry["speedup"] == pytest.approx(2.0)
        assert entry["pp_answers"] == 3 and entry["baseline_answers"] == 2
        assert entry["breakdown_ms"] == {
            "peval": pytest.approx(250.0),
            "arefine": pytest.approx(125.0),
            "acomplete": pytest.approx(125.0),
        }
        assert "m1_ms" not in entry
        assert payload["speedups"]["mean"] == pytest.approx(2.0)

    def test_timings_payload_includes_m1_when_measured(self):
        t = _timing("Q1", 0.5, 1.0)
        t.m1_seconds = 0.7
        [entry] = timings_payload([t])["queries"]
        assert entry["m1_ms"] == pytest.approx(700.0)

    def test_write_json_report_round_trips(self, tmp_path):
        import json

        payload = timings_payload([_timing("Q1", 0.5, 1.0)])
        path = write_json_report("fig6_unit", payload, directory=str(tmp_path))
        assert path.endswith("fig6_unit.json")
        loaded = json.load(open(path))
        assert loaded["queries"][0]["query"] == "Q1"

    def test_write_json_report_nulls_infinite_speedups(self, tmp_path):
        import json

        payload = timings_payload([_timing("Q1", 0.0, 1.0)])
        path = write_json_report("fig6_inf", payload, directory=str(tmp_path))
        text = open(path).read()
        assert "Infinity" not in text
        loaded = json.loads(text)
        assert loaded["queries"][0]["speedup"] is None
        assert loaded["speedups"]["total"] is None


class TestExperimentRegistry:
    def test_dataset_names(self):
        assert dataset_names() == ["yago", "dbpedia", "ppdblp"]
        for scale in DATASET_SCALES:
            assert set(DATASET_SCALES[scale]) == set(dataset_names())

    def test_build_setup_small(self):
        setup = build_setup("yago", scale="small")
        assert setup.name == "yago"
        assert setup.engine.owners() == [setup.owner]
        assert setup.combined.num_vertices >= setup.dataset.public.num_vertices
        assert setup.private.num_vertices < setup.dataset.public.num_vertices


class TestHarnessLoops:
    @pytest.fixture(scope="class")
    def setup(self):
        return build_setup("ppdblp", scale="small")

    def test_run_keyword_experiment(self, setup):
        queries = generate_keyword_queries(
            setup.dataset.public, setup.private, num_queries=2, tau=4.0, seed=9
        )
        timings = run_keyword_experiment(
            setup.engine, setup.owner, "blinks", queries, setup.combined, k=5
        )
        assert len(timings) == 2
        for t in timings:
            assert t.pp_seconds > 0
            assert t.baseline_seconds > 0
            assert t.m1_seconds is None

    def test_run_keyword_experiment_with_m1(self, setup):
        queries = generate_keyword_queries(
            setup.dataset.public, setup.private, num_queries=1, tau=4.0, seed=10
        )
        timings = run_keyword_experiment(
            setup.engine, setup.owner, "rclique", queries, setup.combined,
            k=5, include_m1=True,
        )
        assert timings[0].m1_seconds is not None

    def test_run_keyword_experiment_bad_semantic(self, setup):
        queries = generate_keyword_queries(
            setup.dataset.public, setup.private, num_queries=1, seed=11
        )
        with pytest.raises(ValueError):
            run_keyword_experiment(
                setup.engine, setup.owner, "nope", queries, setup.combined
            )

    def test_run_knk_experiment(self, setup):
        queries = generate_knk_queries(
            setup.dataset.public, setup.private, num_queries=2, k=8, seed=12
        )
        timings = run_knk_experiment(
            setup.engine, setup.owner, queries, setup.combined
        )
        assert len(timings) == 2
        for t in timings:
            assert t.pp_answers <= 8
