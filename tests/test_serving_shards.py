"""Tests for process-based shard serving (repro.serving.shards).

The process-pool tests spawn real shard workers; they share one
module-scoped pooled service to keep spawn cost bounded.  Response
comparisons strip ``breakdown`` — per-step wall times are the one
legitimately nondeterministic response field.
"""

from __future__ import annotations

import random

import pytest

from repro import faults
from repro.core.engine import register_shard_task
from repro.exceptions import ReproError
from repro.faults import FaultSchedule, FaultSpec
from repro.faults.points import SHARD_WORKER
from repro.graph.frozen import FrozenGraph, freeze
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.registry import MetricsRegistry
from repro.serving import LocalShardPlan, ShardServingPool
from repro.serving.shards import ShardPartition
from repro.service import PPKWSService


def strip(response):
    """A response minus its nondeterministic per-step timings."""
    return {k: v for k, v in response.items() if k != "breakdown"}


def build_graphs(seed: int = 7, n: int = 60, edges: int = 150):
    """The deterministic public/private pair the shard tests share."""
    rng = random.Random(seed)
    pub = LabeledGraph()
    for i in range(n):
        labels = ["DB"] if i % 7 == 0 else (["AI"] if i % 5 == 0 else [])
        pub.add_vertex(f"p{i}", labels)
    for _ in range(edges):
        u, v = rng.sample(range(n), 2)
        pub.add_edge(f"p{u}", f"p{v}", rng.uniform(0.5, 3.0))
    priv = LabeledGraph()
    priv.add_vertex("u0", ["DB"])
    priv.add_edge("u0", "u1", 1.0)
    priv.add_edge("u1", "p3", 1.0)
    return pub, priv


KNK = {
    "op": "knk", "network": "net", "owner": "bob",
    "source": "u0", "keyword": "DB", "k": 5,
}
BLINKS = {
    "op": "blinks", "network": "net", "owner": "bob",
    "keywords": ["DB", "AI"], "tau": 14.0, "k": 4,
}
BANKS = {
    "op": "banks", "network": "net", "owner": "bob",
    "keywords": ["DB", "AI"], "tau": 14.0, "k": 3,
}


def make_service(**kwargs):
    pub, priv = build_graphs()
    svc = PPKWSService(answer_cache_size=0, **kwargs)
    svc.create_network("net", pub)
    svc.attach_user("net", "bob", priv)
    return svc


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
class TestShardPartition:
    def test_sizes_cover_every_vertex(self):
        pub, _ = build_graphs()
        part = ShardPartition(pub, 3)
        assert part.num_shards == 3
        assert sum(part.sizes()) == pub.num_vertices
        assert all(s >= 0 for s in part.sizes())

    def test_shard_of_matches_contiguous_ranges(self):
        pub, _ = build_graphs()
        frozen = freeze(pub)
        part = ShardPartition(frozen, 4)
        seen = [part.shard_of(v) for v in frozen.vertex_table]
        # contiguous interned-id ranges: shard ids are non-decreasing
        assert seen == sorted(seen)
        assert set(seen) <= set(range(4))

    def test_private_only_vertex_lands_on_shard_zero(self):
        pub, _ = build_graphs()
        part = ShardPartition(pub, 2)
        assert part.shard_of("not-a-public-vertex") == 0

    def test_single_shard_has_empty_frontier(self):
        pub, _ = build_graphs()
        part = ShardPartition(pub, 1)
        assert part.frontier == 0
        assert part.sizes() == [pub.num_vertices]

    def test_frontier_bounded_by_edge_count(self):
        pub, _ = build_graphs()
        part = ShardPartition(pub, 3)
        assert 0 < part.frontier <= pub.num_edges

    def test_more_shards_than_vertices_pads_empty(self):
        g = LabeledGraph()
        g.add_vertex("a", ["x"])
        g.add_vertex("b", [])
        g.add_edge("a", "b", 1.0)
        part = ShardPartition(g, 5)
        assert sum(part.sizes()) == 2
        assert len(part.sizes()) == 5

    def test_zero_shards_rejected(self):
        pub, _ = build_graphs()
        with pytest.raises(ValueError):
            ShardPartition(pub, 0)


# ----------------------------------------------------------------------
# shared-memory export / attach round trip (in-process)
# ----------------------------------------------------------------------
class TestSharedExportRoundTrip:
    def test_attached_replica_is_equivalent(self):
        pub, _ = build_graphs()
        frozen = freeze(pub)
        handle, segments = frozen.export_shared()
        try:
            replica = FrozenGraph.from_shared(handle)
            try:
                assert replica.num_vertices == frozen.num_vertices
                assert replica.num_edges == frozen.num_edges
                assert list(replica.vertex_table) == list(frozen.vertex_table)
                for v in list(frozen.vertex_table)[:10]:
                    assert sorted(map(repr, replica.neighbors(v))) == sorted(
                        map(repr, frozen.neighbors(v))
                    )
                    assert replica.labels(v) == frozen.labels(v)
            finally:
                replica.release_shared()
        finally:
            for seg in segments:
                seg.close()
                seg.unlink()


# ----------------------------------------------------------------------
# the in-process plan
# ----------------------------------------------------------------------
def _probe_handler(host, network, owner, payload, bound):
    """Shard-task handler used by the LocalShardPlan unit tests."""
    return {"value": payload["value"], "bound_seen": bound()}


register_shard_task("test_probe", _probe_handler)


class TestLocalShardPlan:
    def _engine(self):
        svc = make_service()
        return svc._engine("net")

    def test_scatter_runs_tasks_in_shard_order(self):
        plan = LocalShardPlan(self._engine(), shards=2, owner="bob")
        seen = []

        def on_result(result):
            seen.append(result["value"])
            return float("inf")

        tasks = [(1, {"value": "b"}, 0.0), (0, {"value": "a"}, 0.0)]
        plan.scatter("test_probe", tasks, float("inf"), on_result)
        assert seen == ["a", "b"]
        assert plan.tasks_run == 2
        assert plan.tasks_cancelled == 0

    def test_scatter_cancels_tasks_above_the_bound(self):
        plan = LocalShardPlan(self._engine(), shards=2, owner="bob")
        ran = []

        def on_result(result):
            ran.append(result["value"])
            return 5.0  # tighten the bound after the first merge

        tasks = [
            (0, {"value": "cheap"}, 0.0),
            (1, {"value": "pruned"}, 10.0),  # floor above tightened bound
        ]
        plan.scatter("test_probe", tasks, 100.0, on_result)
        assert ran == ["cheap"]
        assert plan.tasks_cancelled == 1

    def test_handlers_observe_the_initial_bound(self):
        plan = LocalShardPlan(self._engine(), shards=1, owner="bob")
        out = []
        plan.scatter(
            "test_probe",
            [(0, {"value": 1}, 0.0)],
            42.0,
            lambda r: out.append(r["bound_seen"]) or float("inf"),
        )
        assert out == [42.0]

    def test_unknown_kind_raises(self):
        plan = LocalShardPlan(self._engine(), shards=1, owner="bob")
        with pytest.raises(ReproError):
            plan.scatter(
                "no_such_kind", [(0, {}, 0.0)], float("inf"), lambda r: 0.0
            )


# ----------------------------------------------------------------------
# serial vs fanout equivalence without any pool (dict/local path)
# ----------------------------------------------------------------------
class TestLocalFanoutEquivalence:
    @pytest.mark.parametrize("request_base", [KNK, BLINKS, BANKS])
    def test_fanout_matches_serial(self, request_base):
        svc = make_service()
        serial = strip(svc.execute(dict(request_base)))
        assert serial["status"] == "ok"
        fanned = strip(svc.execute(dict(request_base, fanout=True)))
        assert fanned == serial


# ----------------------------------------------------------------------
# the process pool
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pooled():
    """One shared pooled service (spawning workers is expensive)."""
    registry = MetricsRegistry()
    svc = make_service(registry=registry)
    svc.enable_sharding(2)
    yield svc, registry
    svc.disable_sharding()


class TestShardServingPool:
    def test_enable_twice_rejected(self, pooled):
        svc, _ = pooled
        with pytest.raises(ReproError):
            svc.enable_sharding(2)

    def test_routed_request_matches_serial(self, pooled):
        svc, _ = pooled
        baseline = make_service()
        for base in (KNK, BLINKS, BANKS):
            serial = strip(baseline.execute(dict(base)))
            routed = strip(svc.execute(dict(base)))
            assert routed == serial

    def test_pool_fanout_matches_serial(self, pooled):
        svc, _ = pooled
        baseline = make_service()
        for base in (KNK, BLINKS, BANKS):
            serial = strip(baseline.execute(dict(base)))
            fanned = strip(svc.execute(dict(base, fanout=True)))
            assert fanned == serial

    def test_shard_metrics_recorded(self, pooled):
        svc, registry = pooled
        svc.execute(dict(KNK))  # routed
        svc.execute(dict(KNK, fanout=True))  # scattered
        assert registry.value(
            "ppkws_shard_requests_total", labels={"kind": "execute"}
        ) >= 1
        series = registry.snapshot()["counters"]["ppkws_shard_requests_total"]
        assert "kind=execute" in series
        assert any(k != "kind=execute" for k in series)  # a scatter kind
        assert registry.histogram("ppkws_shard_merge_seconds") is not None

    def test_health_reports_partitions(self, pooled):
        svc, _ = pooled
        resp = svc.execute({"op": "health"})
        shards = resp["shards"]
        assert shards["mode"] == "process"
        assert shards["shards"] == 2
        assert shards["alive"] == 2
        assert shards["shutdown"] is False
        net = shards["networks"]["net"]
        assert sum(net["shard_sizes"]) == 60
        assert net["frontier_edges"] > 0

    def test_admin_churn_replicates(self, pooled):
        svc, _ = pooled
        _, priv = build_graphs()
        svc.attach_user("net", "eve", priv)
        try:
            resp = svc.execute(dict(KNK, owner="eve"))
            assert resp["status"] == "ok"
        finally:
            svc.detach_user("net", "eve")
        resp = svc.execute(dict(KNK, owner="eve"))
        assert resp["code"] == "unknown_owner"

    def test_create_and_drop_replicate(self, pooled):
        svc, _ = pooled
        pub2, priv2 = build_graphs(seed=11, n=20, edges=40)
        svc.create_network("net2", pub2)
        svc.attach_user("net2", "bob", priv2)
        try:
            req = dict(KNK, network="net2")
            assert svc.execute(req)["status"] == "ok"
            health = svc.execute({"op": "health"})["shards"]
            assert "net2" in health["networks"]
        finally:
            svc.drop_network("net2")
        health = svc.execute({"op": "health"})["shards"]
        assert "net2" not in health["networks"]
        assert svc.execute(dict(KNK, network="net2"))["code"] == (
            "unknown_network"
        )

    def test_no_cache_requests_still_route(self, pooled):
        svc, _ = pooled
        resp = svc.execute(dict(KNK, no_cache=True))
        assert resp["status"] == "ok"


# ----------------------------------------------------------------------
# chaos: kill a shard process mid-query
# ----------------------------------------------------------------------
class TestShardChaos:
    def test_killed_worker_yields_internal_error_and_selfheals(self):
        svc = make_service()
        pool = svc.enable_sharding(2)
        try:
            assert svc.execute(dict(KNK))["status"] == "ok"
            pool.inject_faults(FaultSchedule(
                [FaultSpec(SHARD_WORKER, "kill")], seed=3
            ))
            # Each worker dies on its next received task; drive requests
            # until both kills have fired.
            saw_internal = 0
            for _ in range(6):
                resp = svc.execute(dict(KNK))
                if resp["status"] == "error":
                    assert resp["code"] == "internal"
                    assert resp["retryable"] is True
                    assert "error" in resp
                    saw_internal += 1
            assert saw_internal >= 1
            pool.inject_faults(None)
            # Self-healed: workers respawned, queries flow again.
            health = svc.execute({"op": "health"})["shards"]
            assert health["alive"] == 2
            assert health["respawns"] >= 1
            baseline = make_service()
            assert strip(svc.execute(dict(KNK))) == strip(
                baseline.execute(dict(KNK))
            )
            assert strip(svc.execute(dict(KNK, fanout=True))) == strip(
                baseline.execute(dict(KNK))
            )
        finally:
            svc.disable_sharding()

    def test_injected_raise_is_a_wellformed_error(self):
        svc = make_service()
        pool = svc.enable_sharding(1)
        try:
            pool.inject_faults(FaultSchedule(
                [FaultSpec(SHARD_WORKER, "raise")], seed=3
            ))
            resp = svc.execute(dict(KNK))
            assert resp["status"] == "error"
            assert resp["code"] == "internal"
            pool.inject_faults(None)
            assert svc.execute(dict(KNK))["status"] == "ok"
        finally:
            svc.disable_sharding()


# ----------------------------------------------------------------------
# executor integration: mode="process"
# ----------------------------------------------------------------------
class TestProcessModeExecutor:
    def test_process_mode_owns_and_releases_the_pool(self):
        from repro.serving import ServiceExecutor

        svc = make_service()
        with ServiceExecutor(svc, workers=2, mode="process") as pool:
            assert pool.health()["mode"] == "process"
            assert svc.shard_pool is not None
            responses = pool.execute_many([dict(KNK) for _ in range(4)])
            assert all(r["status"] == "ok" for r in responses)
        assert svc.shard_pool is None

    def test_bad_mode_rejected(self):
        from repro.serving import ServiceExecutor

        with pytest.raises(ValueError):
            ServiceExecutor(make_service(), workers=1, mode="fiber")


# ----------------------------------------------------------------------
# regression: enable_sharding must not spawn workers under _shard_lock
# ----------------------------------------------------------------------
class _RecordingPool:
    """Stands in for ShardServingPool; records lock state at construction."""

    calls: list = []
    service = None

    def __init__(self, shards, registry=None):
        svc = type(self).service
        acquired = svc._shard_lock.acquire(blocking=False)
        if acquired:
            svc._shard_lock.release()
        type(self).calls.append(acquired)

    def replicated(self, name):
        return True

    def admin_create(self, *args, **kwargs):
        pass

    def admin_attach(self, *args, **kwargs):
        pass

    def shutdown(self):
        pass


class TestEnableShardingLockDiscipline:
    """RA010 regression: pool construction spawns worker processes and
    waits for their handshakes (up to 60s); doing that while holding
    ``_shard_lock`` convoyed every concurrent enable/disable/health
    probe behind process startup.  The fix reserves under the lock and
    constructs outside it."""

    def test_pool_constructed_outside_shard_lock(self, monkeypatch):
        svc = PPKWSService(answer_cache_size=0)
        _RecordingPool.calls = []
        _RecordingPool.service = svc
        monkeypatch.setattr("repro.service.ShardServingPool", _RecordingPool)
        pool = svc.enable_sharding(1)
        assert isinstance(pool, _RecordingPool)
        assert _RecordingPool.calls == [True], (
            "ShardServingPool was constructed while _shard_lock was held"
        )
        with pytest.raises(ReproError):
            svc.enable_sharding(1)
        svc.disable_sharding()
        assert svc.shard_pool is None

    def test_reservation_rejects_concurrent_enable(self, monkeypatch):
        import threading

        svc = PPKWSService(answer_cache_size=0)
        started = threading.Event()
        release = threading.Event()

        class SlowPool(_RecordingPool):
            def __init__(self, shards, registry=None):
                started.set()
                assert release.wait(5)

        monkeypatch.setattr("repro.service.ShardServingPool", SlowPool)
        worker = threading.Thread(target=svc.enable_sharding, args=(1,))
        worker.start()
        try:
            assert started.wait(5)
            # Mid-construction: the reservation must make a second
            # enable fail fast instead of double-spawning a pool.
            with pytest.raises(ReproError):
                svc.enable_sharding(1)
        finally:
            release.set()
            worker.join(5)
        assert svc.shard_pool is not None
        svc.disable_sharding()

    def test_failed_construction_clears_reservation(self, monkeypatch):
        svc = PPKWSService(answer_cache_size=0)

        class BoomPool(_RecordingPool):
            def __init__(self, shards, registry=None):
                raise RuntimeError("spawn failed")

        monkeypatch.setattr("repro.service.ShardServingPool", BoomPool)
        with pytest.raises(RuntimeError):
            svc.enable_sharding(1)
        # The reservation must not leak: a retry proceeds normally.
        _RecordingPool.calls = []
        _RecordingPool.service = svc
        monkeypatch.setattr("repro.service.ShardServingPool", _RecordingPool)
        assert isinstance(svc.enable_sharding(1), _RecordingPool)
        svc.disable_sharding()
