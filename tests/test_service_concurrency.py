"""Threaded stress tests for the service registry and attachment maps.

Regression suite for the concurrency half of the facade's contract: the
service advertises ``max_in_flight`` *concurrent* requests, so its
registry (``create_network`` / ``drop``) and the per-engine attachment
maps (``attach`` / ``detach``) must behave under parallel admin + query
traffic.  Pre-fix failure modes pinned here:

* two concurrent creates of the same name both passed the unlocked
  ``name in self._engines`` check and both reported ``"ok"``;
* two concurrent attaches of the same owner likewise;
* ``owners()`` / ``stats`` iterating the attachment dict while another
  thread attached/detached raised ``RuntimeError: dictionary changed
  size during iteration``, which escaped ``execute``.

CI runs this file under ``pytest-timeout`` so a registry deadlock fails
fast instead of hanging the job (the ``timeout`` marker is a no-op when
the plugin is absent).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List

import pytest

import repro.core.framework as framework_mod
import repro.service as service_mod
from repro.service import PPKWSService


@pytest.fixture
def slow_index_build(monkeypatch):
    """Widen the create_network check-then-act window deterministically.

    The registry race only manifests when the (normally multi-ms) index
    build overlaps across threads; the test graphs build faster than one
    GIL slice, so sleep inside the build path the bug flows through.
    """
    real_freeze = service_mod.freeze

    def slow_freeze(graph):
        time.sleep(0.05)
        return real_freeze(graph)

    monkeypatch.setattr(service_mod, "freeze", slow_freeze)


@pytest.fixture
def slow_attach(monkeypatch):
    """Widen the attach check-then-act window (portal discovery leg)."""
    real_portals = framework_mod.portal_nodes

    def slow_portals(public, private):
        time.sleep(0.05)
        return real_portals(public, private)

    monkeypatch.setattr(framework_mod, "portal_nodes", slow_portals)

# One small wire-format graph, cheap enough to index dozens of times.
PUBLIC_EDGES = [[0, 1], [1, 2], [2, 3], [3, 0], [1, 3]]
PUBLIC_LABELS = {0: ["db"], 2: ["ai"]}
PRIVATE_EDGES = [[2, "p1"], ["p1", "p2"]]
PRIVATE_LABELS = {"p2": ["ml"]}


def _run_threads(n: int, fn) -> List[Any]:
    """Run ``fn(i)`` on ``n`` threads after a common barrier; re-raise."""
    barrier = threading.Barrier(n)
    results: List[Any] = [None] * n
    errors: List[BaseException] = []

    def runner(i: int) -> None:
        try:
            barrier.wait()
            results[i] = fn(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


@pytest.mark.timeout(120)
class TestRegistryRaces:
    def test_concurrent_create_same_name_has_one_winner(self, slow_index_build):
        svc = PPKWSService(sketch_k=2)

        def create(_: int) -> Dict[str, Any]:
            return svc.execute({
                "op": "create_network", "network": "dup",
                "public_edges": PUBLIC_EDGES, "public_labels": PUBLIC_LABELS,
            })

        responses = _run_threads(8, create)
        statuses = [r["status"] for r in responses]
        assert statuses.count("ok") == 1, responses
        for r in responses:
            if r["status"] == "error":
                assert "dup" in r["error"]
        assert svc.networks() == ["dup"]
        # the surviving engine is fully usable
        assert svc.execute({"op": "stats", "network": "dup"})["status"] == "ok"

    def test_concurrent_create_distinct_names_all_win(self):
        svc = PPKWSService(sketch_k=2)

        def create(i: int) -> Dict[str, Any]:
            return svc.execute({
                "op": "create_network", "network": f"n{i}",
                "public_edges": PUBLIC_EDGES,
            })

        responses = _run_threads(6, create)
        assert all(r["status"] == "ok" for r in responses)
        assert svc.networks() == sorted(f"n{i}" for i in range(6))

    def test_concurrent_attach_same_owner_has_one_winner(self, slow_attach):
        svc = PPKWSService(sketch_k=2)
        svc.execute({
            "op": "create_network", "network": "n",
            "public_edges": PUBLIC_EDGES, "public_labels": PUBLIC_LABELS,
        })

        def attach(_: int) -> Dict[str, Any]:
            return svc.execute({
                "op": "attach", "network": "n", "owner": "bob",
                "private_edges": PRIVATE_EDGES,
                "private_labels": PRIVATE_LABELS,
            })

        responses = _run_threads(8, attach)
        statuses = [r["status"] for r in responses]
        assert statuses.count("ok") == 1, responses
        stats = svc.execute({"op": "stats", "network": "n"})
        assert stats["owners"] == ["bob"]


@pytest.mark.timeout(120)
class TestAdminChurnUnderQueries:
    def test_queries_survive_attach_detach_churn(self):
        """Queries + stats keep working while owners attach/detach.

        Every response must be a well-formed status dict; nothing may
        escape ``execute`` (pre-fix: ``RuntimeError`` from dict iteration
        during mutation, which is outside the caught exception set).
        """
        svc = PPKWSService(sketch_k=2)
        svc.execute({
            "op": "create_network", "network": "n",
            "public_edges": PUBLIC_EDGES, "public_labels": PUBLIC_LABELS,
        })
        svc.execute({
            "op": "attach", "network": "n", "owner": "stable",
            "private_edges": PRIVATE_EDGES, "private_labels": PRIVATE_LABELS,
        })
        rounds = 60
        churners = 3
        queriers = 3

        def churn(i: int) -> List[Dict[str, Any]]:
            out = []
            owner = f"churn{i}"
            for _ in range(rounds):
                out.append(svc.execute({
                    "op": "attach", "network": "n", "owner": owner,
                    "private_edges": PRIVATE_EDGES,
                    "private_labels": PRIVATE_LABELS,
                }))
                out.append(svc.execute(
                    {"op": "detach", "network": "n", "owner": owner}
                ))
            return out

        def query(i: int) -> List[Dict[str, Any]]:
            out = []
            for r in range(rounds):
                if r % 2 == 0:
                    out.append(svc.execute({"op": "stats", "network": "n"}))
                else:
                    out.append(svc.execute({
                        "op": "knk", "network": "n", "owner": "stable",
                        "source": "p2", "keyword": "db", "k": 2,
                    }))
            return out

        def work(i: int) -> List[Dict[str, Any]]:
            return churn(i) if i < churners else query(i)

        all_responses = _run_threads(churners + queriers, work)
        for batch in all_responses:
            for resp in batch:
                assert resp["status"] in ("ok", "degraded", "error"), resp
        # the stable owner's queries never fail: their attachment is
        # untouched by the churn
        for batch in all_responses[churners:]:
            for resp in batch:
                assert resp["status"] == "ok", resp

    def test_engine_owners_iteration_is_safe(self, small_public_private):
        """Direct engine-level churn: owners() during attach/detach."""
        from repro import PPKWS

        pub, priv = small_public_private
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("stable", priv)
        stop = threading.Event()
        errors: List[BaseException] = []

        def churn() -> None:
            import copy
            i = 0
            while not stop.is_set():
                owner = f"u{i % 4}"
                try:
                    engine.attach(owner, copy.deepcopy(priv))
                    engine.detach(owner)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                i += 1

        def listing() -> None:
            for _ in range(2000):
                try:
                    owners = engine.owners()
                    assert "stable" in owners
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        churn_t = threading.Thread(target=churn)
        list_t = threading.Thread(target=listing)
        churn_t.start()
        list_t.start()
        list_t.join()
        stop.set()
        churn_t.join()
        assert not errors, errors[0]
