"""Tests for PageRank (both backends)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph import LabeledGraph, pagerank, pagerank_numpy, pagerank_pure
from tests.conftest import random_connected_graph


class TestPagerankBasics:
    def test_empty_graph(self):
        assert pagerank(LabeledGraph()) == {}

    def test_single_vertex(self):
        g = LabeledGraph()
        g.add_vertex(1)
        assert pagerank(g) == {1: pytest.approx(1.0)}

    def test_scores_sum_to_one(self, triangle_graph):
        scores = pagerank(triangle_graph)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_graph_uniform_scores(self):
        # A 4-cycle is vertex-transitive: all scores equal.
        g = LabeledGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        scores = pagerank(g)
        values = list(scores.values())
        assert max(values) - min(values) < 1e-6

    def test_hub_scores_highest(self):
        # Star graph: center must dominate.
        g = LabeledGraph.from_edges([(0, i) for i in range(1, 8)])
        scores = pagerank(g)
        assert scores[0] == max(scores.values())

    def test_invalid_alpha(self, triangle_graph):
        with pytest.raises(GraphError):
            pagerank(triangle_graph, alpha=0.0)
        with pytest.raises(GraphError):
            pagerank(triangle_graph, alpha=1.0)

    def test_unknown_backend(self, triangle_graph):
        with pytest.raises(GraphError):
            pagerank(triangle_graph, backend="magic")

    def test_dangling_vertices_handled(self):
        g = LabeledGraph.from_edges([(0, 1)])
        g.add_vertex(2)  # isolated: dangling mass redistributes
        for backend in ("pure", "numpy"):
            scores = pagerank(g, backend=backend)
            assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)
            assert scores[2] > 0


class TestBackendAgreement:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_pure_and_numpy_agree(self, seed):
        g = random_connected_graph(30, 12, seed)
        pure = pagerank_pure(g, max_iter=200, tol=1e-12)
        vec = pagerank_numpy(g, max_iter=200, tol=1e-12)
        for v in g.vertices():
            assert pure[v] == pytest.approx(vec[v], abs=1e-6)

    def test_auto_backend_selects(self, triangle_graph):
        # Small graph goes pure; both produce a full score map.
        scores = pagerank(triangle_graph)
        assert set(scores) == {"a", "b", "c"}
