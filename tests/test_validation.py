"""Tests for the answer-validation helpers."""

from __future__ import annotations

import pytest

from repro import validate_knk_answer, validate_rooted_answer
from repro.core import PPKWS
from repro.graph import combine
from repro.semantics import KnkAnswer, Match, RootedAnswer


@pytest.fixture
def world(small_public_private):
    pub, priv = small_public_private
    return pub, priv, combine(pub, priv)


class TestRootedValidation:
    def test_valid_answer_passes(self, world):
        pub, priv, gc = world
        answer = RootedAnswer(2, {"db": Match("x1", 1.0), "ai": Match(3, 1.0)})
        report = validate_rooted_answer(gc, answer, tau=2.0)
        assert report.valid, report.problems

    def test_wrong_keyword_detected(self, world):
        _, _, gc = world
        answer = RootedAnswer(2, {"db": Match("x2", 1.0)})  # x2 carries ai
        report = validate_rooted_answer(gc, answer, tau=5.0)
        assert not report.valid
        assert any("does not carry" in p for p in report.problems)

    def test_unachievable_distance_detected(self, world):
        _, _, gc = world
        answer = RootedAnswer(2, {"db": Match("x1", 0.1)})  # true = 1.0
        report = validate_rooted_answer(gc, answer, tau=5.0)
        assert not report.valid
        assert any("unachievable" in p for p in report.problems)

    def test_tau_violation_detected(self, world):
        _, _, gc = world
        answer = RootedAnswer(2, {"db": Match("x1", 1.0)})
        report = validate_rooted_answer(gc, answer, tau=0.5)
        assert not report.valid

    def test_unknown_root(self, world):
        _, _, gc = world
        report = validate_rooted_answer(gc, RootedAnswer("ghost", {}), tau=1.0)
        assert not report.valid

    def test_unresolved_match(self, world):
        _, _, gc = world
        answer = RootedAnswer(2, {"db": Match(None, 1.0)})
        assert not validate_rooted_answer(gc, answer, tau=5.0).valid

    def test_public_private_qualification(self, world):
        pub, priv, gc = world
        private_only = RootedAnswer("x1", {"db": Match("x1", 0.0),
                                           "ai": Match("x2", 1.0)})
        report = validate_rooted_answer(
            gc, private_only, tau=5.0, public=pub, private=priv
        )
        assert not report.valid
        mixed = RootedAnswer(2, {"db": Match("x1", 1.0), "ai": Match(3, 1.0)})
        assert validate_rooted_answer(
            gc, mixed, tau=5.0, public=pub, private=priv
        ).valid

    def test_engine_output_validates(self, world):
        pub, priv, gc = world
        engine = PPKWS(pub, sketch_k=8)
        engine.attach("bob", priv)
        result = engine.blinks("bob", ["db", "ai"], tau=4.0)
        for ans in result.answers:
            report = validate_rooted_answer(
                gc, ans, tau=4.0, public=pub, private=priv
            )
            assert report.valid, report.problems


class TestKnkValidation:
    def test_valid_answer(self, world):
        _, _, gc = world
        ans = KnkAnswer("x1", "db", [Match("x1", 0.0), Match(0, 3.0)])
        assert validate_knk_answer(gc, ans).valid

    def test_unsorted_detected(self, world):
        _, _, gc = world
        ans = KnkAnswer("x1", "db", [Match(0, 3.0), Match("x1", 0.0)])
        report = validate_knk_answer(gc, ans)
        assert not report.valid
        assert any("not sorted" in p for p in report.problems)

    def test_conjunctive_keywords(self, world):
        pub, priv, gc = world
        ans = KnkAnswer("x1", "db&ai", [Match("x1", 0.0)])
        report = validate_knk_answer(gc, ans, conjunctive_keywords=["db", "ai"])
        assert not report.valid  # x1 carries only db

    def test_engine_knk_validates(self, world):
        pub, priv, gc = world
        engine = PPKWS(pub, sketch_k=8)
        engine.attach("bob", priv)
        result = engine.knk("bob", "x1", "cv", k=4)
        report = validate_knk_answer(gc, result.answer)
        assert report.valid, report.problems

    def test_unknown_source(self, world):
        _, _, gc = world
        assert not validate_knk_answer(gc, KnkAnswer("ghost", "db")).valid
