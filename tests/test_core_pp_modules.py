"""Focused tests for the PEval/ARefine/AComplete adapters and edge cases."""

from __future__ import annotations

import pytest

from repro.core import PPKWS, CompletionCache
from repro.core.pp_blinks import peval_blinks
from repro.core.pp_rclique import peval_rclique
from repro.core.pp_knk import peval_knk
from repro.graph import INF, LabeledGraph


@pytest.fixture
def engine_pair(small_public_private):
    pub, priv = small_public_private
    engine = PPKWS(pub, sketch_k=4)
    attachment = engine.attach("bob", priv)
    return engine, attachment


class TestPEvalRclique:
    def test_partial_answers_have_indicators(self, engine_pair):
        _, att = engine_pair
        partials = peval_rclique(att, ["db", "cv"], tau=6.0, max_answers=16)
        assert partials
        for p in partials:
            assert p.pair_indicators  # every recorded pair refinable
            for q in ("db", "cv"):
                assert p.match(q) is not None

    def test_portal_routed_keywords_tracked(self, engine_pair):
        _, att = engine_pair
        # 'ml' exists only publicly (on portal 5's public labels)
        partials = peval_rclique(att, ["db", "ml"], tau=6.0, max_answers=16)
        routed = [p for p in partials if "ml" in p.portal_routed]
        assert routed
        for p in routed:
            assert p.portal_routed["ml"] in att.portals

    def test_private_matched_tracked(self, engine_pair):
        _, att = engine_pair
        partials = peval_rclique(att, ["db", "ai"], tau=6.0, max_answers=16)
        assert any("db" in p.private_matched for p in partials)


class TestPEvalBlinks:
    def test_all_portals_are_roots(self, engine_pair):
        _, att = engine_pair
        partials = peval_blinks(att, ["db", "ai"], tau=5.0)
        for portal in att.portals:
            assert portal in partials

    def test_missing_keywords_recorded(self, engine_pair):
        _, att = engine_pair
        partials = peval_blinks(att, ["db", "not-a-keyword"], tau=5.0)
        for p in partials.values():
            assert "not-a-keyword" in p.missing
            assert p.match("not-a-keyword").distance == INF

    def test_match_distances_within_tau(self, engine_pair):
        _, att = engine_pair
        partials = peval_blinks(att, ["db", "ai"], tau=2.0)
        for p in partials.values():
            for q in ("db", "ai"):
                m = p.match(q)
                if m.is_resolved():
                    assert m.distance <= 2.0


class TestPEvalKnk:
    def test_portals_collected_in_order(self, engine_pair):
        _, att = engine_pair
        partial = peval_knk(att, "x1", "cv", k=3)
        distances = [d for _, d in partial.portal_entries]
        assert distances == sorted(distances)

    def test_matches_stop_at_k(self, engine_pair):
        _, att = engine_pair
        partial = peval_knk(att, "x1", "db", k=1)
        assert len(partial.answer.matches) == 1


class TestCompletionCache:
    def test_cache_hit_counting(self, engine_pair):
        engine, att = engine_pair
        cache = CompletionCache(enabled=True)
        portal = next(iter(att.portals))
        r1 = cache.lookup(engine, portal, "db")
        r2 = cache.lookup(engine, portal, "db")
        assert r1 == r2
        assert cache.hits == 1
        assert cache.misses == 1

    def test_disabled_cache_always_misses(self, engine_pair):
        engine, att = engine_pair
        cache = CompletionCache(enabled=False)
        portal = next(iter(att.portals))
        cache.lookup(engine, portal, "db")
        cache.lookup(engine, portal, "db")
        assert cache.hits == 0
        assert cache.misses == 2

    def test_candidate_lookup_cached(self, engine_pair):
        engine, att = engine_pair
        cache = CompletionCache(enabled=True)
        portal = next(iter(att.portals))
        c1 = cache.lookup_candidates(engine, portal, "db", 5)
        c2 = cache.lookup_candidates(engine, portal, "db", 5)
        assert c1 == c2
        assert cache.hits == 1


class TestDisconnectedPrivateGraph:
    """The model explicitly allows disconnected private graphs (Sec. II)."""

    @pytest.fixture
    def engine(self, small_public_private):
        pub, priv = small_public_private
        # a floating private component with its own keyword
        priv.add_edge("iso1", "iso2")
        priv.add_labels("iso1", {"island"})
        engine = PPKWS(pub, sketch_k=4)
        engine.attach("bob", priv)
        return engine

    def test_queries_do_not_crash(self, engine):
        result = engine.blinks("bob", ["db", "ai"], tau=5.0)
        assert isinstance(result.answers, list)
        result = engine.rclique("bob", ["db", "island"], tau=5.0)
        assert isinstance(result.answers, list)

    def test_island_keyword_unreachable_from_main(self, engine):
        # 'island' cannot join a public-private answer: the component has
        # no portal, so no tree can span it and the public graph.
        result = engine.blinks("bob", ["db", "island"], tau=10.0)
        assert result.answers == []

    def test_knk_from_island_source(self, engine):
        result = engine.knk("bob", "iso1", "island", k=2)
        assert result.answer.vertices() == ["iso1"]
        # no portal entries: the island cannot reach the public graph
        assert result.answer.distances() == [0.0]


class TestWeightedGraphsEndToEnd:
    def test_fractional_weights(self):
        pub = LabeledGraph()
        pub.add_edge(1, 2, 0.5)
        pub.add_edge(2, 3, 0.25)
        pub.add_labels(3, {"far"})
        priv = LabeledGraph()
        priv.add_edge(1, "a", 0.1)
        priv.add_labels("a", {"near"})
        engine = PPKWS(pub, sketch_k=4)
        engine.attach("u", priv)
        result = engine.blinks("u", ["near", "far"], tau=2.0, k=5)
        assert result.answers
        best = result.answers[0]
        assert best.matches["near"].distance <= 2.0
        assert best.matches["far"].distance <= 2.0


class TestMultipleOwners:
    def test_owners_are_isolated(self, small_public_private):
        pub, priv = small_public_private
        other = LabeledGraph()
        other.add_edge(0, "z1")
        other.add_labels("z1", {"zonly"})
        engine = PPKWS(pub, sketch_k=4)
        engine.attach("bob", priv)
        engine.attach("zoe", other)
        # zoe sees her keyword, bob doesn't
        z = engine.knk("zoe", "z1", "zonly", k=1)
        assert z.answer.vertices() == ["z1"]
        b = engine.rclique("bob", ["db", "zonly"], tau=6.0)
        assert b.answers == []  # zonly is invisible to bob

    def test_attachments_independent_portals(self, small_public_private):
        pub, priv = small_public_private
        other = LabeledGraph()
        other.add_edge(7, "w")
        engine = PPKWS(pub, sketch_k=2)
        a1 = engine.attach("bob", priv)
        a2 = engine.attach("wendy", other)
        assert a1.portals == {2, 5}
        assert a2.portals == {7}


class TestQualifyModule:
    def test_answer_sides_short_circuits(self, small_public_private):
        from repro.core import answer_sides

        pub, priv = small_public_private
        sides = answer_sides(["x1", 0, None], pub, priv)
        assert sides == (True, True)
        assert answer_sides([], pub, priv) == (False, False)
        assert answer_sides([None], pub, priv) == (False, False)

    def test_portal_satisfies_both_sides(self, small_public_private):
        from repro.core import answer_sides

        pub, priv = small_public_private
        assert answer_sides([2], pub, priv) == (True, True)
