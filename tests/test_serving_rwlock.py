"""Tests for the writer-preferring reader-writer lock."""

from __future__ import annotations

import threading

from repro.serving import RWLock


def run_thread(target) -> threading.Thread:
    t = threading.Thread(target=target, daemon=True)
    t.start()
    return t


class TestReadSide:
    def test_many_readers_hold_concurrently(self):
        lock = RWLock()
        inside = threading.Barrier(4, timeout=5)  # 3 readers + this test
        done = threading.Event()

        def reader():
            with lock.read_locked():
                inside.wait()  # all three must be inside at once
                done.wait(5)

        threads = [run_thread(reader) for _ in range(3)]
        inside.wait()
        assert lock.readers == 3
        done.set()
        for t in threads:
            t.join(5)
        assert lock.readers == 0

    def test_read_released_on_exception(self):
        lock = RWLock()
        try:
            with lock.read_locked():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert lock.readers == 0
        with lock.write_locked():  # would deadlock if the read leaked
            pass


class TestWriteSide:
    def test_writer_is_exclusive_against_readers(self):
        lock = RWLock()
        writer_in = threading.Event()
        release_writer = threading.Event()
        reader_got_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                release_writer.wait(5)

        def reader():
            with lock.read_locked():
                reader_got_in.set()

        wt = run_thread(writer)
        assert writer_in.wait(5)
        rt = run_thread(reader)
        # the reader must block while the writer holds the lock
        assert not reader_got_in.wait(0.1)
        assert lock.write_active
        release_writer.set()
        assert reader_got_in.wait(5)
        wt.join(5)
        rt.join(5)

    def test_writers_are_mutually_exclusive(self):
        lock = RWLock()
        order = []
        first_in = threading.Event()
        release_first = threading.Event()

        def writer(tag, gate):
            if gate is not None:
                gate.wait(5)
            with lock.write_locked():
                if tag == "a":
                    first_in.set()
                    release_first.wait(5)
                order.append(tag)

        ta = run_thread(lambda: writer("a", None))
        assert first_in.wait(5)
        tb = run_thread(lambda: writer("b", None))
        tb.join(0.1)
        assert order == []  # b is still waiting on a
        release_first.set()
        ta.join(5)
        tb.join(5)
        assert order == ["a", "b"]

    def test_write_released_on_exception(self):
        lock = RWLock()
        try:
            with lock.write_locked():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not lock.write_active
        with lock.read_locked():
            pass


class TestWriterPreference:
    def test_new_readers_queue_behind_waiting_writer(self):
        """Once a writer waits, fresh readers must not jump the queue —
        otherwise sustained query traffic starves every attach."""
        lock = RWLock()
        reader_in = threading.Event()
        release_reader = threading.Event()
        writer_done = threading.Event()
        late_reader_in = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                release_reader.wait(5)

        def writer():
            with lock.write_locked():
                writer_done.set()

        def late_reader():
            with lock.read_locked():
                late_reader_in.set()

        rt = run_thread(first_reader)
        assert reader_in.wait(5)
        wt = run_thread(writer)
        # give the writer time to register as waiting
        wt.join(0.1)
        lt = run_thread(late_reader)
        # the late reader must NOT get in while a writer is waiting
        assert not late_reader_in.wait(0.1)
        assert not writer_done.is_set()
        release_reader.set()
        assert writer_done.wait(5)  # writer goes first ...
        assert late_reader_in.wait(5)  # ... then the late reader
        for t in (rt, wt, lt):
            t.join(5)
