"""Tests for dynamic private graphs (incremental maintenance).

Core invariant: after any sequence of mutations, the per-user state
equals what a fresh :meth:`PPKWS.attach` would build from the mutated
private graph — checked field by field (vertex-portal distances, PKD,
combined portal map).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PPKWS, DynamicPrivateGraph
from repro.exceptions import GraphError
from repro.graph import INF, LabeledGraph, dijkstra
from tests.conftest import random_connected_graph


def _state_equal(engine: PPKWS, owner: str) -> None:
    """Assert the live attachment matches a from-scratch rebuild."""
    att = engine.attachment(owner)
    fresh_engine = PPKWS(engine.public, index=engine.index)
    fresh = fresh_engine.attach(owner, att.private.copy())

    private = att.private
    for p in att.portals:
        for v in private.vertices():
            live = att.oracle.vertex_portal.get(v, p)
            want = fresh.oracle.vertex_portal.get(v, p)
            assert live == pytest.approx(want), (v, p)
        for t in private.label_universe():
            assert att.oracle.pkd.distance(p, t) == pytest.approx(
                fresh.oracle.pkd.distance(p, t)
            ), (p, t)
        for q in att.portals:
            assert att.portal_map.get(p, q) == pytest.approx(
                fresh.portal_map.get(p, q)
            ), (p, q)
    assert att.refined_portal_pairs == fresh.refined_portal_pairs


@pytest.fixture
def dynamic_setup(small_public_private):
    pub, priv = small_public_private
    engine = PPKWS(pub, sketch_k=4)
    engine.attach("bob", priv)
    return engine, DynamicPrivateGraph(engine, "bob")


class TestIncrementalInsert:
    def test_add_edge_repairs_maps(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_edge("x1", "x3")  # shortcut across the private graph
        _state_equal(engine, "bob")

    def test_add_edge_new_private_vertex(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_edge("x2", "brand-new", 2.0)
        assert "brand-new" in dyn.graph
        _state_equal(engine, "bob")

    def test_add_edge_weight_improvement(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_edge("x1", "x2", 0.5)  # shorten an existing edge
        _state_equal(engine, "bob")

    def test_add_edge_noop_when_not_improving(self, dynamic_setup):
        engine, dyn = dynamic_setup
        before = dyn.graph.weight("x1", "x2")
        dyn.add_edge("x1", "x2", before + 5.0)
        assert dyn.graph.weight("x1", "x2") == before

    def test_add_edge_creating_portal_rebuilds(self, dynamic_setup):
        engine, dyn = dynamic_setup
        # vertex 7 is public but not private: the edge makes it a portal
        dyn.add_edge("x4", 7)
        assert 7 in engine.attachment("bob").portals
        _state_equal(engine, "bob")

    def test_add_labels_extends_pkd(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_labels("x4", {"newkw"})
        att = engine.attachment("bob")
        d = att.oracle.pkd.distance(5, "newkw")
        assert d == pytest.approx(dijkstra(dyn.graph, 5)["x4"])
        _state_equal(engine, "bob")

    def test_add_vertex_isolated(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_vertex("floater", {"t"})
        assert "floater" in dyn.graph
        _state_equal(engine, "bob")

    def test_add_vertex_becomes_portal(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_vertex(0)  # exists in the public graph
        assert 0 in engine.attachment("bob").portals

    def test_add_existing_vertex_with_labels(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_vertex("x4", {"extra"})
        assert dyn.graph.has_label("x4", "extra")


class TestDeletions:
    def test_remove_edge_rebuilds(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_edge("x1", "x3")  # give an alternative path first
        dyn.remove_edge("x2", "x4")
        _state_equal(engine, "bob")

    def test_remove_vertex_rebuilds(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.remove_vertex("x3")
        assert "x3" not in dyn.graph
        _state_equal(engine, "bob")

    def test_remove_last_portal_rejected(self, small_public_private):
        pub, _ = small_public_private
        priv = LabeledGraph()
        priv.add_edge(2, "only")  # single portal: 2
        engine = PPKWS(pub, sketch_k=2)
        engine.attach("bob", priv)
        dyn = DynamicPrivateGraph(engine, "bob")
        with pytest.raises(GraphError):
            dyn.remove_vertex(2)


class TestQueriesAfterMutation:
    def test_new_keyword_reachable_after_edge_insert(self, dynamic_setup):
        engine, dyn = dynamic_setup
        # before: no 'robotics' anywhere
        dyn.add_edge("x1", "robo-lab")
        dyn.add_labels("robo-lab", {"robotics"})
        result = engine.knk("bob", "x1", "robotics", k=1)
        assert result.answer.vertices() == ["robo-lab"]
        assert result.answer.distances() == [1.0]

    def test_blinks_sees_updated_distances(self, dynamic_setup):
        engine, dyn = dynamic_setup
        before = engine.blinks("bob", ["db", "cv"], tau=6.0, k=5)
        dyn.add_edge("x1", "x3", 1.0)  # db vertex now adjacent to cv vertex
        after = engine.blinks("bob", ["db", "cv"], tau=6.0, k=5)
        assert after.answers
        assert after.answers[0].weight() <= (
            before.answers[0].weight() if before.answers else INF
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_random_mutation_sequence_stays_consistent(seed):
    """Apply a random insert-heavy mutation sequence; state must equal a
    fresh rebuild after every step (checked at the end for speed)."""
    rng = random.Random(seed)
    pub = random_connected_graph(20, 6, seed)
    priv = LabeledGraph("p")
    priv.add_edge(0, "a0")
    priv.add_edge("a0", "a1")
    priv.add_edge(1, "a1")
    engine = PPKWS(pub, sketch_k=4)
    engine.attach("u", priv)
    dyn = DynamicPrivateGraph(engine, "u")
    names = ["a0", "a1", "a2", "a3", "a4"]
    for step in range(6):
        op = rng.random()
        u = rng.choice(names)
        v = rng.choice(names)
        if op < 0.6 and u != v:
            dyn.add_edge(u, v, rng.choice([0.5, 1.0, 2.0]))
        elif op < 0.8:
            dyn.add_vertex(rng.choice(names))
            dyn.add_labels(rng.choice([n for n in names if n in dyn.graph]),
                           {rng.choice("xyz")})
        else:
            edges = list(dyn.graph.edges())
            if len(edges) > 4:
                e = rng.choice(edges)
                try:
                    dyn.remove_edge(e[0], e[1])
                except GraphError:
                    pass
    _state_equal(engine, "u")


class TestEpochInvalidation:
    """Incremental repairs must advance the attachment epoch.

    The serving layer keys its cross-request answer cache on
    ``PPKWS.attachment_epoch``; a repair that swaps or mutates per-user
    state without bumping it would let cached answers outlive the data
    they were computed from (regression: ``add_edge`` once wrote
    ``_attachments`` directly and ``add_labels`` bumped nothing).
    """

    def test_add_edge_bumps_attachment_epoch(self, dynamic_setup):
        engine, dyn = dynamic_setup
        before = engine.attachment_epoch
        dyn.add_edge("x1", "x3")
        assert engine.attachment_epoch > before

    def test_add_labels_bumps_attachment_epoch(self, dynamic_setup):
        engine, dyn = dynamic_setup
        before = engine.attachment_epoch
        dyn.add_labels("x4", {"newkw"})
        assert engine.attachment_epoch > before

    def test_removals_bump_attachment_epoch(self, dynamic_setup):
        engine, dyn = dynamic_setup
        dyn.add_edge("x1", "x3")
        before = engine.attachment_epoch
        dyn.remove_edge("x2", "x4")
        assert engine.attachment_epoch > before
