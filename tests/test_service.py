"""Tests for the embeddable service facade."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import ReproError
from repro.service import PPKWSService


@pytest.fixture
def service(small_public_private):
    pub, priv = small_public_private
    svc = PPKWSService(sketch_k=4)
    svc.create_network("net", pub)
    svc.attach_user("net", "bob", priv)
    return svc


class TestAdministration:
    def test_create_and_list(self, small_public_private):
        pub, _ = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("a", pub)
        assert svc.networks() == ["a"]

    def test_duplicate_network_rejected(self, small_public_private):
        pub, _ = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("a", pub)
        with pytest.raises(ReproError):
            svc.create_network("a", pub)

    def test_drop_network(self, small_public_private):
        pub, _ = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("a", pub)
        svc.drop_network("a")
        assert svc.networks() == []
        with pytest.raises(ReproError):
            svc.drop_network("a")

    def test_attach_returns_portal_count(self, small_public_private):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.create_network("a", pub)
        assert svc.attach_user("a", "bob", priv) == 2
        svc.detach_user("a", "bob")


class TestExecute:
    def test_blinks_request(self, service):
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0, "k": 3,
        })
        assert resp["status"] == "ok"
        assert resp["answers"]
        answer = resp["answers"][0]
        assert set(answer["matches"]) == {"db", "ai"}
        assert "peval" in resp["breakdown"]

    def test_rclique_request(self, service):
        resp = service.execute({
            "op": "rclique", "network": "net", "owner": "bob",
            "keywords": ["db", "cv"], "tau": 6.0,
        })
        assert resp["status"] == "ok"

    def test_banks_request_includes_tree(self, service):
        resp = service.execute({
            "op": "banks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0,
        })
        assert resp["status"] == "ok"
        assert any("tree_edges" in a for a in resp["answers"])

    def test_knk_request(self, service):
        resp = service.execute({
            "op": "knk", "network": "net", "owner": "bob",
            "source": "x1", "keyword": "cv", "k": 3,
        })
        assert resp["status"] == "ok"
        assert resp["answer"]["matches"]

    def test_knk_multi_request(self, service):
        resp = service.execute({
            "op": "knk_multi", "network": "net", "owner": "bob",
            "source": "x1", "keywords": ["db", "ai"], "mode": "or", "k": 4,
        })
        assert resp["status"] == "ok"
        assert resp["answer"]["keyword"] == "db|ai"

    def test_stats_request(self, service):
        resp = service.execute({"op": "stats", "network": "net", "owner": "bob"})
        assert resp["status"] == "ok"
        assert resp["attachment"]["portals"] == 2
        assert resp["owners"] == ["bob"]

    def test_stats_without_owner(self, service):
        resp = service.execute({"op": "stats", "network": "net"})
        assert resp["status"] == "ok"
        assert "attachment" not in resp


class TestExecuteAdminOps:
    def test_full_lifecycle_through_execute(self, small_public_private):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2)
        resp = svc.execute({"op": "create_network", "network": "n", "public": pub})
        assert resp["status"] == "ok"
        resp = svc.execute({"op": "attach", "network": "n", "owner": "bob",
                            "private": priv})
        assert resp == {"status": "ok", "owner": "bob", "portals": 2, "v": 1}
        resp = svc.execute({"op": "blinks", "network": "n", "owner": "bob",
                            "keywords": ["db", "ai"], "tau": 4.0})
        assert resp["status"] == "ok" and resp["answers"]
        assert svc.execute({"op": "detach", "network": "n",
                            "owner": "bob"})["status"] == "ok"
        assert svc.execute({"op": "drop", "network": "n"})["status"] == "ok"
        assert svc.networks() == []

    def test_create_network_from_wire_edges(self):
        svc = PPKWSService(sketch_k=2)
        resp = svc.execute({
            "op": "create_network", "network": "n",
            "public_edges": [[0, 1], [1, 2, 2.5]],
            "public_labels": {2: ["t"]},
        })
        assert resp["status"] == "ok"
        resp = svc.execute({"op": "attach", "network": "n", "owner": "u",
                            "private_edges": [[0, "x"]],
                            "private_labels": {"x": ["s"]}})
        assert resp["status"] == "ok" and resp["portals"] == 1
        resp = svc.execute({"op": "knk", "network": "n", "owner": "u",
                            "source": "x", "keyword": "t", "k": 1})
        assert resp["status"] == "ok"
        assert resp["answer"]["matches"][0]["vertex"] == 2

    def test_malformed_edge_payload(self):
        svc = PPKWSService(sketch_k=2)
        resp = svc.execute({"op": "create_network", "network": "n",
                            "public_edges": [[0, 1, 2, 3]]})
        assert resp["status"] == "error"
        assert "public_edges" in resp["error"]
        resp = svc.execute({"op": "create_network", "network": "n",
                            "public": "not a graph"})
        assert resp["status"] == "error"

    def test_duplicate_create_via_execute(self, small_public_private):
        pub, _ = small_public_private
        svc = PPKWSService(sketch_k=2)
        svc.execute({"op": "create_network", "network": "n", "public": pub})
        resp = svc.execute({"op": "create_network", "network": "n", "public": pub})
        assert resp["status"] == "error"
        assert resp["retryable"] is False


class TestDeadlinesAndDegradation:
    def test_degraded_response_shape(self, service):
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0, "deadline_ms": 0,
        })
        assert resp["status"] == "degraded"
        assert resp["completed_steps"] == []
        assert resp["interrupted_step"] == "peval"
        assert "answers" in resp and "breakdown" in resp

    def test_degraded_knk(self, service):
        resp = service.execute({
            "op": "knk", "network": "net", "owner": "bob",
            "source": "x1", "keyword": "cv", "deadline_ms": 0,
        })
        assert resp["status"] == "degraded"
        assert "answer" in resp

    def test_generous_deadline_is_ok(self, service):
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0,
            "deadline_ms": 1e9, "max_expansions": 10**9,
        })
        assert resp["status"] == "ok"
        assert "completed_steps" not in resp

    def test_max_expansions_degrades(self, service):
        resp = service.execute({
            "op": "rclique", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0, "max_expansions": 1,
        })
        assert resp["status"] == "degraded"


class TestObservability:
    def test_degraded_request_is_fully_observable(self, service):
        """Acceptance: a degraded blinks request increments
        ``ppkws_requests_total{op="blinks",status="degraded"}``, records a
        latency histogram sample, and lands in the trace ring."""
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        service._registry = reg
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0, "deadline_ms": 0,
        })
        assert resp["status"] == "degraded"
        assert reg.value(
            "ppkws_requests_total",
            labels={"op": "blinks", "status": "degraded"},
        ) == 1.0
        hist = reg.histogram("ppkws_request_seconds", labels={"op": "blinks"})
        assert hist is not None and hist.count == 1
        traces = service.recent_traces()
        assert len(traces) == 1
        trace = traces[0]
        assert trace["op"] == "blinks" and trace["status"] == "degraded"
        assert trace["degraded"] is True
        assert trace["interrupted_step"] == "peval"
        assert trace["network"] == "net" and trace["owner"] == "bob"

    def test_broken_observer_is_counted_not_silent(self, service, monkeypatch):
        """Regression: observer failures were swallowed blind.  A request
        must still succeed, but the telemetry gap has to show up in
        ``ppkws_internal_errors_total{error="observer:..."}``."""
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        service._registry = reg

        def broken_record(trace):
            raise ValueError("trace ring corrupted")

        monkeypatch.setattr(service._traces, "record", broken_record)
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0, "deadline_ms": 0,
        })
        assert resp["status"] == "degraded"  # the request is unaffected
        assert reg.value(
            "ppkws_internal_errors_total",
            labels={"error": "observer:ValueError"},
        ) == 1.0

    def test_ok_requests_counted_but_not_ringed(self, service):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        service._registry = reg
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0,
        })
        assert resp["status"] == "ok"
        assert reg.value(
            "ppkws_requests_total", labels={"op": "blinks", "status": "ok"}
        ) == 1.0
        assert service.recent_traces() == []  # fast + healthy: not ringed

    def test_slow_queries_are_ringed(self, small_public_private):
        pub, priv = small_public_private
        svc = PPKWSService(sketch_k=2, slow_query_ms=0.0)  # everything is slow
        svc.create_network("n", pub)
        svc.attach_user("n", "bob", priv)
        resp = svc.execute({"op": "stats", "network": "n"})
        assert resp["status"] == "ok"
        assert any(t["op"] == "stats" for t in svc.recent_traces())

    def test_error_requests_are_counted_and_ringed(self, service):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        service._registry = reg
        service.execute({"op": "blinks", "network": "net", "owner": "bob"})
        assert reg.value(
            "ppkws_requests_total", labels={"op": "blinks", "status": "error"}
        ) == 1.0
        (trace,) = service.recent_traces()
        assert trace["status"] == "error"
        assert trace["error"] == "ReproError"

    def test_trace_flag_adds_counters_and_trace(self, service):
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0, "max_expansions": 10**9,
            "trace": True,
        })
        assert resp["status"] == "ok"
        assert set(resp["counters"]) == {
            "partial_answers", "refinement_checks", "refinements_applied",
            "completion_lookups", "completion_cache_hits",
            "answers_pruned", "final_answers",
        }
        trace = resp["trace"]
        assert trace["op"] == "blinks"
        assert set(trace["step_ms"]) == {"peval", "arefine", "acomplete"}
        assert trace["expansions"] > 0  # budget object was threaded through
        assert trace["duration_ms"] >= 0.0

    def test_no_trace_fields_without_flag(self, service):
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0,
        })
        assert "trace" not in resp and "counters" not in resp

    def test_metrics_op(self, service):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        service._registry = reg
        service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "tau": 4.0,
        })
        resp = service.execute({"op": "metrics"})
        assert resp["status"] == "ok"
        assert "ppkws_requests_total" in resp["metrics"]["counters"]
        assert 'ppkws_requests_total{op="blinks",status="ok"} 1' in (
            resp["prometheus"]
        )
        assert resp["recent_traces"] == []

    def test_metrics_op_bypasses_admission_control(self, service):
        service._max_in_flight = 0
        assert service.execute({"op": "stats", "network": "net"})["status"] == "error"
        assert service.execute({"op": "metrics"})["status"] == "ok"

    def test_metrics_op_without_registry(self, service):
        resp = service.execute({"op": "metrics"})
        assert resp["status"] == "ok"
        assert resp["metrics"] == {}
        assert resp["prometheus"] == ""

    def test_installed_registry_is_picked_up(self, service):
        from repro import obs
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        obs.install(reg)
        try:
            service.execute({"op": "stats", "network": "net"})
        finally:
            obs.uninstall()
        assert reg.value(
            "ppkws_requests_total", labels={"op": "stats", "status": "ok"}
        ) == 1.0


class TestAdmissionControl:
    def test_saturated_service_is_retryable(self, service):
        service._max_in_flight = 0
        resp = service.execute({"op": "stats", "network": "net"})
        assert resp["status"] == "error"
        assert resp["retryable"] is True
        assert "overloaded" in resp["error"]

    def test_slot_released_after_request(self, small_public_private):
        pub, _ = small_public_private
        svc = PPKWSService(sketch_k=2, max_in_flight=1)
        svc.create_network("n", pub)
        for _ in range(3):  # sequential requests all fit in the one slot
            assert svc.execute({"op": "stats", "network": "n"})["status"] == "ok"

    def test_slot_released_after_error(self, small_public_private):
        pub, _ = small_public_private
        svc = PPKWSService(sketch_k=2, max_in_flight=1)
        svc.create_network("n", pub)
        assert svc.execute({"op": "stats"})["status"] == "error"
        assert svc._in_flight == 0
        assert svc.execute({"op": "stats", "network": "n"})["status"] == "ok"

    def test_retry_hint_survives_cached_and_control_chatter(
        self, service, monkeypatch
    ):
        """Regression: cache hits and metrics/help chatter used to feed
        the retry_after_ms EWMA, dragging it to the 1ms clamp floor —
        an overloaded client was told to hammer a service whose cold
        queries took tens of milliseconds.  Only uncached query-class
        work may move the average now."""
        real = PPKWSService._semantics_query

        def slow(self, request, spec):
            time.sleep(0.025)
            return real(self, request, spec)

        monkeypatch.setattr(PPKWSService, "_semantics_query", slow)
        base = {
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db", "ai"], "k": 3,
        }
        for i in range(6):  # distinct params: all cold, all >= 25ms
            resp = service.execute(dict(base, tau=3.0 + 0.5 * i))
            assert resp["status"] == "ok"
            assert "cached" not in resp
        # Flood with the traffic classes that used to poison the hint:
        # sub-ms answer-cache hits and control-plane chatter.
        for _ in range(40):
            assert service.execute(dict(base, tau=3.0))["cached"] is True
            assert service.execute({"op": "help"})["status"] == "ok"
        service._max_in_flight = 0
        resp = service.execute(dict(base, tau=9.75))
        assert resp["code"] == "overloaded"
        assert resp["retry_after_ms"] >= 10.0


class TestIndexPersistenceErrors:
    def test_unwritable_index_path_is_an_error_response(
        self, small_public_private, tmp_path
    ):
        """Regression: ``save_index`` OSError used to escape ``execute``.

        A path whose parent is a *file* makes ``open(..., "w")`` raise
        ``NotADirectoryError`` (an ``OSError``), which the pre-fix facade
        did not catch — violating the "no library exception ever
        escapes" contract.
        """
        pub, _ = small_public_private
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        bad_path = str(blocker / "index.jsonl")
        svc = PPKWSService(sketch_k=2)
        resp = svc.execute({
            "op": "create_network", "network": "n",
            "public": pub, "index_path": bad_path,
        })
        assert resp["status"] == "error"
        assert resp["retryable"] is False
        assert "cannot save index" in resp["error"]
        # the failed create must not leave a half-registered network
        assert svc.networks() == []
        resp = svc.execute({"op": "create_network", "network": "n", "public": pub})
        assert resp["status"] == "ok"

    def test_unwritable_index_path_via_python_api_raises_repro_error(
        self, small_public_private, tmp_path
    ):
        pub, _ = small_public_private
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        svc = PPKWSService(sketch_k=2)
        with pytest.raises(ReproError):
            svc.create_network("n", pub, index_path=str(blocker / "idx"))
        assert svc.networks() == []


class TestInternalErrorFormatting:
    def test_bare_keyerror_is_not_serialized_as_quoted_key(
        self, service, monkeypatch
    ):
        """Regression: a bare ``KeyError('collab')`` used to serialize as
        ``"error": "'collab'"`` — engine internals, not a message."""
        engine = service._engine("net")
        def boom(*args, **kwargs):
            raise KeyError("collab")
        monkeypatch.setattr(engine, "attachment", boom)
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db"], "tau": 1.0,
        })
        assert resp["status"] == "error"
        assert resp["error"] == "KeyError: 'collab'"

    def test_internal_errors_carry_exception_class(self, service, monkeypatch):
        engine = service._engine("net")
        def boom(*args, **kwargs):
            raise ValueError("bad things")
        monkeypatch.setattr(engine, "attachment", boom)
        resp = service.execute({
            "op": "knk", "network": "net", "owner": "bob",
            "source": "x1", "keyword": "db",
        })
        assert resp["error"] == "ValueError: bad things"
        assert resp["retryable"] is False

    def test_internal_errors_counted(self, service, monkeypatch):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        service._registry = reg
        engine = service._engine("net")
        def boom(*args, **kwargs):
            raise KeyError("collab")
        monkeypatch.setattr(engine, "attachment", boom)
        service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": ["db"], "tau": 1.0,
        })
        assert reg.value(
            "ppkws_internal_errors_total", labels={"error": "KeyError"}
        ) == 1.0
        # ReproError-style caller mistakes are NOT internal errors
        service.execute({"op": "blinks", "network": "net", "owner": "bob"})
        assert reg.value(
            "ppkws_internal_errors_total", labels={"error": "ReproError"}
        ) == 0.0


class TestErrorHandling:
    def test_unknown_op(self, service):
        resp = service.execute({"op": "frobnicate"})
        assert resp["status"] == "error"
        assert "unknown op" in resp["error"]
        assert resp["retryable"] is False

    def test_missing_field_messages(self, service):
        resp = service.execute({"op": "blinks", "network": "net", "owner": "bob"})
        assert resp["error"] == "missing field 'keywords'"
        resp = service.execute({"op": "knk", "network": "net", "owner": "bob"})
        assert resp["error"] == "missing field 'source'"
        resp = service.execute({"op": "stats"})
        assert resp["error"] == "missing field 'network'"
        resp = service.execute({"op": "attach", "network": "net"})
        assert resp["error"] == "missing field 'owner'"

    def test_unknown_network(self, service):
        resp = service.execute({
            "op": "blinks", "network": "nope", "owner": "bob",
            "keywords": ["db"], "tau": 1.0,
        })
        assert resp["status"] == "error"

    def test_unknown_owner(self, service):
        resp = service.execute({
            "op": "knk", "network": "net", "owner": "nobody",
            "source": "x1", "keyword": "db",
        })
        assert resp["status"] == "error"

    def test_missing_fields(self, service):
        resp = service.execute({"op": "blinks", "network": "net"})
        assert resp["status"] == "error"

    def test_invalid_query_parameters(self, service):
        resp = service.execute({
            "op": "blinks", "network": "net", "owner": "bob",
            "keywords": [], "tau": 4.0,
        })
        assert resp["status"] == "error"

    def test_no_exception_escapes(self, service):
        # a fuzz-ish batch of malformed requests
        bad_requests = [
            {},
            {"op": None},
            {"op": "knk", "network": "net", "owner": "bob"},
            {"op": "rclique", "network": "net", "owner": "bob",
             "keywords": ["db"], "tau": "not-a-number"},
            {"op": "knk", "network": "net", "owner": "bob",
             "source": "ghost", "keyword": "db"},
        ]
        for request in bad_requests:
            resp = service.execute(request)
            assert resp["status"] == "error", request
