"""RA005 good fixture: GraphLike members only; own private state is fine."""


def count_edges(graph):
    return graph.num_edges


def label_lookup(graph, label):
    return graph.vertices_with_label(label)


class PortalMap:
    """A module's own `_adj` is its own state, not a backend poke."""

    def __init__(self):
        self._adj = {}

    def record(self, p, q, d):
        self._adj.setdefault(p, {})[q] = d

    def copy(self):
        out = PortalMap()
        out._adj = {p: dict(row) for p, row in self._adj.items()}
        return out
