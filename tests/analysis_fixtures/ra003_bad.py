"""RA003 bad fixture: a ppkws_* metric name missing from the catalogue."""


def record(registry):
    registry.inc("ppkws_definitely_uncatalogued_total")
    registry.observe("ppkws_imaginary_seconds", 0.25)
    registry.set_gauge("ppkws_phantom_depth", 3)
