"""RA006 bad fixture: wall-clock durations."""

import time


def measure(fn):
    start = time.time()
    fn()
    return time.time() - start
