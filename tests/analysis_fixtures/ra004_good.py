"""RA004 good fixture: checkpointed loops; degradation recorded."""

import heapq

from repro.exceptions import BudgetError


def sweep(graph, heap, budget=None):
    seen = set()
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, v = heapq.heappop(heap)
        if v in seen:
            continue
        seen.add(v)
        for nbr, w in graph.neighbor_items(v):
            if nbr not in seen:
                heapq.heappush(heap, (d + w, nbr))
    return seen


def delegate(graph, sources, budget=None):
    out = []
    for source in sources:
        # Passing the budget down counts: the callee checkpoints for us.
        out.append(sweep(graph, [(0.0, source)], budget=budget))
    return out


def degrade(budget, result):
    try:
        budget.checkpoint()
    except BudgetError as exc:
        result.mark_degraded(exc)  # the signal is recorded, not dropped
    return result
