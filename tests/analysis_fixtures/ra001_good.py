"""RA001 good fixture: every registry write holds its guarding lock."""

import threading


class Service:
    def __init__(self):
        self._engines = {}
        self._engines_lock = threading.Lock()
        self._attachments = {}
        self._attachments_lock = threading.Lock()
        self._attachment_epoch = 0

    def register(self, name, engine):
        with self._engines_lock:
            self._engines[name] = engine

    def forget(self, name):
        with self._engines_lock:
            del self._engines[name]

    def evict(self, name):
        with self._engines_lock:
            self._engines.pop(name, None)

    def swap(self, owner, attachment):
        with self._attachments_lock:
            self._attachments[owner] = attachment
            self._attachment_epoch += 1

    def lookup(self, name):
        # Reads stay lock-free: single-key dict reads are atomic.
        return self._engines.get(name)
