"""RA008 bad fixture: a pp_* module hand-rolling the engine's step loop."""


class BudgetError(Exception):
    pass


class _Timer:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    elapsed = 0.0


def observe_pipeline(name, result):
    pass


def make_degraded(answers, **kw):
    return answers


def hand_rolled_query(engine, attachment, keywords, breakdown, budget):
    state = {}
    try:
        with _Timer() as t:
            state = engine.peval(attachment, keywords, budget)
        breakdown.peval = t.elapsed
        with _Timer() as t:
            engine.arefine(state, budget)
        setattr(breakdown, "arefine", t.elapsed)
    except BudgetError:
        result = make_degraded(
            list(state.values()),
            interrupted_step="arefine",
            completed_steps=["peval"],
        )
        observe_pipeline("blinks", result)
        return result
    result = make_degraded(list(state.values()))
    result.breakdown.acomplete = 0.0
    observe_pipeline("blinks", result)
    return result
