"""RA008 good fixture: a pp_* module that only declares steps + a spec."""


class StepSpec:
    def __init__(self, name, run):
        self.name = name
        self.run = run


class SemanticsSpec:
    def __init__(self, name, steps):
        self.name = name
        self.steps = steps


def register_semantics(spec):
    return spec


def _validate(ctx):
    if not ctx.params["keywords"]:
        raise ValueError("need keywords")


def _step_peval(ctx):
    ctx.state = ctx.engine.peval(ctx.attachment, ctx.params["keywords"])
    ctx.counters.partial_answers = len(ctx.state)


def _step_acomplete(ctx):
    ctx.answers = ctx.engine.acomplete(ctx.state, budget=ctx.budget)


def _salvage(ctx, step):
    return list(ctx.state.values())


FIXTURE = register_semantics(
    SemanticsSpec(
        name="fixture",
        steps=(
            StepSpec("peval", _step_peval),
            StepSpec("acomplete", _step_acomplete),
        ),
    )
)
