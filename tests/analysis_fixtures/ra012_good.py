"""RA012 good fixture: kernels are pure functions of their inputs.

Local mutation, own-object state and deterministic arithmetic are all
fine; only RNG/clock/shared-engine state is banned.
"""


def scale_scores(scores, factor):
    out = []
    for s in scores:
        out.append(s * factor)
    return out


def top_k(scores, k):
    return sorted(scale_scores(scores, 2.0), reverse=True)[:k]


class SweepState:
    def __init__(self, width):
        self.width = width
        self.rows = []

    def push(self, row):
        self.rows.append(row)
        return len(self.rows)
