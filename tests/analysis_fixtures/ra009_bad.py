"""RA009 bad fixture: two locks acquired in conflicting orders.

``forward`` nests a->b lexically; ``backward`` holds b and reaches a
through a call hop, so the reverse edge only exists interprocedurally —
exactly the shape the syntactic RA001 rule cannot see.
"""

import threading


class Pair:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()
        self.value = 0

    def forward(self):
        with self._a_lock:
            with self._b_lock:
                return self.value

    def backward(self):
        with self._b_lock:
            return self._grab_a()

    def _grab_a(self):
        with self._a_lock:
            return self.value
