"""RA011 good fixture: the budget follows the traversal.

Threading by keyword, positionally (any budget-named argument counts)
and from an attribute all satisfy the rule.
"""

import heapq


def expand(graph, frontier, budget=None):
    seen = set()
    while frontier:
        if budget is not None:
            budget.checkpoint()
        _, v = heapq.heappop(frontier)
        if v in seen:
            continue
        seen.add(v)
        for nbr, w in graph.neighbor_items(v):
            if nbr not in seen:
                heapq.heappush(frontier, (w, nbr))
    return seen


def answer(graph, sources, budget=None):
    out = []
    for source in sources:
        out.append(expand(graph, [(0.0, source)], budget=budget))
    return out


def answer_positional(graph, sources, budget=None):
    return [expand(graph, [(0.0, s)], budget) for s in sources]


class Session:
    def __init__(self, budget=None):
        self._budget = budget

    def answer(self, graph, sources, budget=None):
        return [
            expand(graph, [(0.0, s)], budget=self._budget) for s in sources
        ]
