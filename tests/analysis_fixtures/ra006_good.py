"""RA006 good fixture: monotonic clocks and injected clocks."""

import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def deadline_in(seconds, clock=time.monotonic):
    return clock() + seconds
