"""RA010 bad fixture: blocking operations under exclusive locks.

``AnswerCache.lookup`` reintroduces the PR 8 bug verbatim — a deepcopy
inside the table lock, convoying every concurrent lookup behind the
copy.  ``Journal.append`` blocks one call hop away: the lock is held at
the call site, the file IO happens inside the callee.
"""

import copy
import threading


class AnswerCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}

    def lookup(self, key):
        with self._lock:
            entry = self._table.get(key)
            if entry is None:
                return None
            return copy.deepcopy(entry)


class Journal:
    def __init__(self, path):
        self._journal_lock = threading.Lock()
        self._path = path
        self._entries = []

    def append(self, entry):
        with self._journal_lock:
            self._entries.append(entry)
            self._flush()

    def _flush(self):
        with open(self._path, "w") as fh:
            fh.write(repr(self._entries))
