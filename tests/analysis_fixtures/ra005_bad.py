"""RA005 bad fixture: reaching into graph-backend internals."""


def count_edges(graph):
    return sum(len(row) for row in graph._adj.values()) // 2


def label_lookup(graph, label):
    return graph._label_index.get(label, frozenset())


def csr_poke(frozen):
    indptr, indices, weights = frozen.csr()
    return indptr[0], indices, weights
