"""RA002 bad fixture: off-taxonomy raise plus a silent blind except."""


def fail():
    raise RuntimeError("library failure outside the ReproError taxonomy")


def swallow():
    try:
        fail()
    except Exception:
        pass


def swallow_bare():
    try:
        fail()
    except:
        return None
