"""RA004 bad fixture: expanding loop ignoring budget; swallowed signal."""

import heapq

from repro.exceptions import BudgetExhaustedError


def sweep(graph, heap, budget=None):
    seen = set()
    while heap:  # expanding loop: pops the heap, walks adjacency
        d, v = heapq.heappop(heap)
        if v in seen:
            continue
        seen.add(v)
        for nbr, w in graph.neighbor_items(v):
            if nbr not in seen:
                heapq.heappush(heap, (d + w, nbr))
    return seen


def swallow(budget):
    try:
        budget.checkpoint()
    except BudgetExhaustedError:
        pass
