"""RA011 bad fixture: a budget-carrying caller drops the budget.

``expand`` checkpoints its budget (RA004-clean) — but ``answer`` calls
it without threading its own budget through, so the traversal runs
unbounded while the caller's signature promises a deadline.
"""

import heapq


def expand(graph, frontier, budget=None):
    seen = set()
    while frontier:
        if budget is not None:
            budget.checkpoint()
        _, v = heapq.heappop(frontier)
        if v in seen:
            continue
        seen.add(v)
        for nbr, w in graph.neighbor_items(v):
            if nbr not in seen:
                heapq.heappush(frontier, (w, nbr))
    return seen


def answer(graph, sources, budget=None):
    out = []
    for source in sources:
        out.append(expand(graph, [(0.0, source)]))
    return out
