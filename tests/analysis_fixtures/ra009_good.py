"""RA009 good fixture: every path agrees on the a-before-b order.

Also exercises the same-token exemption: nesting two members of one
per-object lock family (``x._node_lock`` inside ``y._node_lock``) is
not a cycle — token identity cannot distinguish instances, so the
analysis must not self-report re-entrant families.
"""

import threading


class Pair:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()
        self.value = 0

    def forward(self):
        with self._a_lock:
            with self._b_lock:
                return self.value

    def also_forward(self):
        with self._a_lock:
            return self._grab_b()

    def _grab_b(self):
        with self._b_lock:
            return self.value


class Node:
    def __init__(self):
        self._node_lock = threading.Lock()
        self.weight = 1


def link(x, y):
    with x._node_lock:
        with y._node_lock:
            return x.weight + y.weight
