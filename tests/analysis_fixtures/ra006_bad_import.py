"""RA006 bad fixture: hiding the wall clock behind an innocent name."""

from time import time


def measure(fn):
    start = time()
    fn()
    return time() - start
