"""RA003 good fixture: catalogued names and un-prefixed ad-hoc metrics."""


def record(registry):
    registry.inc("ppkws_requests_total", labels={"op": "blinks", "status": "ok"})
    registry.observe("ppkws_request_seconds", 0.003, labels={"op": "blinks"})
    registry.set_gauge("ppkws_in_flight_requests", 2)
    # Names without the ppkws_ prefix are test/ad-hoc series; unrestricted.
    registry.inc("adhoc_test_counter_total")


def dynamic(registry, name):
    # Non-literal names cannot be checked statically; the rule skips them.
    registry.inc(name)
