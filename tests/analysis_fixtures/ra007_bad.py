"""RA007 bad fixture: string-literal or ad-hoc fault points."""

from repro import faults
from repro.faults import FaultSpec
from repro.faults.points import FaultPoint, point_named


def hooks(fh):
    faults.fire("persist.save.write")
    faults.wrap_write(fh, "graph.save.write")
    faults.fire(point="serving.cache.lookup")


def schedule():
    return [
        FaultSpec("serving.executor.worker", "kill"),
        FaultSpec(point="service.execute", kind="raise"),
        point_named("serving.rwlock.acquire_read"),
    ]


def adhoc_point():
    # constructing a point outside repro.faults bypasses the catalogue
    return FaultPoint("serving.shards.rogue", "serving", "not catalogued")
