"""RA007 bad fixture: string-literal fault points at call sites."""

from repro import faults
from repro.faults import FaultSpec
from repro.faults.points import point_named


def hooks(fh):
    faults.fire("persist.save.write")
    faults.wrap_write(fh, "graph.save.write")
    faults.fire(point="serving.cache.lookup")


def schedule():
    return [
        FaultSpec("serving.executor.worker", "kill"),
        FaultSpec(point="service.execute", kind="raise"),
        point_named("serving.rwlock.acquire_read"),
    ]
