"""RA012 bad fixture: impure vectorized kernels.

RNG, wall clock, shared-engine mutation — directly and one call hop
away (``top_k`` is impure only because ``jitter_scores`` is).
"""

import random
import time


def jitter_scores(scores):
    return [s + random.random() for s in scores]


def stamp_rows(rows):
    now = time.time()
    return [(now, row) for row in rows]


def memoize_plan(engine, plan):
    engine._plan_cache = plan
    return plan


def top_k(scores, k):
    return sorted(jitter_scores(scores), reverse=True)[:k]
