"""RA002 good fixture: taxonomy raises, justified/re-raising handlers."""

from repro.exceptions import GraphError


class LocalError(GraphError):
    """A locally-defined taxonomy member (base chains to ReproError)."""


class DerivedLocalError(LocalError):
    """Second-level chain resolved by the rule's two-pass base scan."""


def fail():
    raise DerivedLocalError("still inside the taxonomy")


def validate(k):
    if k <= 0:
        raise ValueError("allowlisted builtin: argument validation")


def cleanup_and_reraise():
    try:
        fail()
    except BaseException:
        raise


def justified():
    try:
        fail()
    except Exception:  # fixture: demonstrates a justified blind handler
        return None
