"""RA007 good fixture: fault points referenced via catalogue constants."""

from repro import faults
from repro.faults import FaultSpec
from repro.faults.points import (
    EXECUTOR_WORKER,
    GRAPH_SAVE_WRITE,
    PERSIST_SAVE_WRITE,
    SERVICE_EXECUTE,
    SHARD_WORKER,
)


def hooks(fh):
    faults.fire(PERSIST_SAVE_WRITE)
    faults.wrap_write(fh, GRAPH_SAVE_WRITE)
    faults.fire(point=SERVICE_EXECUTE)


def schedule():
    return [
        FaultSpec(EXECUTOR_WORKER, "kill"),
        FaultSpec(SHARD_WORKER, "kill"),
        FaultSpec(point=SERVICE_EXECUTE, kind="raise"),
    ]
