"""RA010 good fixture: slow work happens outside exclusive locks.

``AnswerCache.lookup`` is the PR 8 fix shape — take a reference under
the lock, deepcopy after releasing it.  ``Index.query`` shows the
rwlock read-side exemption: blocking IO under a *read* lock is fine
because readers do not serialize each other.
"""

import copy
import threading


class AnswerCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}

    def lookup(self, key):
        with self._lock:
            entry = self._table.get(key)
        if entry is None:
            return None
        return copy.deepcopy(entry)


class Index:
    def __init__(self, rw_lock, path):
        self._rw_lock = rw_lock
        self._path = path

    def query(self):
        with self._rw_lock.read_locked():
            return self._load()

    def _load(self):
        with open(self._path, "r") as fh:
            return fh.read()


class Journal:
    def __init__(self, path):
        self._journal_lock = threading.Lock()
        self._path = path
        self._entries = []

    def append(self, entry):
        with self._journal_lock:
            self._entries.append(entry)
            snapshot = list(self._entries)
        self._write(snapshot)

    def _write(self, snapshot):
        with open(self._path, "w") as fh:
            fh.write(repr(snapshot))
