"""RA001 bad fixture: guarded registry attributes written without locks."""

import threading


class Service:
    def __init__(self):
        # Constructor initialisation is exempt: the object is unshared.
        self._engines = {}
        self._engines_lock = threading.Lock()
        self._attachments = {}
        self._attachments_lock = threading.Lock()
        self._attachment_epoch = 0

    def register(self, name, engine):
        self._engines[name] = engine  # unlocked item write

    def forget(self, name):
        del self._engines[name]  # unlocked delete

    def evict(self, name):
        self._engines.pop(name, None)  # unlocked mutating method

    def swap(self, owner, attachment):
        self._attachments[owner] = attachment  # unlocked item write
        self._attachment_epoch += 1  # unlocked epoch bump
