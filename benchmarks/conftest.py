"""Session-shared state for the benchmark suite.

Dataset generation and index construction are expensive and identical
across benchmark files, so they are built once per session here.  Every
benchmark prints its paper-style table and persists it under
``bench_results/`` (see :func:`repro.bench.reporting.write_report`).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiments import ExperimentSetup, build_setup, dataset_names

# Bench scale can be shrunk for quick sanity runs:
#   REPRO_BENCH_SCALE=small pytest benchmarks/ --benchmark-only
SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")

# The paper's performance shapes (who wins, PADS < ADS, ...) only hold in
# the locality regime of the full bench scale; the "small" scale exists
# for quick sanity runs and skips the strict shape assertions.
STRICT = SCALE != "small"


@pytest.fixture(scope="session")
def setups() -> dict:
    """One :class:`ExperimentSetup` per dataset family, built lazily."""
    cache: dict = {}

    def get(name: str) -> ExperimentSetup:
        if name not in cache:
            cache[name] = build_setup(name, scale=SCALE)
        return cache[name]

    get.names = dataset_names  # type: ignore[attr-defined]
    return get


def emit(report: str) -> None:
    """Print a report (visible with -s) and note the persisted copy."""
    print()
    print(report, end="")
