"""Vectorized batch engine vs the pure reference on a keyword workload.

The vectorized execution mode exists for one measurable reason: a batch
of keyword queries sharing keywords must run substantially faster than
the pure per-vertex pipelines, without changing a single answer.  This
benchmark runs the same fig6-style workload (overlapping keyword pairs,
so the batch sweep memo gets real reuse) through one ``BatchSession``
per mode, asserts bit-identical answers, and persists the timings to
``bench_results/batch_vectorized.json`` (+ text twin).

Measured per mode:

* the whole-workload wall time (min over interleaved rounds, fresh
  session each round so the sweep memo starts cold);
* the cold first query of a fresh session (``cold_query_ms``) — the
  memo cannot help there, so this isolates the kernel speedup from the
  batch-level reuse.
"""

from __future__ import annotations

import time

from benchmarks.conftest import SCALE, STRICT, emit
from repro.bench.reporting import write_json_report, write_report
from repro.core.batch import BatchSession
from repro.core.framework import PPKWS
from repro.core.vectorized import runtime_for
from repro.graph import LabeledGraph
from repro.graph.generators import assign_zipf_labels, barabasi_albert_graph

N_VERTICES = 1500 if SCALE == "small" else 6000
ROUNDS = 3
VOCAB = [f"kw{i}" for i in range(16)]
TAU = 8.0
K = 10
# Overlapping pairs: repeated (keyword, portal-offset) columns are what
# the batch sweep memo deduplicates across queries.
PAIRS = [
    ("kw0", "kw1"), ("kw1", "kw2"), ("kw0", "kw2"), ("kw0", "kw1"),
    ("kw2", "kw3"), ("kw1", "kw2"), ("kw3", "kw4"), ("kw0", "kw1"),
    ("kw4", "kw5"), ("kw2", "kw3"), ("kw1", "kw5"), ("kw0", "kw3"),
]
WORKLOAD = [
    {"keywords": list(p), "tau": TAU, "k": K, "require_public_private": True}
    for p in PAIRS
]


def _engine() -> PPKWS:
    pub = barabasi_albert_graph(N_VERTICES, m=8, seed=41, name="batchvec-pub")
    assign_zipf_labels(pub, VOCAB, labels_per_vertex=1.6, seed=41)
    priv = LabeledGraph("batchvec-priv")
    priv.add_edge(0, "m1")
    priv.add_edge("m1", "m2")
    priv.add_edge("m2", "m3")
    priv.add_edge("m3", 17)
    priv.add_labels("m1", {"kw0"})
    priv.add_labels("m2", {"kw1"})
    priv.add_labels("m3", {"kw2"})
    engine = PPKWS(pub, sketch_k=2, freeze=True)
    engine.attach("u", priv)
    return engine


def _one_round(engine: PPKWS, mode: str):
    session = BatchSession(engine, "u", execution_mode=mode)
    start = time.perf_counter()
    results = session.run_queries("blinks", WORKLOAD)
    return time.perf_counter() - start, results, session


def _cold_query_ms(engine: PPKWS, mode: str) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        session = BatchSession(engine, "u", execution_mode=mode)
        start = time.perf_counter()
        session.run_queries("blinks", WORKLOAD[:1])
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def test_batch_vectorized_speedup(benchmark):
    engine = _engine()
    _one_round(engine, "pure")  # warm-up (completion tables, probe tables)
    _one_round(engine, "vectorized")

    # Interleave rounds, alternating which mode goes first, so drift
    # (caches, frequency scaling, GC pauses) hits both sides evenly; the
    # min over rounds is the contention-free estimate.  Fresh sessions
    # each round: the sweep memo must earn its reuse within a workload.
    t_pure = t_vec = float("inf")
    pure_results = vec_results = None
    vec_session = None
    for r in range(ROUNDS):
        order = ("pure", "vectorized") if r % 2 == 0 else ("vectorized", "pure")
        for mode in order:
            elapsed, results, session = _one_round(engine, mode)
            if mode == "pure":
                t_pure, pure_results = min(t_pure, elapsed), results
            else:
                if elapsed < t_vec:
                    t_vec, vec_results, vec_session = elapsed, results, session

    # The whole point of the mode switch: identical answers.
    assert pure_results is not None and vec_results is not None
    for a, b in zip(pure_results, vec_results):
        assert [x.sort_key() for x in a.answers] == [
            x.sort_key() for x in b.answers
        ]

    cold_pure = _cold_query_ms(engine, "pure")
    cold_vec = _cold_query_ms(engine, "vectorized")
    speedup = t_pure / t_vec if t_vec else 1.0
    memo = vec_session.sweep_memo if vec_session is not None else None

    payload = {
        "scale": SCALE,
        "num_vertices": engine.public.num_vertices,
        "num_edges": engine.public.num_edges,
        "queries": len(WORKLOAD),
        "workload_s": {"pure": t_pure, "vectorized": t_vec},
        "cold_query_ms": {"pure": cold_pure, "vectorized": cold_vec},
        "speedup": speedup,
        "cold_speedup": cold_pure / cold_vec if cold_vec else 1.0,
        "sweep_memo": {
            "hits": memo.hits if memo is not None else 0,
            "misses": memo.misses if memo is not None else 0,
        },
        "vectorized_supported": runtime_for(engine) is not None,
    }
    write_json_report("batch_vectorized", payload)

    report = (
        f"Vectorized batch engine ({engine.public.num_vertices} vertices, "
        f"{engine.public.num_edges} edges, {len(WORKLOAD)} queries)\n"
        f"  workload    : pure {t_pure * 1e3:7.1f}ms  "
        f"vectorized {t_vec * 1e3:7.1f}ms ({speedup:.2f}x)\n"
        f"  cold query  : pure {cold_pure:7.1f}ms  "
        f"vectorized {cold_vec:7.1f}ms "
        f"({payload['cold_speedup']:.2f}x)\n"
        f"  sweep memo  : {payload['sweep_memo']['hits']} hits / "
        f"{payload['sweep_memo']['misses']} misses\n"
    )
    emit(report)
    write_report("batch_vectorized", report)

    benchmark.pedantic(
        lambda: _one_round(engine, "vectorized"), rounds=1, iterations=1
    )

    # Identical answers are asserted above (and pinned by
    # tests/test_vectorized_equivalence.py); here we hold the
    # performance contract of the redesign.  The gate applies whenever
    # the engine supports vectorized execution at all — including
    # single-core runners: the kernels batch work, they don't thread it.
    if STRICT and runtime_for(engine) is not None:
        assert speedup >= 3.0, report
        assert cold_vec < cold_pure, report
