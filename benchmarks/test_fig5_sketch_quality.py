"""Figure 5: approximation ratio (5a) and index size (5b) vs k.

Paper's finding: as ``k`` grows from 1 to 3, both sketches grow and get
more accurate, with PADS dominating ADS on both axes at every ``k``
(YAGO3's PADS error drops to ~1e-5 at k=3).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.reporting import render_series, write_report
from repro.sketches import build_ads, build_pads, measure_quality

KS = [1, 2, 3]
RATIOS: dict = {}
SIZES: dict = {}


@pytest.mark.parametrize("name", ["yago", "dbpedia", "ppdblp"])
def test_fig5_series(name, setups, benchmark):
    setup = setups(name)
    public = setup.dataset.public
    ranks = setup.engine.index.pagerank_scores

    ads_ratio, pads_ratio, ads_size, pads_size = [], [], [], []
    for k in KS:
        ads = build_ads(public, k=k, seed=1)
        pads = build_pads(public, k=k, ranks=ranks)
        ads_ratio.append(measure_quality(public, ads, 300, seed=5).mean_approx_ratio)
        pads_ratio.append(measure_quality(public, pads, 300, seed=5).mean_approx_ratio)
        ads_size.append(float(ads.total_entries))
        pads_size.append(float(pads.total_entries))
    RATIOS[name] = (ads_ratio, pads_ratio)
    SIZES[name] = (ads_size, pads_size)

    # One benchmarked build at the middle k for the timing table.
    benchmark.pedantic(
        lambda: build_pads(public, k=2, ranks=ranks), rounds=1, iterations=1
    )

    # Paper shape: accuracy improves with k; PADS beats ADS at every k.
    if STRICT:
        assert pads_ratio[-1] <= pads_ratio[0] + 1e-9
        for a, p in zip(ads_ratio, pads_ratio):
            assert p <= a + 0.02


def test_fig5_report(setups, benchmark):
    assert RATIOS, "parametrized series must run first"
    names, ratio_series, size_series = [], [], []
    for ds, (a, p) in RATIOS.items():
        names += [f"{ds}(ADS)", f"{ds}(PADS)"]
        ratio_series += [a, p]
    for ds, (a, p) in SIZES.items():
        size_series += [a, p]
    report = render_series(
        "Fig 5a: approximation ratio vs k", "k", KS, ratio_series, names
    )
    report += "\n" + render_series(
        "Fig 5b: index size (entries) vs k", "k", KS, size_series, names
    )
    emit(report)
    write_report("fig5_sketch_quality", report)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
