"""Figure 6 s-t: effect of the Sec.-VI optimizations on PP-r-clique.

Paper's finding: reduced answer refinement + DP answer completion give a
~55.8% (YAGO3) / ~28.8% (PP-DBLP) average improvement when enabled.
This benchmark runs the same query set with the optimizations on and
off (fresh engines, same public index) and reports both columns.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.reporting import render_table, write_json_report, write_report
from repro.core.framework import PPKWS, QueryOptions
from repro.datasets.queries import generate_keyword_queries

TAU = 5.0
NUM_QUERIES = 10
REPORTS: dict = {}
JSON_REPORTS: dict = {}


@pytest.mark.parametrize("name", ["yago", "ppdblp"])
def test_fig6_optimizations(name, setups, benchmark):
    setup = setups(name)
    # Two engines sharing the (expensive) public index, differing only in
    # the optimization flags.
    on_engine = setup.engine
    off_engine = PPKWS(
        setup.dataset.public,
        options=QueryOptions(reduced_refinement=False, dp_completion=False),
        index=setup.engine.index,
    )
    off_engine.attach(setup.owner, setup.private)

    queries = generate_keyword_queries(
        setup.dataset.public, setup.private,
        num_queries=NUM_QUERIES, tau=TAU, seed=404,
    )
    def timed(engine, q):
        """Best-of-3 run: (total_seconds, refine+complete_seconds, result)."""
        best = (float("inf"), float("inf"), None)
        for _ in range(3):
            start = time.perf_counter()
            r = engine.rclique(setup.owner, list(q.keywords), q.tau, k=10)
            total = time.perf_counter() - start
            steps = r.breakdown.arefine + r.breakdown.acomplete
            if total < best[0]:
                best = (total, steps, r)
        return best

    rows = []
    json_queries = []
    total_on = total_off = steps_on = steps_off = 0.0
    for i, q in enumerate(queries, start=1):
        t_on, s_on, r_on = timed(on_engine, q)
        t_off, s_off, r_off = timed(off_engine, q)
        total_on += t_on
        total_off += t_off
        steps_on += s_on
        steps_off += s_off
        rows.append([f"Q{i}", t_on * 1000, t_off * 1000, f"{t_off / t_on:.2f}x"])
        json_queries.append({
            "query": f"Q{i}",
            "with_opt_ms": t_on * 1000,
            "without_opt_ms": t_off * 1000,
            "ratio": t_off / t_on if t_on else None,
        })
        # Optimizations must not change the answers.
        assert [a.sort_key() for a in r_on.answers] == [
            a.sort_key() for a in r_off.answers
        ]

    improvement = 1.0 - total_on / total_off if total_off else 0.0
    step_improvement = 1.0 - steps_on / steps_off if steps_off else 0.0
    REPORTS[name] = render_table(
        f"Fig 6s-t (PP-r-clique optimizations, {name}) — improvement "
        f"{improvement:.1%} total, {step_improvement:.1%} on the "
        f"ARefine+AComplete steps the optimizations target",
        ["query", "with OPT (ms)", "without OPT (ms)", "ratio"],
        rows,
    )
    JSON_REPORTS[name] = {
        "queries": json_queries,
        "improvement": improvement,
        "step_improvement": step_improvement,
    }

    q = queries[0]
    benchmark.pedantic(
        lambda: on_engine.rclique(setup.owner, list(q.keywords), q.tau, k=10),
        rounds=1, iterations=1,
    )

    # Paper shape: optimizations help (they target ARefine + AComplete;
    # total time additionally carries PEval, identical in both engines).
    if STRICT:
        assert steps_on <= steps_off * 1.05, f"optimizations hurt on {name}"
        assert total_on <= total_off * 1.10, f"optimizations hurt on {name}"


def test_fig6_optimizations_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[n] for n in REPORTS)
    emit(report)
    write_report("fig6_optimizations", report)
    write_json_report(
        "fig6_optimizations",
        {"figure": "fig6_optimizations", "datasets": JSON_REPORTS},
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
