"""Sensitivity sweep: the distance bound ``tau`` vs the PPKWS advantage.

The locality argument predicts a trend: as ``tau`` grows, the portal
balls PPKWS touches swell toward the whole graph and the baseline's
relative disadvantage shrinks.  This sweep measures PP-Blinks vs the
baseline across ``tau`` together with the measured ball coverage, making
the crossover (if any) visible — a sensitivity study the paper's fixed
``tau = 5`` setting leaves implicit.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.harness import run_keyword_experiment, speedups
from repro.bench.reporting import render_table, write_report
from repro.datasets.queries import generate_keyword_queries
from repro.graph import ball_coverage

TAUS = [3.0, 4.0, 5.0, 6.0]
REPORTS: dict = {}


@pytest.mark.parametrize("name", ["yago", "ppdblp"])
def test_sweep_tau(name, setups, benchmark):
    setup = setups(name)
    rows = []
    speedup_by_tau = {}
    for tau in TAUS:
        queries = generate_keyword_queries(
            setup.dataset.public, setup.private,
            num_queries=4, tau=tau, seed=909,
        )
        timings = run_keyword_experiment(
            setup.engine, setup.owner, "blinks", queries, setup.combined, k=10
        )
        stats = speedups(timings)
        coverage = ball_coverage(setup.dataset.public, tau, samples=8, seed=11)
        speedup_by_tau[tau] = stats["total"]
        rows.append([
            tau,
            f"{coverage:.1%}",
            stats["total"],
            stats["mean"],
            sum(t.pp_answers for t in timings),
        ])
    REPORTS[name] = render_table(
        f"Sweep: tau vs PP-Blinks advantage ({name})",
        ["tau", "ball coverage", "total speedup", "mean speedup", "answers"],
        rows,
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if STRICT:
        # PPKWS must keep winning somewhere in the sweep range.
        assert max(speedup_by_tau.values()) > 1.0


def test_sweep_tau_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[n] for n in REPORTS)
    emit(report)
    write_report("sweep_tau", report)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
