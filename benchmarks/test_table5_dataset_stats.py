"""Table V: statistics of the dataset stand-ins vs the paper's datasets.

Not a timing experiment — this benchmark records the structural
characteristics of our synthetic stand-ins next to the paper's Tab. V so
every run documents exactly what the performance numbers were measured
on (|V|, |E|, avg labels/vertex, private graph sizes, portal counts).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench.reporting import render_table, write_report

# The paper's Tab. V values, for the side-by-side.
PAPER = {
    "yago": ("2,635,317", "5,260,573", 3.79),
    "dbpedia": ("5,795,123", "15,752,299", 3.72),
    "ppdblp": ("2,221,139", "5,432,667", 10.0),
}
ROWS = []


@pytest.mark.parametrize("name", ["yago", "dbpedia", "ppdblp"])
def test_table5_row(name, setups, benchmark):
    setup = setups(name)
    public = setup.dataset.public
    private = setup.private
    portals = len(setup.engine.attachment(setup.owner).portals)
    paper_v, paper_e, paper_labels = PAPER[name]
    ROWS.append([
        name,
        public.num_vertices,
        public.num_edges,
        f"{public.average_labels_per_vertex():.2f}",
        private.num_vertices,
        private.num_edges,
        portals,
        f"{paper_v}/{paper_e}/{paper_labels}",
    ])

    benchmark.pedantic(lambda: public.stats(), rounds=1, iterations=1)

    # The stand-ins must preserve the label-density characteristics.
    assert public.average_labels_per_vertex() == pytest.approx(
        paper_labels, rel=0.25
    )
    assert private.num_vertices < public.num_vertices / 10


def test_table5_report(setups, benchmark):
    assert ROWS
    report = render_table(
        "Table V: dataset stand-in statistics (paper-scale in last column)",
        ["dataset", "|V|", "|E|", "labels/v", "|V'|", "|E'|", "portals",
         "paper |V|/|E|/labels"],
        ROWS,
    )
    emit(report)
    write_report("table5_dataset_stats", report)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
