"""Concurrent-serving throughput benchmark.

The serving core exists for one measurable reason: a workload of
read-only queries spread over several networks should be served at a
multiple of the old serial facade's throughput.  On a GIL-bound
single-core runner thread overlap alone cannot multiply CPU-bound
throughput, so the comparison is between the two *serving models*:

* **serial / no cache** — the pre-redesign model: one thread calling
  ``execute`` in a loop, every query fully evaluated;
* **4 workers / no cache, thread mode** — pool overlap only (reported
  for transparency; on one core this hovers around 1x);
* **4 workers / no cache, process mode** — the shard pool
  (:mod:`repro.serving.shards`): worker threads become I/O pumps and
  queries evaluate in shard processes against shared-memory graph
  replicas, so on a multi-core runner CPU-bound throughput finally
  multiplies (on one core the IPC overhead makes it *slower* — the
  strict ``> 2.5x`` gate only applies with four or more cores);
* **4 workers / answer cache** — the new serving core: the pool plus
  the cross-request answer cache, so repeated queries are served
  without touching the engine.

Both no-cache pool runs land in the JSON under ``modes.threaded`` and
``modes.process`` with their own ``workers_only_speedup``; the
top-level ``workers_only_speedup`` stays the threaded number for
comparability with older runs.

The workload is deliberately repetitive (each distinct query recurs
``REPEATS`` times across the batch on average), which is exactly the
regime the answer cache targets, and requests are spread over the
networks by the Zipfian tenant-popularity model
(:func:`repro.datasets.queries.zipfian_tenant_workload`) rather than
round-robin: a couple of hot tenants take most of the traffic, like real
multi-tenant serving.  The distinct-query count and the per-tenant
request distribution are reported so both skews are visible.
Everything is persisted to ``bench_results/serving_throughput.json``.
"""

from __future__ import annotations

import json
import os
import time
from statistics import median

from benchmarks.conftest import SCALE, STRICT, emit
from repro.bench.reporting import write_report
from repro.datasets.queries import zipfian_tenant_workload
from repro.graph import LabeledGraph
from repro.graph.generators import assign_zipf_labels, barabasi_albert_graph
from repro.service import PPKWSService
from repro.serving import ServiceExecutor

N_VERTICES = 300 if SCALE == "small" else 700
NETWORKS = 4
WORKERS = 4
REPEATS = 5
ZIPF_EXPONENT = 1.1
WORKLOAD_SEED = 53
TAU = 5.0
VOCABULARY = [f"kw{i}" for i in range(16)]

#: distinct read-only queries per network (mixed rooted / k-nk ops)
QUERY_SHAPES = [
    {"op": "blinks", "keywords": ["kw0", "kw1"], "tau": TAU, "k": 5},
    {"op": "blinks", "keywords": ["kw1", "kw3"], "tau": TAU, "k": 5},
    {"op": "rclique", "keywords": ["kw0", "kw5"], "tau": TAU, "k": 5},
    {"op": "knk", "source": "m1", "keyword": "kw3", "k": 5},
    {"op": "knk", "source": "m2", "keyword": "kw4", "k": 5},
    {"op": "knk_multi", "source": "m1", "keywords": ["kw2", "kw4"], "k": 5},
]


def _public_graph() -> LabeledGraph:
    g = barabasi_albert_graph(N_VERTICES, m=2, seed=47, name="serving-pub")
    assign_zipf_labels(g, VOCABULARY, labels_per_vertex=1.5, seed=47)
    return g


def _private_graph() -> LabeledGraph:
    priv = LabeledGraph("serving-priv")
    priv.add_edge(0, "m1")
    priv.add_edge("m1", "m2")
    priv.add_edge("m2", 17)
    priv.add_labels("m1", {"kw0"})
    priv.add_labels("m2", {"kw1"})
    return priv


def _build_service(cached: bool) -> PPKWSService:
    svc = PPKWSService(
        sketch_k=2,
        answer_cache_size=4096 if cached else 0,
        answer_cache_ttl_s=None,
    )
    pub = _public_graph()
    priv = _private_graph()
    for i in range(NETWORKS):
        svc.create_network(f"net{i}", pub)
        svc.attach_user(f"net{i}", "u", priv)
    return svc


def _workload() -> list:
    """NETWORKS x QUERY_SHAPES x REPEATS requests, Zipf-skewed by tenant.

    The query shape cycles (so the same key never runs back-to-back) while
    each request's network comes from the seeded Zipfian tenant draw —
    ``net0`` is the hot tenant, ``net3`` the cold tail."""
    total = NETWORKS * len(QUERY_SHAPES) * REPEATS
    tenants = zipfian_tenant_workload(
        [f"net{n}" for n in range(NETWORKS)], total,
        exponent=ZIPF_EXPONENT, seed=WORKLOAD_SEED,
    )
    requests = []
    for i, network in enumerate(tenants):
        req = dict(QUERY_SHAPES[i % len(QUERY_SHAPES)])
        req.update({"network": network, "owner": "u"})
        requests.append(req)
    return requests


def _assert_all_ok(responses) -> None:
    bad = [r for r in responses if r.get("status") != "ok"]
    assert not bad, f"{len(bad)} non-ok responses, first: {bad[:1]}"


def _run_serial(svc, requests) -> float:
    start = time.perf_counter()
    responses = [svc.execute(r) for r in requests]
    elapsed = time.perf_counter() - start
    _assert_all_ok(responses)
    return elapsed


def _run_pooled(svc, requests, mode: str = "thread") -> float:
    with ServiceExecutor(svc, workers=WORKERS, mode=mode) as pool:
        start = time.perf_counter()
        responses = pool.execute_many(requests)
        elapsed = time.perf_counter() - start
    _assert_all_ok(responses)
    return elapsed


def _cache_latencies(svc) -> tuple:
    """Median cold latency vs min cache-hit latency on fresh keys."""
    colds, hits = [], []
    for k in (7, 8, 9):  # ks unused by the workload -> guaranteed cold
        req = {
            "op": "blinks", "network": "net0", "owner": "u",
            "keywords": ["kw0", "kw1"], "tau": TAU, "k": k,
        }
        start = time.perf_counter()
        cold = svc.execute(req)
        colds.append(time.perf_counter() - start)
        assert cold["status"] == "ok" and "cached" not in cold
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            hit = svc.execute(req)
            best = min(best, time.perf_counter() - start)
            assert hit["cached"] is True
        hits.append(best)
    return median(colds), median(hits)


def test_serving_throughput(benchmark):
    requests = _workload()
    distinct = len({json.dumps(r, sort_keys=True) for r in requests})
    tenant_counts: dict = {}
    for r in requests:
        tenant_counts[r["network"]] = tenant_counts.get(r["network"], 0) + 1

    serial_svc = _build_service(cached=False)
    serial_svc.execute(requests[0])  # warm-up
    serial_s = _run_serial(serial_svc, requests)

    pooled_nocache_svc = _build_service(cached=False)
    pooled_nocache_svc.execute(requests[0])
    pooled_nocache_s = _run_pooled(pooled_nocache_svc, requests)

    process_svc = _build_service(cached=False)
    process_svc.execute(requests[0])
    process_s = _run_pooled(process_svc, requests, mode="process")

    pooled_cached_svc = _build_service(cached=True)
    pooled_cached_s = _run_pooled(pooled_cached_svc, requests)

    cold_s, hit_s = _cache_latencies(pooled_cached_svc)

    n = len(requests)
    cores = len(os.sched_getaffinity(0))
    results = {
        "scale": SCALE,
        "networks": NETWORKS,
        "workers": WORKERS,
        "cores": cores,
        "requests": n,
        "distinct_requests": distinct,
        "zipf_exponent": ZIPF_EXPONENT,
        "tenant_requests": tenant_counts,
        "serial_no_cache": {"seconds": serial_s, "rps": n / serial_s},
        "workers_no_cache": {
            "seconds": pooled_nocache_s, "rps": n / pooled_nocache_s,
        },
        "workers_cached": {
            "seconds": pooled_cached_s, "rps": n / pooled_cached_s,
        },
        "modes": {
            "threaded": {
                "seconds": pooled_nocache_s,
                "rps": n / pooled_nocache_s,
                "workers_only_speedup": serial_s / pooled_nocache_s,
            },
            "process": {
                "seconds": process_s,
                "rps": n / process_s,
                "workers_only_speedup": serial_s / process_s,
            },
        },
        "throughput_speedup": serial_s / pooled_cached_s,
        "workers_only_speedup": serial_s / pooled_nocache_s,
        "cold_query_ms": cold_s * 1e3,
        "cached_query_ms": hit_s * 1e3,
        "cache_hit_speedup": cold_s / hit_s if hit_s else float("inf"),
        "answer_cache": pooled_cached_svc.answer_cache.stats(),
    }
    out_dir = os.environ.get(
        "REPRO_BENCH_DIR", os.path.join(os.getcwd(), "bench_results")
    )
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "serving_throughput.json"), "w") as fh:
        json.dump(results, fh, indent=2)

    tenant_mix = ", ".join(
        f"{net}={tenant_counts.get(net, 0)}"
        for net in sorted(tenant_counts)
    )
    report = (
        f"Concurrent serving ({NETWORKS} networks, {n} requests, "
        f"{distinct} distinct; Zipf s={ZIPF_EXPONENT}: {tenant_mix}; "
        f"{cores} cores)\n"
        f"  serial, no cache   : {serial_s:7.3f}s "
        f"({n / serial_s:7.1f} req/s)\n"
        f"  {WORKERS} workers, no cache: {pooled_nocache_s:7.3f}s "
        f"({n / pooled_nocache_s:7.1f} req/s, "
        f"{results['workers_only_speedup']:.2f}x, thread mode)\n"
        f"  {WORKERS} shard processes : {process_s:7.3f}s "
        f"({n / process_s:7.1f} req/s, "
        f"{results['modes']['process']['workers_only_speedup']:.2f}x, "
        f"process mode)\n"
        f"  {WORKERS} workers + cache : {pooled_cached_s:7.3f}s "
        f"({n / pooled_cached_s:7.1f} req/s, "
        f"{results['throughput_speedup']:.2f}x)\n"
        f"  cache hit latency  : cold {cold_s * 1e3:7.2f}ms  "
        f"hit {hit_s * 1e3:7.3f}ms "
        f"({results['cache_hit_speedup']:.0f}x)\n"
    )
    emit(report)
    write_report("serving_throughput", report)

    benchmark.pedantic(
        lambda: _run_pooled(_build_service(cached=True), requests),
        rounds=1, iterations=1,
    )

    # The acceptance contract of the serving redesign.
    if STRICT:
        assert results["throughput_speedup"] >= 2.0, report
        assert results["cache_hit_speedup"] >= 10.0, report
    # The process tier can only beat the GIL where there are cores to
    # run on; on fewer the IPC tax dominates and the number is reported
    # honestly instead of asserted.
    if STRICT and cores >= 4:
        assert results["modes"]["process"]["workers_only_speedup"] > 2.5, (
            report
        )
