"""Figure 6 g-l: PP-Blinks vs Baseline-Blinks, plus step breakdown.

Paper's finding: PP-Blinks wins on every dataset (22x-315x there; our
baseline shares the same optimized traversal core, so the factors are
smaller but the ordering holds), and AComplete dominates the PPKWS time
— on PP-DBLP it is ~99.9% of the query.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.harness import (
    run_keyword_experiment,
    select_representative,
    speedups,
)
from repro.bench.reporting import (
    render_breakdown,
    render_query_comparison,
    timings_payload,
    write_json_report,
    write_report,
)
from repro.datasets.queries import generate_keyword_queries

TAU = 5.0
NUM_QUERIES = 10
REPORTS: dict = {}
JSON_REPORTS: dict = {}


@pytest.mark.parametrize("name", ["yago", "dbpedia", "ppdblp"])
def test_fig6_blinks(name, setups, benchmark):
    setup = setups(name)
    queries = generate_keyword_queries(
        setup.dataset.public, setup.private,
        num_queries=NUM_QUERIES, tau=TAU, seed=202,
    )
    timings = run_keyword_experiment(
        setup.engine, setup.owner, "blinks", queries, setup.combined, k=10
    )
    chosen = select_representative(timings, 10)
    REPORTS[name] = (
        render_query_comparison(
            f"Fig 6g-i (Blinks, {name}): PP vs baseline", chosen
        )
        + render_breakdown(f"Fig 6j-l (Blinks, {name}): breakdown", chosen)
    )
    JSON_REPORTS[name] = timings_payload(chosen)

    q = queries[0]
    benchmark.pedantic(
        lambda: setup.engine.blinks(setup.owner, list(q.keywords), q.tau, k=10),
        rounds=1, iterations=1,
    )

    stats = speedups(timings)
    if STRICT:
        assert stats["total"] > 1.0, f"PP-Blinks slower than baseline on {name}"


def test_fig6_blinks_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[n] for n in REPORTS)
    emit(report)
    write_report("fig6_blinks", report)
    write_json_report(
        "fig6_blinks", {"figure": "fig6_blinks", "datasets": JSON_REPORTS}
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
