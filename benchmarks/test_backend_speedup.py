"""Frozen-backend speed/memory micro-benchmark.

The frozen CSR backend exists for two measurable reasons: interning the
public graph must not slow index construction down (the sketch builder
gets an id-specialized fast path), and the flat ``array`` buffers must
be strictly smaller than the dict-of-dicts adjacency they replace.  This
benchmark builds the same public index over both backends, times a
query workload on both engines, deep-measures the adjacency payloads
with ``sys.getsizeof``, and persists everything to
``bench_results/backend_speedup.json``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from array import array
from statistics import median

from benchmarks.conftest import SCALE, STRICT, emit
from repro.bench.reporting import write_report
from repro.core.framework import PPKWS, PublicIndex
from repro.graph import LabeledGraph, freeze
from repro.graph.generators import assign_zipf_labels, barabasi_albert_graph

N_VERTICES = 1200 if SCALE == "small" else 4000
ROUNDS = 9
VOCABULARY = [f"kw{i}" for i in range(24)]
QUERIES = [["kw0", "kw1"], ["kw1", "kw3"], ["kw0", "kw5"], ["kw2", "kw4"]]
TAU = 5.0


def _public_graph() -> LabeledGraph:
    g = barabasi_albert_graph(N_VERTICES, m=3, seed=41, name="speedup-pub")
    assign_zipf_labels(g, VOCABULARY, labels_per_vertex=1.6, seed=41)
    return g


def _private_graph(public: LabeledGraph) -> LabeledGraph:
    priv = LabeledGraph("speedup-priv")
    # Two portals into the public graph plus a small private tail.
    priv.add_edge(0, "m1")
    priv.add_edge("m1", "m2")
    priv.add_edge("m2", "m3")
    priv.add_edge("m3", 17)
    priv.add_labels("m1", {"kw0"})
    priv.add_labels("m2", {"kw1"})
    priv.add_labels("m3", {"kw2"})
    return priv


def _deep_sizeof(obj, seen=None) -> int:
    """Recursive ``sys.getsizeof`` over containers (shared objects once)."""
    if seen is None:
        seen = set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for k, v in obj.items():
            size += _deep_sizeof(k, seen) + _deep_sizeof(v, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += _deep_sizeof(item, seen)
    elif isinstance(obj, array):
        pass  # getsizeof already covers the flat buffer
    return size


def _adjacency_bytes_dict(graph: LabeledGraph) -> int:
    """Deep size of the dict backend's adjacency storage."""
    return _deep_sizeof({v: dict(graph.neighbor_items(v)) for v in graph.vertices()})


def _adjacency_bytes_frozen(frozen) -> int:
    indptr, indices, weights = frozen.csr()
    return (
        _deep_sizeof(indptr)
        + _deep_sizeof(indices)
        + _deep_sizeof(weights)
        + _deep_sizeof(frozen.vertex_table)
        + _deep_sizeof(dict(frozen._id_of))
    )


def _one_build(graph, freeze_flag: bool) -> float:
    start = time.perf_counter()
    PublicIndex.build(graph, k=2, freeze=freeze_flag)
    return time.perf_counter() - start


def _time_queries(engine, owner: str) -> float:
    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for keywords in QUERIES:
            engine.blinks(owner, keywords, TAU, k=10)
            engine.rclique(owner, keywords, TAU, k=10)
        engine.knk(owner, "m1", "kw3", k=5)
        times.append(time.perf_counter() - start)
    return median(times)


def test_backend_speedup(benchmark):
    pub = _public_graph()
    priv = _private_graph(pub)
    frozen_pub = freeze(pub)

    # Interleave rounds, alternating which backend goes first, so drift
    # (caches, frequency scaling, GC pauses) hits both sides evenly; the
    # min over rounds is the contention-free estimate.
    _one_build(pub, False), _one_build(frozen_pub, True)  # warm-up
    build_dict = build_frozen = float("inf")
    for r in range(ROUNDS):
        if r % 2 == 0:
            build_dict = min(build_dict, _one_build(pub, False))
            build_frozen = min(build_frozen, _one_build(frozen_pub, True))
        else:
            build_frozen = min(build_frozen, _one_build(frozen_pub, True))
            build_dict = min(build_dict, _one_build(pub, False))

    engine_dict = PPKWS(pub, sketch_k=2, freeze=False)
    engine_frozen = PPKWS(frozen_pub, sketch_k=2)
    engine_dict.attach("u", priv)
    engine_frozen.attach("u", priv)
    engine_dict.blinks("u", QUERIES[0], TAU, k=10)  # warm-up
    engine_frozen.blinks("u", QUERIES[0], TAU, k=10)
    query_dict = _time_queries(engine_dict, "u")
    query_frozen = _time_queries(engine_frozen, "u")

    mem_dict = _adjacency_bytes_dict(pub)
    mem_frozen = _adjacency_bytes_frozen(engine_frozen.public)

    results = {
        "scale": SCALE,
        "num_vertices": pub.num_vertices,
        "num_edges": pub.num_edges,
        "index_build_s": {"dict": build_dict, "frozen": build_frozen},
        "query_workload_s": {"dict": query_dict, "frozen": query_frozen},
        "adjacency_bytes": {"dict": mem_dict, "frozen": mem_frozen},
        "build_speedup": build_dict / build_frozen if build_frozen else 1.0,
        "query_speedup": query_dict / query_frozen if query_frozen else 1.0,
        "memory_ratio": mem_frozen / mem_dict if mem_dict else 1.0,
    }
    out_dir = os.environ.get(
        "REPRO_BENCH_DIR", os.path.join(os.getcwd(), "bench_results")
    )
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "backend_speedup.json"), "w") as fh:
        json.dump(results, fh, indent=2)

    report = (
        f"Frozen vs dict backend ({pub.num_vertices} vertices, "
        f"{pub.num_edges} edges)\n"
        f"  index build : dict {build_dict:7.3f}s  frozen {build_frozen:7.3f}s "
        f"({results['build_speedup']:.2f}x)\n"
        f"  query work  : dict {query_dict * 1e3:7.1f}ms  "
        f"frozen {query_frozen * 1e3:7.1f}ms "
        f"({results['query_speedup']:.2f}x)\n"
        f"  adjacency   : dict {mem_dict / 1024:.0f}KiB  "
        f"frozen {mem_frozen / 1024:.0f}KiB "
        f"({results['memory_ratio']:.2f}x)\n"
    )
    emit(report)
    write_report("backend_speedup", report)

    benchmark.pedantic(
        lambda: PublicIndex.build(frozen_pub, k=2), rounds=1, iterations=1
    )

    # Equal answers are covered by tests/test_backend_equivalence.py; here
    # we hold the performance contract of the refactor.
    assert mem_frozen < mem_dict, report
    if STRICT:
        assert build_frozen <= build_dict * 1.05, report
