"""Observability fast-path micro-benchmark.

The pipeline instrumentation (:mod:`repro.obs.hooks`) must be free when
unused: with no registry installed every query pays a single
``installed() is None`` check at pipeline exit — never per-expansion
work.  This benchmark runs the Fig.-6 Blinks workload twice — with
observability uninstalled vs a live :class:`MetricsRegistry` (which pays
histogram + counter updates per query) — and asserts the *uninstalled*
path does not regress against the instrumented one by more than the
allowed overhead margin.

Mirrors ``test_budget_overhead.py``: the check is one-sided, so the
instrumentation may cost something, but opting out must remain (close
to) free.
"""

from __future__ import annotations

import time
from statistics import median

from benchmarks.conftest import STRICT, emit
from repro import obs
from repro.bench.reporting import write_report
from repro.datasets.queries import generate_keyword_queries
from repro.obs import MetricsRegistry

TAU = 5.0
NUM_QUERIES = 8
ROUNDS = 5
# no-registry median must stay within 5% of the instrumented median
MAX_OVERHEAD = 1.05


def _run_workload(engine, owner, queries) -> float:
    start = time.perf_counter()
    for q in queries:
        engine.blinks(owner, list(q.keywords), q.tau, k=10)
    return time.perf_counter() - start


def test_obs_fast_path_overhead(setups, benchmark):
    setup = setups("ppdblp")
    queries = generate_keyword_queries(
        setup.dataset.public, setup.private,
        num_queries=NUM_QUERIES, tau=TAU, seed=77,
    )
    registry = MetricsRegistry()
    obs.uninstall()
    # interleave variants so drift (caches, frequency scaling) hits both
    plain_times, instrumented_times = [], []
    _run_workload(setup.engine, setup.owner, queries)  # warm-up
    try:
        for _ in range(ROUNDS):
            obs.uninstall()
            plain_times.append(
                _run_workload(setup.engine, setup.owner, queries)
            )
            obs.install(registry)
            instrumented_times.append(
                _run_workload(setup.engine, setup.owner, queries)
            )
    finally:
        obs.uninstall()
    plain, instrumented = median(plain_times), median(instrumented_times)
    ratio = plain / instrumented if instrumented else 1.0

    observed = registry.histogram(
        "ppkws_step_seconds", labels={"pipeline": "blinks", "step": "peval"}
    )
    report = (
        "Observability fast-path overhead (Blinks, ppdblp)\n"
        f"  no registry       median: {plain * 1000:8.2f} ms\n"
        f"  registry installed median: {instrumented * 1000:8.2f} ms\n"
        f"  none/instrumented ratio: {ratio:.3f} (must be < {MAX_OVERHEAD})\n"
        f"  samples recorded: {observed.count if observed else 0}\n"
    )
    emit(report)
    write_report("obs_overhead", report)

    benchmark.pedantic(
        lambda: _run_workload(setup.engine, setup.owner, queries),
        rounds=1, iterations=1,
    )
    # the instrumented rounds really did record
    assert observed is not None
    assert observed.count == ROUNDS * NUM_QUERIES
    if STRICT:
        assert ratio < MAX_OVERHEAD, report
