"""Table VI: ADS vs PADS — construction time, size, approximation ratio.

Paper's finding (Tab. VI): PADS is ~26-29% smaller than ADS and its
approximation ratio is dramatically closer to 1 (e.g. 1.00001 vs 1.08 on
YAGO3), at comparable construction time.  This benchmark rebuilds both
indexes on each dataset family and reports the same three columns.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.reporting import render_table, write_report
from repro.sketches import build_ads, build_pads, measure_quality, timed_build

K = 2
ROWS = []


@pytest.mark.parametrize("name", ["yago", "dbpedia", "ppdblp"])
def test_table6_row(name, setups, benchmark):
    setup = setups(name)
    public = setup.dataset.public

    ads, ads_time = timed_build(lambda: build_ads(public, k=K, seed=1))
    # PADS construction is the benchmarked quantity (PageRank reused from
    # the engine's index, as a production deployment would).
    ranks = setup.engine.index.pagerank_scores
    pads = benchmark.pedantic(
        lambda: build_pads(public, k=K, ranks=ranks), rounds=1, iterations=1
    )
    _, pads_time = timed_build(lambda: build_pads(public, k=K, ranks=ranks))

    ads_quality = measure_quality(public, ads, num_pairs=400, seed=7)
    pads_quality = measure_quality(public, pads, num_pairs=400, seed=7)

    ROWS.append(
        [
            name,
            f"{ads_time:.2f}s",
            f"{pads_time:.2f}s",
            ads.total_entries,
            pads.total_entries,
            f"{ads_quality.mean_approx_ratio:.5f}",
            f"{pads_quality.mean_approx_ratio:.5f}",
        ]
    )

    # Paper shape: PADS is smaller and at least as accurate as ADS.
    if STRICT:
        assert pads.total_entries <= ads.total_entries
        assert pads_quality.mean_approx_ratio <= ads_quality.mean_approx_ratio + 0.02


def test_table6_report(setups, benchmark):
    """Render the collected rows as the paper's Tab. VI."""
    assert ROWS, "parametrized rows must run first"
    report = render_table(
        "Table VI: characteristics of PADS and ADS (k=%d)" % K,
        [
            "dataset",
            "ADS build",
            "PADS build",
            "ADS size",
            "PADS size",
            "ADS approx",
            "PADS approx",
        ],
        ROWS,
    )
    emit(report)
    write_report("table6_index_characteristics", report)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
