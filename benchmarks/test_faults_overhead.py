"""Fault-injection fast-path micro-benchmark.

The zero-overhead-when-disabled contract of :mod:`repro.faults`: with no
schedule active every production hook is one module-global read plus a
``None`` comparison per operation.  This benchmark drives the service
facade (whose request path crosses the ``service.execute``, rwlock and
cache fault points) with injection disabled vs a *benign* active
schedule — specs armed at hit counts the workload never reaches, so the
bookkeeping (per-point hit counters under a lock) runs but no fault
ever fires — and asserts the disabled path does not regress against the
armed one by more than the allowed margin.

Mirrors ``test_obs_overhead.py``: one-sided, interleaved rounds.
"""

from __future__ import annotations

import time
from statistics import median

from benchmarks.conftest import STRICT, emit
from repro import faults
from repro.bench.reporting import write_report
from repro.datasets.queries import generate_keyword_queries
from repro.faults import FaultSchedule, FaultSpec
from repro.faults.points import CACHE_LOOKUP, RWLOCK_ACQUIRE_READ, SERVICE_EXECUTE
from repro.service import PPKWSService

TAU = 5.0
NUM_QUERIES = 8
ROUNDS = 5
# disabled-path median must stay within 5% of the armed-schedule median
MAX_OVERHEAD = 1.05
#: far beyond anything ROUNDS * NUM_QUERIES requests can reach
NEVER = 10_000_000


def _benign_schedule() -> FaultSchedule:
    return FaultSchedule([
        FaultSpec(SERVICE_EXECUTE, "raise", at_hit=NEVER),
        FaultSpec(RWLOCK_ACQUIRE_READ, "raise", at_hit=NEVER),
        FaultSpec(CACHE_LOOKUP, "raise", at_hit=NEVER),
    ])


def _run_workload(service, owner, queries) -> float:
    start = time.perf_counter()
    for i, q in enumerate(queries):
        response = service.execute({
            "op": "blinks", "network": "bench", "owner": owner,
            "keywords": list(q.keywords), "tau": q.tau, "k": 10,
            "no_cache": True,  # hit the engine (and the hooks) every time
        })
        assert response["status"] in ("ok", "degraded"), response
    return time.perf_counter() - start


def test_faults_fast_path_overhead(setups, benchmark):
    setup = setups("ppdblp")
    service = PPKWSService(sketch_k=2)
    service.create_network("bench", setup.dataset.public)
    service.attach_user("bench", setup.owner, setup.private)
    queries = generate_keyword_queries(
        setup.dataset.public, setup.private,
        num_queries=NUM_QUERIES, tau=TAU, seed=77,
    )
    faults.deactivate()
    disabled_times, armed_times = [], []
    schedule = _benign_schedule()
    _run_workload(service, setup.owner, queries)  # warm-up
    try:
        for _ in range(ROUNDS):
            faults.deactivate()
            disabled_times.append(
                _run_workload(service, setup.owner, queries)
            )
            with faults.injected(schedule):
                armed_times.append(
                    _run_workload(service, setup.owner, queries)
                )
    finally:
        faults.deactivate()
    disabled, armed = median(disabled_times), median(armed_times)
    ratio = disabled / armed if armed else 1.0

    report = (
        "Fault-injection fast-path overhead (Blinks via service, ppdblp)\n"
        f"  injection disabled median: {disabled * 1000:8.2f} ms\n"
        f"  benign schedule    median: {armed * 1000:8.2f} ms\n"
        f"  disabled/armed ratio: {ratio:.3f} (must be < {MAX_OVERHEAD})\n"
        f"  hits counted at service.execute: "
        f"{schedule.hits(SERVICE_EXECUTE)}\n"
    )
    emit(report)
    write_report("faults_overhead", report)

    benchmark.pedantic(
        lambda: _run_workload(service, setup.owner, queries),
        rounds=1, iterations=1,
    )
    # the armed rounds really did count hits — and injected nothing
    assert schedule.hits(SERVICE_EXECUTE) == ROUNDS * NUM_QUERIES
    assert schedule.total_injected() == 0
    if STRICT:
        assert ratio < MAX_OVERHEAD, report
