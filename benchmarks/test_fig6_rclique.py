"""Figure 6 a-f: PP-r-clique vs Baseline-r-clique, plus step breakdown.

Paper's finding: PP-r-clique is on average ~12x faster than the baseline
(max ~44x on YAGO3), and AComplete/ARefine dominate the PPKWS time while
PEval on the small private graph is negligible.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.harness import (
    run_keyword_experiment,
    select_representative,
    speedups,
)
from repro.bench.reporting import (
    render_breakdown,
    render_query_comparison,
    timings_payload,
    write_json_report,
    write_report,
)
from repro.datasets.queries import generate_keyword_queries

TAU = 5.0
NUM_QUERIES = 10
REPORTS: dict = {}
JSON_REPORTS: dict = {}


@pytest.mark.parametrize("name", ["yago", "dbpedia", "ppdblp"])
def test_fig6_rclique(name, setups, benchmark):
    setup = setups(name)
    queries = generate_keyword_queries(
        setup.dataset.public, setup.private,
        num_queries=NUM_QUERIES, tau=TAU, seed=101,
    )
    timings = run_keyword_experiment(
        setup.engine, setup.owner, "rclique", queries, setup.combined, k=10
    )
    chosen = select_representative(timings, 10)
    REPORTS[name] = (
        render_query_comparison(
            f"Fig 6a-c (r-clique, {name}): PP vs baseline", chosen
        )
        + render_breakdown(f"Fig 6d-f (r-clique, {name}): breakdown", chosen)
    )
    JSON_REPORTS[name] = timings_payload(chosen)

    # Benchmark one representative PP query.
    q = queries[0]
    benchmark.pedantic(
        lambda: setup.engine.rclique(setup.owner, list(q.keywords), q.tau, k=10),
        rounds=1, iterations=1,
    )

    # Paper shape: PPKWS wins overall (total-time ratio > 1).
    stats = speedups(timings)
    if STRICT:
        assert stats["total"] > 1.0, f"PP-r-clique slower than baseline on {name}"


def test_fig6_rclique_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[n] for n in REPORTS)
    emit(report)
    write_report("fig6_rclique", report)
    write_json_report(
        "fig6_rclique", {"figure": "fig6_rclique", "datasets": JSON_REPORTS}
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
