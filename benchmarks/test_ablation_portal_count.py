"""Ablation: sensitivity to the number of portal nodes.

Design choice under test: PPKWS's per-user state and the ARefine /
AComplete loops are all ``O(poly(|P|))`` — the framework bets on portals
being few.  This ablation carves private graphs with increasing portal
fractions from the same public graph and measures attach (index) time
and PP-Blinks query time as ``|P|`` grows.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.reporting import render_table, write_report
from repro.core.framework import PPKWS
from repro.datasets.queries import generate_keyword_queries
from repro.datasets.synthetic import _carve_private_graph

PORTAL_FRACTIONS = [0.05, 0.15, 0.35]
TAU = 5.0
REPORTS: dict = {}


@pytest.mark.parametrize("name", ["yago"])
def test_ablation_portal_count(name, setups, benchmark):
    setup = setups(name)
    public = setup.dataset.public
    rows = []
    attach_times = {}
    for fraction in PORTAL_FRACTIONS:
        rng = random.Random(4242)
        private = _carve_private_graph(
            public, rng, target_vertices=100, portal_fraction=fraction,
            owner_offset=f"frac{fraction}", extra_label_pool=setup.dataset.vocabulary,
            labels_per_vertex=3.8,
        )
        engine = PPKWS(public, index=setup.engine.index)
        start = time.perf_counter()
        attachment = engine.attach("abl", private)
        attach_time = time.perf_counter() - start
        attach_times[fraction] = attach_time

        queries = generate_keyword_queries(
            public, private, num_queries=4, tau=TAU, seed=808
        )
        total = 0.0
        answers = 0
        for q in queries:
            start = time.perf_counter()
            result = engine.blinks("abl", list(q.keywords), q.tau, k=10)
            total += time.perf_counter() - start
            answers += len(result.answers)
        rows.append([
            fraction,
            len(attachment.portals),
            attach_time * 1000,
            total * 1000,
            answers,
        ])
    REPORTS[name] = render_table(
        f"Ablation: portal count (PP-Blinks, {name})",
        ["portal fraction", "|P|", "attach (ms)", "query time (ms)", "answers"],
        rows,
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if STRICT:
        # More portals => more per-user index work (monotone attach cost).
        assert attach_times[PORTAL_FRACTIONS[-1]] >= (
            attach_times[PORTAL_FRACTIONS[0]] * 0.8
        )


def test_ablation_portal_count_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[n] for n in REPORTS)
    emit(report)
    write_report("ablation_portal_count", report)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
