"""Ablation: PADS vs ADS as the estimator inside PPKWS.

Design choice under test: the paper's central index contribution is
replacing ADS's random ranks with PageRank.  Beyond the standalone
quality comparison (Tab. VI), this ablation swaps the estimator *inside*
the full PP-Blinks pipeline: same framework, same queries, ADS-ranked vs
PageRank-ranked sketches — measuring answer count (tighter estimates
admit more answers under the ``tau`` check) and query time.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.reporting import render_table, write_report
from repro.core.framework import PPKWS, PublicIndex
from repro.datasets.queries import generate_keyword_queries
from repro.sketches import build_kpads, build_sketch_from_ranks, random_ranks

TAU = 5.0
REPORTS: dict = {}


def _index_from_ranks(setup, ranks, kind: str) -> PublicIndex:
    public = setup.dataset.public
    sketch = build_sketch_from_ranks(public, ranks, k=2, kind=kind)
    kpads = build_kpads(public, sketch)
    return PublicIndex(public, sketch, kpads, setup.engine.index.pagerank_scores)


@pytest.mark.parametrize("name", ["yago", "dbpedia"])
def test_ablation_index_choice(name, setups, benchmark):
    setup = setups(name)
    public = setup.dataset.public
    queries = generate_keyword_queries(
        public, setup.private, num_queries=5, tau=TAU, seed=707
    )

    variants = {
        "PADS": setup.engine.index,
        "ADS": _index_from_ranks(
            setup, random_ranks(public, seed=17), "ADS"
        ),
    }
    rows = []
    results = {}
    for label, index in variants.items():
        engine = PPKWS(public, index=index)
        engine.attach(setup.owner, setup.private)
        total = 0.0
        answers = 0
        weight = 0.0
        for q in queries:
            start = time.perf_counter()
            result = engine.blinks(setup.owner, list(q.keywords), q.tau, k=10)
            total += time.perf_counter() - start
            answers += len(result.answers)
            weight += sum(a.weight() for a in result.answers)
        results[label] = (answers, weight)
        rows.append([label, index.pads.total_entries, total * 1000, answers,
                     weight])
    REPORTS[name] = render_table(
        f"Ablation: estimator inside PPKWS (PP-Blinks, {name})",
        ["estimator", "entries", "query time (ms)", "answers",
         "total answer weight"],
        rows,
    )

    benchmark.pedantic(
        lambda: _index_from_ranks(setup, random_ranks(public, seed=18), "ADS"),
        rounds=1, iterations=1,
    )

    if STRICT:
        # PADS's tighter upper bounds admit at least as many answers
        # under the tau filter as ADS's looser ones.
        assert results["PADS"][0] >= results["ADS"][0]


def test_ablation_index_choice_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[n] for n in REPORTS)
    emit(report)
    write_report("ablation_index_choice", report)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
