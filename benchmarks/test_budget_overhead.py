"""Budget fast-path micro-benchmark.

The budget checkpoint threading (``repro.core.budget``) must be free when
unused: with ``deadline_ms=None`` every hot loop takes a single
``budget is None`` branch per heap pop.  This benchmark runs the Fig.-6
Blinks workload twice — unbudgeted vs a budget generous enough to never
expire (which pays the full checkpoint accounting) — and asserts the
*unbudgeted* path does not regress against the effectively-unlimited
budgeted one by more than the allowed overhead margin.

The check is deliberately one-sided: the no-budget median must stay
within 5% of itself-with-checkpoints, i.e. the checkpoint machinery may
cost something, but opting out must remain (close to) free.
"""

from __future__ import annotations

import time
from statistics import median

from benchmarks.conftest import STRICT, emit
from repro.bench.reporting import write_report
from repro.datasets.queries import generate_keyword_queries

TAU = 5.0
NUM_QUERIES = 8
ROUNDS = 5
# no-budget median must stay within 5% of the generous-budget median
MAX_OVERHEAD = 1.05


def _run_workload(engine, owner, queries, **budget_kwargs) -> float:
    start = time.perf_counter()
    for q in queries:
        engine.blinks(owner, list(q.keywords), q.tau, k=10, **budget_kwargs)
    return time.perf_counter() - start


def test_budget_fast_path_overhead(setups, benchmark):
    setup = setups("ppdblp")
    queries = generate_keyword_queries(
        setup.dataset.public, setup.private,
        num_queries=NUM_QUERIES, tau=TAU, seed=77,
    )
    # interleave variants so drift (caches, frequency scaling) hits both
    plain_times, budgeted_times = [], []
    _run_workload(setup.engine, setup.owner, queries)  # warm-up
    for _ in range(ROUNDS):
        plain_times.append(_run_workload(setup.engine, setup.owner, queries))
        budgeted_times.append(
            _run_workload(
                setup.engine, setup.owner, queries,
                deadline_ms=1e12, max_expansions=10**15,
            )
        )
    plain, budgeted = median(plain_times), median(budgeted_times)
    ratio = plain / budgeted if budgeted else 1.0

    report = (
        "Budget fast-path overhead (Blinks, ppdblp)\n"
        f"  deadline_ms=None  median: {plain * 1000:8.2f} ms\n"
        f"  generous budget   median: {budgeted * 1000:8.2f} ms\n"
        f"  none/budgeted ratio: {ratio:.3f} (must be < {MAX_OVERHEAD})\n"
    )
    emit(report)
    write_report("budget_overhead", report)

    benchmark.pedantic(
        lambda: _run_workload(setup.engine, setup.owner, queries),
        rounds=1, iterations=1,
    )
    if STRICT:
        assert ratio < MAX_OVERHEAD, report

    # results must be identical either way (fast path changes nothing)
    q = queries[0]
    plain_result = setup.engine.blinks(setup.owner, list(q.keywords), q.tau, k=10)
    budgeted_result = setup.engine.blinks(
        setup.owner, list(q.keywords), q.tau, k=10, deadline_ms=1e12
    )
    assert [a.sort_key() for a in plain_result.answers] == [
        a.sort_key() for a in budgeted_result.answers
    ]
