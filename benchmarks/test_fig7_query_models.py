"""Figure 7 (Appx. D): query models M1 vs M2 vs M3 for r-clique and Blinks.

Paper's finding: M1 (separate public + private evaluation) and M2
(direct evaluation on the combined graph) cost about the same, while M3
(PPKWS) improves query time by ~110x on average.  Our M1/M2 share the
same optimized traversal core so the M3 factor is smaller, but the
ordering M3 < M2 ≈ M1 must hold.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.harness import run_keyword_experiment, select_representative
from repro.bench.reporting import render_query_comparison, write_report
from repro.datasets.queries import generate_keyword_queries

TAU = 5.0
NUM_QUERIES = 6
REPORTS: dict = {}


@pytest.mark.parametrize("name", ["yago", "ppdblp"])
@pytest.mark.parametrize("semantic", ["rclique", "blinks"])
def test_fig7_query_models(name, semantic, setups, benchmark):
    setup = setups(name)
    queries = generate_keyword_queries(
        setup.dataset.public, setup.private,
        num_queries=NUM_QUERIES, tau=TAU, seed=505,
    )
    timings = run_keyword_experiment(
        setup.engine, setup.owner, semantic, queries, setup.combined,
        k=10, include_m1=True,
    )
    chosen = select_representative(timings, NUM_QUERIES)
    REPORTS[(name, semantic)] = render_query_comparison(
        f"Fig 7 ({semantic}, {name}): M3=PPKWS vs M2=combined vs M1=separate",
        chosen,
        include_m1=True,
    )

    q = queries[0]
    run = (
        setup.engine.rclique if semantic == "rclique" else setup.engine.blinks
    )
    benchmark.pedantic(
        lambda: run(setup.owner, list(q.keywords), q.tau, k=10),
        rounds=1, iterations=1,
    )

    total_pp = sum(t.pp_seconds for t in timings)
    total_m2 = sum(t.baseline_seconds for t in timings)
    if STRICT:
        assert total_pp < total_m2, (
            f"M3 not faster than M2 for {semantic}/{name}"
        )


def test_fig7_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[key] for key in REPORTS)
    emit(report)
    write_report("fig7_query_models", report)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
