"""Figure 6 m-r: PP-knk vs Baseline-knk, plus step breakdown.

Paper's finding: PP-knk is ~120x faster on average (the baseline's
Dijkstra must expand the combined graph until k matches surface, while
PP-knk touches only the private graph, the portal table and KPADS), and
PEval dominates the PPKWS breakdown (~87-92%).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.harness import (
    run_knk_experiment,
    select_representative,
    speedups,
)
from repro.bench.reporting import (
    render_breakdown,
    render_query_comparison,
    timings_payload,
    write_json_report,
    write_report,
)
from repro.datasets.queries import generate_knk_queries

NUM_QUERIES = 10
REPORTS: dict = {}
JSON_REPORTS: dict = {}


@pytest.mark.parametrize("name", ["yago", "dbpedia", "ppdblp"])
def test_fig6_knk(name, setups, benchmark):
    setup = setups(name)
    queries = generate_knk_queries(
        setup.dataset.public, setup.private, num_queries=NUM_QUERIES, seed=303
    )
    timings = run_knk_experiment(setup.engine, setup.owner, queries, setup.combined)
    chosen = select_representative(timings, 10)
    REPORTS[name] = (
        render_query_comparison(f"Fig 6m-o (k-nk, {name}): PP vs baseline", chosen)
        + render_breakdown(f"Fig 6p-r (k-nk, {name}): breakdown", chosen)
    )
    JSON_REPORTS[name] = timings_payload(chosen)

    q = queries[0]
    benchmark.pedantic(
        lambda: setup.engine.knk(setup.owner, q.source, q.keyword, q.k),
        rounds=1, iterations=1,
    )

    stats = speedups(timings)
    if STRICT:
        assert stats["total"] > 1.0, f"PP-knk slower than baseline on {name}"


def test_fig6_knk_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[n] for n in REPORTS)
    emit(report)
    write_report("fig6_knk", report)
    write_json_report(
        "fig6_knk", {"figure": "fig6_knk", "datasets": JSON_REPORTS}
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
