"""Ablation: the sketch parameter ``k`` inside end-to-end PPKWS queries.

Design choice under test: the paper picks small ``k`` (1-3) for PADS.
Larger ``k`` means bigger sketches, slower lookups, but tighter distance
estimates — which can *admit more answers* (estimates below ``tau`` more
often) and change completion quality.  This ablation sweeps ``k`` and
reports PP-Blinks query time, index size and answers found.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import STRICT, emit
from repro.bench.reporting import render_table, write_report
from repro.core.framework import PPKWS, PublicIndex
from repro.datasets.queries import generate_keyword_queries

KS = [1, 2, 4]
TAU = 5.0
REPORTS: dict = {}


@pytest.mark.parametrize("name", ["yago", "ppdblp"])
def test_ablation_sketch_k(name, setups, benchmark):
    setup = setups(name)
    public = setup.dataset.public
    queries = generate_keyword_queries(
        public, setup.private, num_queries=5, tau=TAU, seed=606
    )
    rows = []
    answer_counts = {}
    index_sizes = {}
    for k in KS:
        index = PublicIndex.build(public, k=k)
        index_sizes[k] = index.pads.total_entries
        engine = PPKWS(public, index=index)
        engine.attach(setup.owner, setup.private)
        total = 0.0
        answers = 0
        for q in queries:
            start = time.perf_counter()
            result = engine.blinks(setup.owner, list(q.keywords), q.tau, k=10)
            total += time.perf_counter() - start
            answers += len(result.answers)
        answer_counts[k] = answers
        rows.append([
            k,
            index.pads.total_entries,
            index.kpads.total_entries,
            total * 1000,
            answers,
        ])
    REPORTS[name] = render_table(
        f"Ablation: sketch k (PP-Blinks, {name})",
        ["k", "PADS entries", "KPADS entries", "query time (ms)", "answers"],
        rows,
    )

    benchmark.pedantic(lambda: PublicIndex.build(public, k=2),
                       rounds=1, iterations=1)

    if STRICT:
        # Index size grows with k (the O(k ln n) bound); answer counts
        # need not be monotone — a tighter public estimate can replace a
        # private match and flip the Def.-II.2 qualification — but the
        # engine must keep finding answers at every k.
        sizes = [index_sizes[k] for k in KS]
        assert sizes == sorted(sizes)
        assert all(count > 0 for count in answer_counts.values())


def test_ablation_sketch_k_report(setups, benchmark):
    assert REPORTS
    report = "\n".join(REPORTS[n] for n in REPORTS)
    emit(report)
    write_report("ablation_sketch_k", report)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
