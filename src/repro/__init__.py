"""PPKWS: keyword search on public-private networks (ICDE 2020 reproduction).

Public API tour
---------------
Graphs and the public-private model::

    from repro import LabeledGraph, PublicPrivateNetwork

The PPKWS engine (index once, attach per user, query)::

    from repro import PPKWS
    engine = PPKWS(public_graph, sketch_k=2)
    engine.attach("bob", private_graph)
    result = engine.blinks("bob", ["DB", "AI", "CV"], tau=5.0)

Baseline algorithms that run on any graph (e.g. a materialized combined
graph — the paper's baseline query model M2)::

    from repro import blinks_search, rclique_search, knk_search

Sketch indexes (Sec. V) and synthetic datasets (Sec. VII)::

    from repro import build_ads, build_pads, build_kpads
    from repro.datasets import yago_like, dbpedia_like, ppdblp_like
"""

from repro.core import (
    Attachment,
    KnkQueryResult,
    PPKWS,
    QueryBudget,
    PublicIndex,
    QueryCounters,
    QueryOptions,
    QueryResult,
    StepBreakdown,
    is_public_private_answer,
    query_model_m1,
    query_model_m2,
)
from repro.exceptions import (
    BudgetError,
    BudgetExhaustedError,
    DatasetError,
    DeadlineExceededError,
    GraphError,
    IndexBuildError,
    OwnerNotAttachedError,
    QueryCancelledError,
    QueryError,
    ReproError,
    ServiceOverloadedError,
    UnknownNetworkError,
    VertexNotFoundError,
)
from repro.graph import (
    LabeledGraph,
    PublicPrivateNetwork,
    combine,
    portal_nodes,
)
from repro.semantics import (
    KnkAnswer,
    Match,
    RootedAnswer,
    blinks_search,
    knk_search,
    rclique_search,
)
from repro.sketches import (
    DistanceSketch,
    KeywordSketch,
    build_ads,
    build_kpads,
    build_pads,
)
from repro.service import PPKWSService
from repro.validation import (
    ValidationReport,
    validate_knk_answer,
    validate_rooted_answer,
)

__version__ = "1.0.0"

__all__ = [
    "Attachment",
    "BudgetError",
    "BudgetExhaustedError",
    "DatasetError",
    "DeadlineExceededError",
    "DistanceSketch",
    "GraphError",
    "IndexBuildError",
    "KeywordSketch",
    "KnkAnswer",
    "KnkQueryResult",
    "LabeledGraph",
    "Match",
    "OwnerNotAttachedError",
    "PPKWS",
    "PPKWSService",
    "PublicIndex",
    "PublicPrivateNetwork",
    "QueryBudget",
    "QueryCancelledError",
    "QueryCounters",
    "QueryError",
    "QueryOptions",
    "QueryResult",
    "ReproError",
    "RootedAnswer",
    "ServiceOverloadedError",
    "StepBreakdown",
    "UnknownNetworkError",
    "ValidationReport",
    "VertexNotFoundError",
    "blinks_search",
    "build_ads",
    "build_kpads",
    "build_pads",
    "combine",
    "is_public_private_answer",
    "knk_search",
    "portal_nodes",
    "query_model_m1",
    "query_model_m2",
    "rclique_search",
    "validate_knk_answer",
    "validate_rooted_answer",
    "__version__",
]
