"""Baseline keyword-search semantics: Blinks, r-clique and k-nk.

These run on *any* :class:`~repro.graph.LabeledGraph` — in particular on
a materialized combined graph, which is exactly the paper's baseline
query model M2 (``Baseline-Blinks`` / ``Baseline-rclique`` /
``Baseline-knk`` in the experiments).
"""

from repro.semantics.answers import KnkAnswer, Match, RootedAnswer
from repro.semantics.banks import TreeAnswer, banks_search
from repro.semantics.blinks import blinks_search, keyword_expansion
from repro.semantics.knk import knk_search
from repro.semantics.knk_multi import knk_multi_search
from repro.semantics.rclique import (
    NeighborLists,
    build_neighbor_lists,
    rclique_search,
)
from repro.semantics.truss import TrussAnswer, truss_search

__all__ = [
    "KnkAnswer",
    "Match",
    "NeighborLists",
    "RootedAnswer",
    "TreeAnswer",
    "TrussAnswer",
    "banks_search",
    "blinks_search",
    "build_neighbor_lists",
    "keyword_expansion",
    "knk_multi_search",
    "knk_search",
    "rclique_search",
    "truss_search",
]
