"""BANKS-style keyword search: explicit answer trees (Bhalotia et al.,
ICDE'02 — the paper's reference [2], the original backward expansion).

Where :mod:`repro.semantics.blinks` reports only the root and matched
leaves, BANKS materializes the *answer tree*: the union of shortest paths
from the root to one keyword origin per query keyword.  Trees are ranked
by total root-to-leaf distance, like the figure trees in the paper's
Fig. 1/2.

Implementation: one multi-origin Dijkstra per keyword that additionally
records predecessor links, so each root's tree is reconstructed by
walking the per-keyword shortest-path forests backwards.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.protocol import GraphLike
from repro.semantics.answers import Match, RootedAnswer

__all__ = ["TreeAnswer", "banks_search", "keyword_expansion_with_paths"]


@dataclass
class TreeAnswer(RootedAnswer):
    """A rooted answer plus the explicit tree edges connecting it."""

    edges: Set[FrozenSet[Vertex]] = field(default_factory=set)

    def tree_weight(self, graph: "GraphLike") -> float:
        """Total weight of the answer tree's edges (BANKS's tree cost)."""
        return sum(graph.weight(*tuple(e)) for e in self.edges)

    def tree_vertices(self) -> Set[Vertex]:
        """All vertices appearing on the tree."""
        out: Set[Vertex] = {self.root}
        for e in self.edges:
            out.update(e)
        return out

    def is_connected_tree(self, graph: "GraphLike") -> bool:
        """Whether the edge set really connects root to every match.

        Used by validation/tests; the construction guarantees it, but a
        structured check keeps refactors honest.
        """
        adj: Dict[Vertex, Set[Vertex]] = {}
        for e in self.edges:
            u, v = tuple(e)
            if not graph.has_edge(u, v):
                return False
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        reached = {self.root}
        frontier = [self.root]
        while frontier:
            nxt = []
            for x in frontier:
                for y in adj.get(x, ()):
                    if y not in reached:
                        reached.add(y)
                        nxt.append(y)
            frontier = nxt
        return all(
            m.vertex in reached or m.vertex == self.root
            for m in self.matches.values()
            if m.vertex is not None
        )


def keyword_expansion_with_paths(
    graph: "GraphLike",
    origins: Iterable[Vertex],
    tau: float,
) -> Tuple[Dict[Vertex, Match], Dict[Vertex, Optional[Vertex]]]:
    """Multi-origin Dijkstra recording witnesses *and* predecessors.

    ``pred[v]`` is the next vertex on the shortest path from ``v`` back
    towards its nearest origin (``None`` at the origins themselves).
    """
    reached: Dict[Vertex, Match] = {}
    pred: Dict[Vertex, Optional[Vertex]] = {}
    tentative: Dict[Vertex, float] = {}
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex, Vertex, Optional[Vertex]]] = []
    # Seed in repr order so equal-distance witness ties resolve the same
    # way regardless of set iteration order (PYTHONHASHSEED).
    for o in sorted(origins, key=repr):
        if o in graph:
            heap.append((0.0, next(counter), o, o, None))
    heapq.heapify(heap)
    while heap:
        d, _, v, origin, parent = heapq.heappop(heap)
        if v in reached:
            continue
        reached[v] = Match(origin, d)
        pred[v] = parent
        for u, w in graph.neighbor_items(v):
            if u in reached:
                continue
            nd = d + w
            if nd <= tau and nd < tentative.get(u, float("inf")):
                tentative[u] = nd
                heapq.heappush(heap, (nd, next(counter), u, origin, v))
    return reached, pred


def banks_search(
    graph: "GraphLike",
    keywords: Sequence[Label],
    tau: float,
    k: int = 10,
) -> List[TreeAnswer]:
    """Top-``k`` BANKS answer trees for ``(keywords, tau)``.

    Each answer is a tree rooted at a connecting vertex whose leaves
    carry the query keywords, with ``d(root, leaf) <= tau`` per keyword.
    Ranked by total root-to-leaf distance (ties by root representation).
    """
    if not keywords:
        raise QueryError("BANKS query needs at least one keyword")
    if tau < 0:
        raise QueryError(f"distance bound tau must be >= 0, got {tau}")
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")

    unique_keywords = list(dict.fromkeys(keywords))
    expansions: Dict[Label, Tuple[Dict[Vertex, Match], Dict[Vertex, Optional[Vertex]]]] = {}
    for q in unique_keywords:
        origins = graph.vertices_with_label(q)
        if not origins:
            return []
        expansions[q] = keyword_expansion_with_paths(graph, origins, tau)

    covers = sorted((exp[0] for exp in expansions.values()), key=len)
    candidate_roots = set(covers[0])
    for cover in covers[1:]:
        candidate_roots &= cover.keys()
        if not candidate_roots:
            return []

    answers: List[TreeAnswer] = []
    for root in candidate_roots:
        answer = TreeAnswer(root, {})
        for q in unique_keywords:
            reached, pred = expansions[q]
            match = reached[root]
            answer.matches[q] = match.copy()
            # Walk from the root back to the origin, collecting edges.
            v = root
            while pred[v] is not None:
                nxt = pred[v]
                answer.edges.add(frozenset((v, nxt)))
                v = nxt
        answers.append(answer)
    answers.sort(key=RootedAnswer.sort_key)
    return answers[:k]
