"""Wire-protocol adapters shared by the semantics specs and the service.

Each :class:`~repro.core.engine.SemanticsSpec` carries three wire
callables — request → params, result → payload, request → cache key —
and :mod:`repro.service` generates its query ops straight from them.
This module holds the two families those callables come in:

* **rooted** (Blinks / r-clique / BANKS / truss): ``answers`` list plus
  the per-step ``breakdown``;
* **k-nk** (single- and multi-keyword): a single ``answer``, no
  breakdown (the k-nk wire format predates the breakdown field and is
  pinned by the protocol tests);
* **truss**: community ``answers`` (vertex/edge lists) plus the
  breakdown.

Defaults applied here (``tau`` 5.0, ``k`` 10, ``mode`` ``"and"``) are
part of the wire contract: the cache-key functions apply the same
defaults so ``{"k": 10}`` and an omitted ``k`` hit the same cache line.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

__all__ = [
    "serialize_rooted",
    "serialize_knk",
    "serialize_truss",
    "rooted_payload",
    "knk_payload",
    "truss_payload",
    "rooted_wire_params",
    "knk_wire_params",
    "knk_multi_wire_params",
    "truss_wire_params",
    "rooted_cache_params",
    "knk_cache_params",
    "knk_multi_cache_params",
    "truss_cache_params",
]


def serialize_rooted(answer: Any) -> Dict[str, Any]:
    """JSON-able form of a rooted answer (tree edges when present)."""
    out: Dict[str, Any] = {
        "root": answer.root,
        "weight": answer.weight(),
        "matches": {
            q: {"vertex": m.vertex, "distance": m.distance}
            for q, m in answer.matches.items()
        },
    }
    edges = getattr(answer, "edges", None)
    if edges:
        # Canonical order: the in-memory edge list follows traversal
        # order, which differs between the dict and CSR backends (and
        # thus between a parent and its shard-worker replica).
        out["tree_edges"] = sorted(
            (sorted(e, key=repr) for e in edges), key=repr
        )
    return out


def serialize_knk(answer: Any) -> Dict[str, Any]:
    """JSON-able form of a k-nk answer."""
    return {
        "source": answer.source,
        "keyword": answer.keyword,
        "matches": [
            {"vertex": m.vertex, "distance": m.distance}
            for m in answer.matches
        ],
    }


def rooted_payload(result: Any) -> Dict[str, Any]:
    """Response payload for a rooted-semantics :class:`QueryResult`."""
    return {
        "answers": [serialize_rooted(a) for a in result.answers],
        "breakdown": {
            "peval": result.breakdown.peval,
            "arefine": result.breakdown.arefine,
            "acomplete": result.breakdown.acomplete,
        },
    }


def knk_payload(result: Any) -> Dict[str, Any]:
    """Response payload for a :class:`KnkQueryResult` (no breakdown)."""
    return {"answer": serialize_knk(result.answer)}


def serialize_truss(answer: Any) -> Dict[str, Any]:
    """JSON-able form of a truss community answer."""
    return {
        "vertices": list(answer.vertices),
        "edges": [list(e) for e in answer.edges],
    }


def truss_payload(result: Any) -> Dict[str, Any]:
    """Response payload for a truss :class:`QueryResult`."""
    return {
        "answers": [serialize_truss(a) for a in result.answers],
        "breakdown": {
            "peval": result.breakdown.peval,
            "arefine": result.breakdown.arefine,
            "acomplete": result.breakdown.acomplete,
        },
    }


def rooted_wire_params(request: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "keywords": list(request["keywords"]),
        "tau": float(request.get("tau", 5.0)),
        "k": int(request.get("k", 10)),
        "require_public_private": True,
    }


def knk_wire_params(request: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "source": request["source"],
        "keyword": request["keyword"],
        "k": int(request.get("k", 10)),
    }


def knk_multi_wire_params(request: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "source": request["source"],
        "keywords": list(request["keywords"]),
        "k": int(request.get("k", 10)),
        "mode": str(request.get("mode", "and")),
    }


def truss_wire_params(request: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "k": int(request["k"]),
        "keywords": list(request.get("keywords", [])),
        "require_public_private": True,
    }


def rooted_cache_params(request: Dict[str, Any]) -> Tuple[Any, ...]:
    return (
        tuple(request["keywords"]),
        float(request.get("tau", 5.0)),
        int(request.get("k", 10)),
    )


def knk_cache_params(request: Dict[str, Any]) -> Tuple[Any, ...]:
    return (request["source"], request["keyword"], int(request.get("k", 10)))


def knk_multi_cache_params(request: Dict[str, Any]) -> Tuple[Any, ...]:
    return (
        request["source"],
        tuple(request["keywords"]),
        int(request.get("k", 10)),
        str(request.get("mode", "and")),
    )


def truss_cache_params(request: Dict[str, Any]) -> Tuple[Any, ...]:
    return (int(request["k"]), tuple(request.get("keywords", ())))
