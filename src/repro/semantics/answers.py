"""Answer representations shared by the baselines and the framework.

All three semantics of the paper report *rooted* answers built from
keyword matches:

* Blinks: a tree root ``r`` with one matched leaf per query keyword and
  the distances ``d(r, leaf)``;
* r-clique: a star center with one matched vertex per keyword (the
  paper's partial-answer tuple ``<v, match>`` in Sec. IV-A);
* k-nk: a ranked list of ``(vertex, distance)`` matches.

The same :class:`RootedAnswer` therefore serves Blinks and r-clique, and
the PPKWS partial answers in :mod:`repro.core` extend these classes with
refinement bookkeeping rather than reinventing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.graph.labeled_graph import Label, Vertex
from repro.graph.traversal import INF

__all__ = ["Match", "RootedAnswer", "KnkAnswer"]


@dataclass
class Match:
    """One keyword match: the matched vertex and its distance to the root.

    ``vertex`` may be ``None`` while a keyword is still *missing* (PPKWS
    partial answers route such keywords through portals before completion
    fills in a real match).
    """

    vertex: Optional[Vertex]
    distance: float

    def is_resolved(self) -> bool:
        """Whether an actual matched vertex is known."""
        return self.vertex is not None and self.distance < INF

    def copy(self) -> "Match":
        return Match(self.vertex, self.distance)


@dataclass
class RootedAnswer:
    """A root vertex plus one :class:`Match` per query keyword."""

    root: Vertex
    matches: Dict[Label, Match] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def weight(self) -> float:
        """Total distance — the ranking weight used by all semantics."""
        return sum(m.distance for m in self.matches.values())

    def max_distance(self) -> float:
        """The largest per-keyword distance (the bound the semantics cap)."""
        if not self.matches:
            return 0.0
        return max(m.distance for m in self.matches.values())

    def is_complete(self, keywords: Iterator[Label]) -> bool:
        """Whether every query keyword has a resolved match."""
        return all(
            q in self.matches and self.matches[q].is_resolved() for q in keywords
        )

    def within_bound(self, tau: float) -> bool:
        """Whether every match distance respects the semantic's bound."""
        return all(m.distance <= tau for m in self.matches.values())

    def vertices(self) -> List[Vertex]:
        """Root plus all resolved match vertices (for qualification tests)."""
        out = [self.root]
        out.extend(m.vertex for m in self.matches.values() if m.vertex is not None)
        return out

    def copy(self) -> "RootedAnswer":
        """Deep copy (match objects are duplicated)."""
        return RootedAnswer(
            self.root, {q: m.copy() for q, m in self.matches.items()}
        )

    def sort_key(self) -> Tuple[float, str]:
        """Deterministic ordering: weight, then root representation."""
        return (self.weight(), repr(self.root))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{q}:({m.vertex!r},{m.distance:g})" for q, m in sorted(self.matches.items())
        )
        return f"<Answer root={self.root!r} {parts} w={self.weight():g}>"


@dataclass
class KnkAnswer:
    """Ranked top-k nearest-keyword matches for a ``(v, q, k)`` query."""

    source: Vertex
    keyword: Label
    matches: List[Match] = field(default_factory=list)

    def distances(self) -> List[float]:
        """The ranked distance list (non-decreasing)."""
        return [m.distance for m in self.matches]

    def vertices(self) -> List[Vertex]:
        """The ranked matched vertices."""
        return [m.vertex for m in self.matches if m.vertex is not None]

    def kth_distance(self) -> float:
        """Distance of the worst reported match (``inf`` if empty)."""
        return self.matches[-1].distance if self.matches else INF

    def __len__(self) -> int:
        return len(self.matches)
