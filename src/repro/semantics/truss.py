"""k-truss community search (the sixth registered semantics' ground truth).

A *k-truss* (k >= 2) is the maximal subgraph in which every edge is
supported by at least ``k - 2`` triangles; it is the classic cohesive
community model that, unlike cliques, is computable by edge peeling in
polynomial time.  Keyword search over trusses returns the connected
components of the k-truss that cover the query keywords.

This module is the single-graph algorithm: :func:`truss_search` runs on
any read-only graph (including a materialized or lazy combined view) and
is the brute-force oracle the public-private pipeline
(:mod:`repro.core.pp_truss`) is validated against.  The peeling core
(:func:`peel_truss`, :func:`truss_components`) is shared by both — the
pipeline differs only in *how supports are obtained*, not in how the
truss is extracted from them.

All iteration orders are fixed by ``repr`` so results are independent of
hash seeding (the same discipline as the rest of :mod:`repro.semantics`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.budget import QueryBudget

__all__ = [
    "TrussAnswer",
    "edge_key",
    "peel_truss",
    "truss_components",
    "covers_keywords",
    "truss_search",
]

EdgeKey = Tuple[Vertex, Vertex]


@dataclass(frozen=True)
class TrussAnswer:
    """One connected component of the k-truss.

    ``vertices`` and ``edges`` are repr-sorted tuples, so two answers
    over the same component compare equal regardless of how they were
    computed — the equivalence tests rely on this.
    """

    vertices: Tuple[Vertex, ...]
    edges: Tuple[EdgeKey, ...]

    def sort_key(self) -> Tuple[int, int, str]:
        """Larger communities first; repr of the vertex tuple ties."""
        return (-len(self.vertices), -len(self.edges), repr(self.vertices))


def edge_key(u: Vertex, v: Vertex) -> EdgeKey:
    """Canonical undirected-edge key (repr-ordered endpoint pair)."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


def peel_truss(
    adj: Dict[Vertex, Set[Vertex]],
    support: Dict[EdgeKey, int],
    k: int,
    budget: Optional["QueryBudget"] = None,
) -> Set[EdgeKey]:
    """Peel ``adj``/``support`` down to the k-truss; returns survivors.

    ``adj`` is mutated in place (removed edges disappear from it), so on
    return it is exactly the adjacency of the k-truss.  Edges absent
    from ``support`` are ignored.  The fixpoint — the *maximal* subgraph
    with all supports >= k - 2 — is unique, so the processing order only
    matters for budget-expiry reproducibility, hence the repr sorts.
    """
    threshold = k - 2
    queue: deque = deque(
        sorted((e for e, s in support.items() if s < threshold), key=repr)
    )
    removed: Set[EdgeKey] = set()
    while queue:
        if budget is not None:
            budget.checkpoint()
        e = queue.popleft()
        if e in removed:
            continue
        removed.add(e)
        u, v = e
        adj[u].discard(v)
        adj[v].discard(u)
        # Each common neighbor w loses the triangle (u, v, w): both of
        # its other edges drop one support.
        for w in sorted(adj[u] & adj[v], key=repr):
            for f in (edge_key(u, w), edge_key(v, w)):
                if f in removed or f not in support:
                    continue
                support[f] -= 1
                if support[f] < threshold:
                    queue.append(f)
    return {e for e in support if e not in removed}


def truss_components(
    adj: Dict[Vertex, Set[Vertex]], surviving: Set[EdgeKey]
) -> List[TrussAnswer]:
    """Connected components of the peeled graph, as sorted answers.

    Isolated vertices (everything a peel stripped bare) are skipped: a
    truss community is edge-defined.
    """
    answers: List[TrussAnswer] = []
    seen: Set[Vertex] = set()
    for start in sorted((v for v, ns in adj.items() if ns), key=repr):
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for v in frontier:
                for u in adj[v]:
                    if u not in component:
                        component.add(u)
                        nxt.append(u)
            frontier = nxt
        seen |= component
        edges = tuple(
            sorted((e for e in surviving if e[0] in component), key=repr)
        )
        answers.append(
            TrussAnswer(tuple(sorted(component, key=repr)), edges)
        )
    answers.sort(key=TrussAnswer.sort_key)
    return answers


def covers_keywords(
    labels_of, vertices: Sequence[Vertex], keywords: Sequence[Label]
) -> bool:
    """Whether every query keyword appears on some vertex of the answer."""
    return all(
        any(q in labels_of(v) for v in vertices) for q in keywords
    )


def truss_search(
    graph, k: int, keywords: Sequence[Label] = ()
) -> List[TrussAnswer]:
    """Exact k-truss keyword search on a single (or combined-view) graph.

    Returns the connected components of the k-truss whose vertices cover
    all of ``keywords`` (every keyword on at least one member vertex),
    largest first.  This is the brute-force oracle for
    :mod:`repro.core.pp_truss`.
    """
    if k < 2:
        raise QueryError(f"k-truss requires k >= 2, got {k}")
    adj: Dict[Vertex, Set[Vertex]] = {
        v: set(graph.neighbors(v)) for v in graph.vertices()
    }
    support: Dict[EdgeKey, int] = {}
    for u, v, _ in graph.edges():
        support[edge_key(u, v)] = len(adj[u] & adj[v])
    surviving = peel_truss(adj, support, k)
    answers = truss_components(adj, surviving)
    if keywords:
        answers = [
            a for a in answers
            if covers_keywords(graph.labels, a.vertices, keywords)
        ]
    return answers
