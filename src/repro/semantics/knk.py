"""The k-nk semantic: top-k nearest keyword search (Jiang et al.,
SIGMOD'15; paper Sec. IV-C and Appx. A).

A query is a triple ``(v, q, k)``: find the ``k`` vertices nearest to the
query vertex ``v`` that carry keyword ``q``, ranked by distance.  The
index-free evaluation is a single Dijkstra from ``v`` that collects
matches lazily and stops at the ``k``-th — which is also exactly what
PEval runs on the private graph.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.protocol import GraphLike
from repro.graph.traversal import dijkstra_ordered
from repro.semantics.answers import KnkAnswer, Match

__all__ = ["knk_search"]


def knk_search(
    graph: "GraphLike",
    source: Vertex,
    keyword: Label,
    k: int,
    cutoff: Optional[float] = None,
    extra_matches: Optional[Iterable[Vertex]] = None,
) -> KnkAnswer:
    """Top-``k`` nearest vertices to ``source`` carrying ``keyword``.

    Parameters
    ----------
    cutoff:
        Optional distance bound (matches further away are not reported).
    extra_matches:
        Vertices treated as matches regardless of labels — PEval admits
        the portal nodes this way so answers can later be completed with
        public-graph matches reached through them.

    The source vertex itself is a valid match when it carries the keyword
    (distance 0), consistent with [13].
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not keyword:
        raise QueryError("k-nk query needs a non-empty keyword")

    extras: Set[Vertex] = set(extra_matches or ())
    answer = KnkAnswer(source, keyword, [])
    for v, d in dijkstra_ordered(graph, source, cutoff=cutoff):
        if graph.has_label(v, keyword) or v in extras:
            answer.matches.append(Match(v, d))
            if len(answer.matches) >= k:
                break
    return answer
