"""The Blinks keyword-search semantic (He et al., SIGMOD'07; paper Sec. IV-B).

A query is ``(Q, tau)``.  An answer is a subtree rooted at ``r`` with one
leaf ``v_i`` per keyword ``q_i`` such that ``q_i in L(v_i)`` and
``d(r, v_i) <= tau``.  Answers are ranked by total root-to-leaf distance.

Evaluation is *backward expansion*: every vertex carrying ``q_i`` is a
search origin for ``q_i``; a multi-origin Dijkstra per keyword sweeps
backwards (the graph is undirected, so backward = forward here) and a
vertex becomes an answer root once every keyword's expansion has reached
it.  We track, per reached vertex and keyword, the nearest origin — the
witness leaf reported in the answer.  This runs all expansions to the
``tau`` cutoff, which is exactly the flooding cost the PPKWS paper's
baselines pay on the combined graph.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.protocol import GraphLike
from repro.semantics.answers import Match, RootedAnswer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.budget import QueryBudget

__all__ = ["blinks_search", "keyword_expansion"]


def keyword_expansion(
    graph: "GraphLike",
    origins: Iterable[Vertex],
    tau: float,
    budget: Optional["QueryBudget"] = None,
) -> Dict[Vertex, Match]:
    """Multi-origin Dijkstra with witness tracking, cut off at ``tau``.

    Returns, for every vertex within distance ``tau`` of some origin, a
    :class:`Match` holding the nearest origin and its distance.
    ``budget`` (if given) is charged one expansion per heap pop.
    """
    reached: Dict[Vertex, Match] = {}
    heap: List[Tuple[float, int, Vertex, Vertex]] = []
    counter = 0
    # Seed in repr order so equal-distance witness ties resolve the same
    # way regardless of set iteration order (PYTHONHASHSEED).
    for o in sorted(origins, key=repr):
        if o in graph:
            heap.append((0.0, counter, o, o))
            counter += 1
    heapq.heapify(heap)
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v, origin = heapq.heappop(heap)
        if v in reached:
            continue
        if d > tau:
            break
        reached[v] = Match(origin, d)
        for u, w in graph.neighbor_items(v):
            if u not in reached and d + w <= tau:
                counter += 1
                heapq.heappush(heap, (d + w, counter, u, origin))
    return reached


def blinks_search(
    graph: "GraphLike",
    keywords: Sequence[Label],
    tau: float,
    k: int = 10,
    extra_origins: Optional[Dict[Label, Set[Vertex]]] = None,
    budget: Optional["QueryBudget"] = None,
) -> List[RootedAnswer]:
    """Top-``k`` Blinks answers for ``(keywords, tau)`` on ``graph``.

    Parameters
    ----------
    extra_origins:
        Additional per-keyword origin vertices admitted *as if* they
        carried the keyword.  PEval uses this to seed portal nodes so
        partial answers can route missing keywords through the public
        graph; plain baseline callers leave it unset.
    budget:
        Optional :class:`~repro.core.budget.QueryBudget` charged during
        the keyword expansions; expiry raises a
        :class:`~repro.exceptions.BudgetError`.

    Returns answers sorted by total weight (ascending), at most ``k``.
    """
    if not keywords:
        raise QueryError("Blinks query needs at least one keyword")
    if tau < 0:
        raise QueryError(f"distance bound tau must be >= 0, got {tau}")
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")

    unique_keywords = list(dict.fromkeys(keywords))
    per_keyword: Dict[Label, Dict[Vertex, Match]] = {}
    for q in unique_keywords:
        origins: Set[Vertex] = set(graph.vertices_with_label(q))
        if extra_origins and q in extra_origins:
            origins |= {v for v in extra_origins[q] if v in graph}
        per_keyword[q] = (
            keyword_expansion(graph, origins, tau, budget=budget) if origins else {}
        )

    # Root discovery: vertices covered by every keyword expansion.  Start
    # from the smallest cover to keep the intersection cheap.
    covers = sorted(per_keyword.values(), key=len)
    if not covers or not covers[0]:
        return []
    candidate_roots = set(covers[0])
    for cover in covers[1:]:
        candidate_roots &= cover.keys()
        if not candidate_roots:
            return []

    answers = [
        RootedAnswer(
            r, {q: per_keyword[q][r].copy() for q in unique_keywords}
        )
        for r in candidate_roots
    ]
    answers.sort(key=RootedAnswer.sort_key)
    return answers[:k]
