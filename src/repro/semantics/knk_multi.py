"""Multi-keyword k-nk: conjunctive and disjunctive extensions.

The paper notes (Sec. II) that the k-nk semantics "have been extended to
the conjunction and disjunction of multiple keywords".  We provide both:

* **conjunction** (``mode="and"``): the k nearest vertices carrying
  *every* query keyword;
* **disjunction** (``mode="or"``): the k nearest vertices carrying *at
  least one* query keyword.

Both are single distance-ordered sweeps with a different match
predicate, so they inherit k-nk's early-termination behaviour.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.protocol import GraphLike
from repro.graph.traversal import dijkstra_ordered
from repro.semantics.answers import KnkAnswer, Match

__all__ = ["knk_multi_search", "match_predicate"]

_MODES = ("and", "or")


def match_predicate(
    graph: "GraphLike", keywords: Sequence[Label], mode: str
):
    """The vertex-match test for a multi-keyword k-nk query."""
    keyword_set = frozenset(keywords)
    if mode == "and":
        return lambda v: keyword_set <= graph.labels(v)
    if mode == "or":
        return lambda v: bool(keyword_set & graph.labels(v))
    raise QueryError(f"mode must be one of {_MODES}, got {mode!r}")


def knk_multi_search(
    graph: "GraphLike",
    source: Vertex,
    keywords: Sequence[Label],
    k: int,
    mode: str = "and",
    cutoff: Optional[float] = None,
    extra_matches: Optional[Iterable[Vertex]] = None,
) -> KnkAnswer:
    """Top-``k`` nearest vertices matching ``keywords`` under ``mode``.

    The answer's ``keyword`` field records the query as
    ``"kw1&kw2"`` / ``"kw1|kw2"`` for display purposes.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not keywords:
        raise QueryError("multi-keyword k-nk needs at least one keyword")
    predicate = match_predicate(graph, keywords, mode)
    extras: Set[Vertex] = set(extra_matches or ())
    joiner = "&" if mode == "and" else "|"
    answer = KnkAnswer(source, joiner.join(keywords), [])
    for v, d in dijkstra_ordered(graph, source, cutoff=cutoff):
        if predicate(v) or v in extras:
            answer.matches.append(Match(v, d))
            if len(answer.matches) >= k:
                break
    return answer
