"""The r-clique keyword-search semantic (Kargar & An, PVLDB'11; Sec. IV-A).

A query is ``(Q, tau)``; an answer assigns one matched vertex per keyword
so that the matches are pairwise close.  Following the paper's Algo 2 we
use the *star* form of the approximation algorithm: each answer has a
root ``v_i`` (itself matching one keyword) and, for every other keyword
``q_j``, the candidate ``u_j`` nearest to the root.  Stars are enumerated
best-first with Lawler-style search-space decomposition to produce top-k
distinct answers; the star weight ``sum_j d(v_i, u_j)`` 2-approximates
the clique weight and the triangle inequality bounds pairwise distances
by ``2 tau`` (paper Thm. A.5 analyses the resulting quality).

Nearest-candidate queries are answered from a per-query *neighbor index*
(the paper builds Kargar-An's ``R = 3`` neighbor index): one multi-origin
Dijkstra per keyword records for every vertex its ``m`` nearest candidate
origins, so decomposition (which excludes candidates) can fall back to
the next-nearest entry without re-searching.
"""

from __future__ import annotations

import heapq
import itertools
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.protocol import GraphLike
from repro.graph.traversal import INF
from repro.semantics.answers import Match, RootedAnswer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.budget import QueryBudget

__all__ = ["rclique_search", "NeighborLists", "build_neighbor_lists"]


class NeighborLists:
    """Per-vertex sorted lists of nearest candidate origins per keyword."""

    __slots__ = ("lists",)

    def __init__(self, lists: Dict[Label, Dict[Vertex, List[Tuple[float, Vertex]]]]):
        self.lists = lists

    def nearest(
        self, v: Vertex, keyword: Label, excluded: FrozenSet[Vertex]
    ) -> Optional[Tuple[float, Vertex]]:
        """The nearest non-excluded candidate for ``keyword`` from ``v``."""
        for d, u in self.lists.get(keyword, {}).get(v, ()):
            if u not in excluded:
                return d, u
        return None


def build_neighbor_lists(
    graph: "GraphLike",
    candidates: Dict[Label, Set[Vertex]],
    tau: float,
    m: int,
    budget: Optional["QueryBudget"] = None,
) -> NeighborLists:
    """One bounded multi-origin Dijkstra per keyword, keeping ``m`` origins.

    Each vertex's list holds its ``m`` nearest *distinct* origins in
    non-decreasing distance order (entries pop off the heap in distance
    order, so appends keep lists sorted).  ``budget`` (if given) is
    charged one expansion per heap pop.
    """
    out: Dict[Label, Dict[Vertex, List[Tuple[float, Vertex]]]] = {}
    for keyword, origins in candidates.items():
        lists: Dict[Vertex, List[Tuple[float, Vertex]]] = {}
        heap: List[Tuple[float, int, Vertex, Vertex]] = []
        counter = itertools.count()
        # Seed in repr order so equal-distance ties resolve the same way
        # regardless of set iteration order (PYTHONHASHSEED).
        for o in sorted(origins, key=repr):
            if o in graph:
                heap.append((0.0, next(counter), o, o))
        heapq.heapify(heap)
        while heap:
            if budget is not None:
                budget.checkpoint()
            d, _, v, origin = heapq.heappop(heap)
            lst = lists.setdefault(v, [])
            if len(lst) >= m or any(o == origin for _, o in lst):
                continue
            lst.append((d, origin))
            for u, w in graph.neighbor_items(v):
                nd = d + w
                if nd <= tau and len(lists.get(u, ())) < m:
                    heapq.heappush(heap, (nd, next(counter), u, origin))
        out[keyword] = lists
    return NeighborLists(out)


def _find_top_answer(
    keywords: Sequence[Label],
    candidates: Dict[Label, Set[Vertex]],
    exclusions: Tuple[FrozenSet[Vertex], ...],
    index: NeighborLists,
    budget: Optional["QueryBudget"] = None,
) -> Optional[RootedAnswer]:
    """Algo 2's ``FindTopAnswer``: best star within the (excluded) space."""
    best: Optional[RootedAnswer] = None
    best_weight = INF
    for i, qi in enumerate(keywords):
        # repr order: equal-weight stars tie-break deterministically.
        for root in sorted(candidates[qi], key=repr):
            if budget is not None:
                budget.checkpoint()
            if root in exclusions[i]:
                continue
            matches: Dict[Label, Match] = {qi: Match(root, 0.0)}
            weight = 0.0
            feasible = True
            for j, qj in enumerate(keywords):
                if j == i:
                    continue
                hit = index.nearest(root, qj, exclusions[j])
                if hit is None:
                    feasible = False
                    break
                d, u = hit
                matches[qj] = Match(u, d)
                weight += d
                if weight >= best_weight:
                    feasible = False
                    break
            if feasible and weight < best_weight:
                best = RootedAnswer(root, matches)
                best_weight = weight
    return best


def rclique_search(
    graph: "GraphLike",
    keywords: Sequence[Label],
    tau: float,
    k: int = 10,
    extra_candidates: Optional[Iterable[Vertex]] = None,
    enforce_bound: bool = True,
    neighbor_list_size: Optional[int] = None,
    search_cutoff: Optional[float] = None,
    budget: Optional["QueryBudget"] = None,
) -> List[RootedAnswer]:
    """Top-``k`` (approximate) r-clique answers for ``(keywords, tau)``.

    Parameters
    ----------
    extra_candidates:
        Vertices admitted as candidates for *every* keyword regardless of
        their labels — PEval passes the portal nodes here (Algo 2 line 1),
        leaving their keywords to be completed on the public graph.
    enforce_bound:
        When true (baseline behaviour) answers whose star distances
        exceed ``tau`` are discarded during the search.  PEval disables
        this: a partial answer over the private graph may still shrink
        below ``tau`` once portal detours are refined in.
    neighbor_list_size:
        Entries kept per (vertex, keyword) in the neighbor index;
        defaults to ``k + 1`` which suffices for ``k`` decompositions.
    search_cutoff:
        Radius of the neighbor index (Kargar-An's ``R``).  Defaults to
        ``tau`` when the bound is enforced, otherwise to a bound covering
        the whole graph.  PEval passes ``tau`` explicitly: like the
        paper's ``R = 3`` neighbor index, matches beyond the radius are
        not recorded even though over-``tau`` partials are kept.
    budget:
        Optional :class:`~repro.core.budget.QueryBudget` charged during
        index construction and star enumeration; expiry raises a
        :class:`~repro.exceptions.BudgetError`.
    """
    if not keywords:
        raise QueryError("r-clique query needs at least one keyword")
    if tau < 0:
        raise QueryError(f"distance bound tau must be >= 0, got {tau}")
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")

    unique_keywords = list(dict.fromkeys(keywords))
    extra = set(extra_candidates or ())
    candidates: Dict[Label, Set[Vertex]] = {}
    for q in unique_keywords:
        cand = set(graph.vertices_with_label(q)) | {v for v in extra if v in graph}
        if not cand:
            return []  # some keyword is unmatchable
        candidates[q] = cand

    # The index cutoff: with the bound enforced a match beyond tau is
    # useless; without it we cap exploration at the requested radius or,
    # failing that, at a bound covering the whole graph.
    if search_cutoff is not None:
        cutoff = search_cutoff
    elif enforce_bound:
        cutoff = tau
    else:
        cutoff = max(tau, _graph_radius_bound(graph))
    m = neighbor_list_size if neighbor_list_size is not None else k + 1
    index = build_neighbor_lists(graph, candidates, cutoff, m, budget=budget)

    empty = tuple(frozenset() for _ in unique_keywords)
    first = _find_top_answer(unique_keywords, candidates, empty, index, budget)
    if first is None:
        return []

    results: List[RootedAnswer] = []
    seen_answers: Set[Tuple[Tuple[Label, Vertex], ...]] = set()
    seen_spaces: Set[Tuple[FrozenSet[Vertex], ...]] = {empty}
    heap: List[Tuple[float, int, Tuple[FrozenSet[Vertex], ...], RootedAnswer]] = []
    tiebreak = itertools.count()
    heapq.heappush(heap, (first.weight(), next(tiebreak), empty, first))

    # Pop budget: with remove-only decomposition the space lattice is
    # exponential, and when fewer than k distinct answers exist an
    # unbounded loop would enumerate all of it.  Decomposing only spaces
    # whose top answer is fresh keeps the frontier linear in k; the
    # budget is a belt-and-braces cap.
    pops_remaining = max(64, 16 * k)
    while heap and len(results) < k and pops_remaining > 0:
        pops_remaining -= 1
        _, _, space, answer = heapq.heappop(heap)
        signature = tuple(
            sorted(((q, m.vertex) for q, m in answer.matches.items()), key=repr)
        )
        fresh = signature not in seen_answers
        if fresh:
            seen_answers.add(signature)
            if not enforce_bound or answer.within_bound(tau):
                results.append(answer)
        else:
            continue
        # Decompose (Algo 2 line 10): one subspace per keyword, excluding
        # that keyword's matched vertex.
        for i, qi in enumerate(unique_keywords):
            matched = answer.matches[qi].vertex
            if matched is None:
                continue
            new_space = tuple(
                excl | {matched} if j == i else excl
                for j, excl in enumerate(space)
            )
            if new_space in seen_spaces:
                continue
            seen_spaces.add(new_space)
            nxt = _find_top_answer(
                unique_keywords, candidates, new_space, index, budget
            )
            if nxt is not None:
                heapq.heappush(heap, (nxt.weight(), next(tiebreak), new_space, nxt))

    results.sort(key=RootedAnswer.sort_key)
    return results


def _graph_radius_bound(graph: "GraphLike") -> float:
    """A safe Dijkstra cutoff covering any shortest path in ``graph``.

    Sum of all edge weights upper-bounds every simple path; used only for
    small private graphs during PEval, where exactness matters more than
    the cutoff's tightness.
    """
    return sum(w for _, _, w in graph.edges()) or 1.0
