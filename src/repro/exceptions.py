"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch every library failure with a single ``except`` clause
while still being able to distinguish graph-construction problems from
query-time and index-time problems.

Budget / robustness errors
--------------------------

Bounded-latency queries (see :mod:`repro.core.budget`) raise members of
the :class:`BudgetError` family when a query exceeds its budget:

* :class:`DeadlineExceededError` — the wall-clock deadline passed;
* :class:`BudgetExhaustedError` — the node-expansion cap was hit;
* :class:`QueryCancelledError` — the budget's cancellation flag was set
  (cooperative cancellation from another thread).

The PPKWS pipeline entry points catch all three and degrade gracefully
(returning the answers completed so far with ``degraded=True``), so
these errors normally only escape when calling the traversal or
semantics layers directly with a budget.

:class:`ServiceOverloadedError` is raised by the service facade's
admission control when too many requests are in flight; it is always
*retryable* — the caller should back off and resubmit.

Wire-protocol errors
--------------------

The service facade translates exceptions into stable machine-readable
``code`` values on ``status: "error"`` responses (see the README's
"Service protocol" section).  :class:`UnknownNetworkError` and
:class:`OwnerNotAttachedError` exist so the two lookup failures map to
``unknown_network`` / ``unknown_owner`` by *type* rather than by
string-matching messages.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by the PPKWS reproduction."""


class GraphError(ReproError):
    """Raised for invalid graph operations (unknown vertices, bad weights)."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex absent from the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge absent from the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class QueryError(ReproError):
    """Raised for malformed keyword queries (empty keyword sets, k <= 0)."""


class UnknownNetworkError(ReproError):
    """Raised when a request names a network the service does not have.

    Distinct from the base class so the facade can map it to the stable
    wire code ``unknown_network`` without string matching.
    """

    def __init__(self, network: object, message: str = "does not exist") -> None:
        super().__init__(f"network {network!r} {message}")
        self.network = network


class OwnerNotAttachedError(GraphError):
    """Raised when a query names an owner with no attachment.

    A :class:`GraphError` (existing callers catching that still work)
    with its own type so the facade can map it to the stable wire code
    ``unknown_owner``.
    """

    def __init__(self, owner: object) -> None:
        super().__init__(f"owner {owner!r} is not attached")
        self.owner = owner


class IndexBuildError(ReproError):
    """Raised when a sketch or distance-map index cannot be constructed."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset specification is inconsistent."""


class BudgetError(ReproError):
    """Base class for query-budget expiry (deadline / expansions / cancel).

    The PPKWS pipelines catch this to degrade gracefully; it only
    propagates out of lower layers called directly with a budget.
    """


class DeadlineExceededError(BudgetError):
    """Raised when a query's wall-clock deadline passes mid-evaluation."""

    def __init__(self, elapsed_ms: float, deadline_ms: float) -> None:
        super().__init__(
            f"query deadline of {deadline_ms:g} ms exceeded "
            f"({elapsed_ms:g} ms elapsed)"
        )
        self.elapsed_ms = elapsed_ms
        self.deadline_ms = deadline_ms


class BudgetExhaustedError(BudgetError):
    """Raised when a query exceeds its node-expansion cap."""

    def __init__(self, expansions: int, max_expansions: int) -> None:
        super().__init__(
            f"query expansion budget of {max_expansions} exhausted "
            f"({expansions} expansions performed)"
        )
        self.expansions = expansions
        self.max_expansions = max_expansions


class QueryCancelledError(BudgetError):
    """Raised at the next checkpoint after a budget was cancelled."""

    def __init__(self) -> None:
        super().__init__("query was cancelled")


class ExecutorShutdownError(ReproError, RuntimeError):
    """Raised when work is submitted to a shut-down :class:`ServiceExecutor`.

    Doubly derived from :class:`RuntimeError` for backward compatibility:
    callers that guarded ``submit`` with ``except RuntimeError`` (the
    pre-taxonomy behaviour) keep working, while new code can catch it as
    a :class:`ReproError` like every other library failure.

    Also used to fail the in-flight future of a worker that dies while
    the executor is shutting down (see ``ServiceExecutor``'s self-healing
    contract), hence the overridable message.
    """

    def __init__(self, message: str = "cannot submit to a shut-down executor") -> None:
        super().__init__(message)


class IndexCorruptError(IndexBuildError):
    """Raised when a persisted index file fails its integrity checks.

    Distinct from the base :class:`IndexBuildError` (which also covers
    *stale* files, e.g. a vertex-count mismatch after the graph changed)
    so the service can quarantine genuinely damaged files — torn writes,
    bit flips, missing checksum trailers, version skew — to
    ``<path>.corrupt`` and report the event, instead of silently
    rebuilding over evidence of disk trouble.
    """

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"corrupt index file {path!r}: {reason}")
        self.path = path
        self.reason = reason


class FaultInjectedError(ReproError):
    """Raised by :mod:`repro.faults` at an armed injection point.

    Never raised in production: a fault schedule must be explicitly
    activated (context manager or ``PPKWS_FAULTS``) for any member of
    this family to fire.  The service facade maps the whole family to
    the wire code ``internal`` — an injected infrastructure fault is
    exactly an unexpected internal failure, not a caller error.
    """

    def __init__(self, point: str, message: "Optional[str]" = None) -> None:
        super().__init__(message or f"injected fault at point {point!r}")
        self.point = point


class WorkerKilledError(FaultInjectedError):
    """Injected ``kill``: simulates a worker thread dying mid-request."""

    def __init__(self, point: str) -> None:
        super().__init__(point, f"injected worker kill at point {point!r}")


class TornWriteError(FaultInjectedError):
    """Injected ``truncate``: simulates a crash after a partial write.

    Raised by the fault layer's write wrapper once ``byte_offset`` bytes
    of the stream have been written; everything after the offset is
    lost, exactly like a power cut mid-``write``.
    """

    def __init__(self, point: str, byte_offset: int) -> None:
        super().__init__(
            point,
            f"injected torn write after {byte_offset} byte(s) "
            f"at point {point!r}",
        )
        self.byte_offset = byte_offset


class ServiceOverloadedError(ReproError):
    """Raised by service admission control when too many requests run.

    Always retryable: the request was rejected *before* any work started,
    so resubmitting after a back-off is safe.
    """

    retryable = True

    def __init__(self, in_flight: int, max_in_flight: int) -> None:
        super().__init__(
            f"service overloaded: {in_flight} requests in flight "
            f"(limit {max_in_flight}); retry later"
        )
        self.in_flight = in_flight
        self.max_in_flight = max_in_flight
