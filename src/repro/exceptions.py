"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch every library failure with a single ``except`` clause
while still being able to distinguish graph-construction problems from
query-time and index-time problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the PPKWS reproduction."""


class GraphError(ReproError):
    """Raised for invalid graph operations (unknown vertices, bad weights)."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex absent from the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge absent from the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class QueryError(ReproError):
    """Raised for malformed keyword queries (empty keyword sets, k <= 0)."""


class IndexBuildError(ReproError):
    """Raised when a sketch or distance-map index cannot be constructed."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset specification is inconsistent."""
