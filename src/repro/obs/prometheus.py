"""Prometheus text-format rendering for :class:`MetricsRegistry`.

No client library: the `exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ is a
stable line protocol, and emitting it directly keeps the repo
dependency-free.  An HTTP wrapper only needs::

    from repro.obs import installed, render_prometheus
    body = render_prometheus(installed())   # content-type text/plain

Histograms render the conventional ``_bucket``/``_sum``/``_count``
triplet with cumulative ``le`` buckets ending at ``+Inf``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = ["render_prometheus"]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _labels(key: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    # Prometheus accepts floats everywhere; render integral values bare.
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def render_prometheus(registry: Optional[MetricsRegistry]) -> str:
    """Render every series of ``registry`` in Prometheus text format.

    ``None`` (observability off) renders to the empty string so callers
    can expose the endpoint unconditionally.
    """
    if registry is None:
        return ""
    data = registry.collect()
    lines: List[str] = []

    for name in sorted(data["counters"]):
        lines.append(f"# TYPE {name} counter")
        for key in sorted(data["counters"][name]):
            lines.append(f"{name}{_labels(key)} {_num(data['counters'][name][key])}")

    for name in sorted(data["gauges"]):
        lines.append(f"# TYPE {name} gauge")
        for key in sorted(data["gauges"][name]):
            lines.append(f"{name}{_labels(key)} {_num(data['gauges'][name][key])}")

    for name in sorted(data["histograms"]):
        lines.append(f"# TYPE {name} histogram")
        for key in sorted(data["histograms"][name]):
            hist = data["histograms"][name][key]
            cumulative = hist.cumulative_counts()
            for bound, count in zip(hist.buckets, cumulative):
                le = 'le="%g"' % bound
                lines.append(f"{name}_bucket{_labels(key, le)} {count}")
            inf = 'le="+Inf"'
            lines.append(f"{name}_bucket{_labels(key, inf)} {cumulative[-1]}")
            lines.append(f"{name}_sum{_labels(key)} {repr(hist.sum)}")
            lines.append(f"{name}_count{_labels(key)} {hist.count}")

    return "\n".join(lines) + ("\n" if lines else "")
