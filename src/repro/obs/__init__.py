"""Observability: process-wide metrics, query traces, Prometheus export.

The ROADMAP's production story ("heavy traffic from millions of users")
needs a monitoring plane: per-op request/latency/degradation metrics, the
per-step timings the paper plots in Fig. 6, cache hit rates, and a ring
of recent slow/degraded/errored query traces.  This package provides it
with zero dependencies and near-zero cost when disabled.

Quick tour::

    from repro import obs

    registry = obs.MetricsRegistry()
    obs.install(registry)                 # process-wide, or pass
                                          # PPKWSService(registry=...)

    service.execute({"op": "blinks", ...})

    registry.value("ppkws_requests_total",
                   labels={"op": "blinks", "status": "ok"})
    print(obs.render_prometheus(registry))   # scrape-ready text

Per-request traces ride in responses behind a request flag
(``"trace": true``) and the service keeps the most recent slow / degraded
/ errored traces in a bounded ring buffer, exposed by the ``metrics``
service op.  See the README's "Observability" section for the metric
catalogue.
"""

from repro.obs.hooks import (
    observe_answer_cache,
    observe_batch_cache,
    observe_batch_request,
    observe_executor_queue,
    observe_executor_request,
    observe_pipeline,
    observe_sweep_reuse,
    observe_vectorized_fallback,
    observe_vectorized_kernel,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    HistogramValue,
    MetricsRegistry,
    install,
    installed,
    uninstall,
)
from repro.obs.trace import QueryTrace, TraceRing

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "HistogramValue",
    "MetricsRegistry",
    "QueryTrace",
    "TraceRing",
    "install",
    "installed",
    "observe_answer_cache",
    "observe_batch_cache",
    "observe_batch_request",
    "observe_executor_queue",
    "observe_executor_request",
    "observe_pipeline",
    "observe_sweep_reuse",
    "observe_vectorized_fallback",
    "observe_vectorized_kernel",
    "render_prometheus",
    "uninstall",
]
