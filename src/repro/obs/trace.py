"""Per-query traces and the slow/degraded-query ring buffer.

A :class:`QueryTrace` is the per-request record the service facade
assembles after every ``execute`` call: which op ran for whom, how long
each pipeline step took (from the existing
:class:`~repro.core.framework.StepBreakdown`), the work counters
(:class:`~repro.core.framework.QueryCounters`), how many budget
expansions the query charged, whether it degraded and where, and — for
failed requests — the error class.  Traces are what an operator pulls
when a dashboard counter spikes: the aggregate said *something* is slow,
the trace says *which query* and *which step*.

:class:`TraceRing` keeps the most recent interesting traces (degraded,
errored, or slower than the service's ``slow_query_ms``) in a bounded
ring buffer — old entries are overwritten, memory stays O(capacity).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["QueryTrace", "TraceRing"]


@dataclass
class QueryTrace:
    """One request's worth of observability, ready to serialize."""

    op: str
    status: str
    duration_ms: float
    network: Optional[str] = None
    owner: Optional[str] = None
    step_ms: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    expansions: Optional[int] = None
    degraded: bool = False
    completed_steps: Tuple[str, ...] = ()
    interrupted_step: Optional[str] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict rendering (response payloads, the metrics op)."""
        out: Dict[str, Any] = {
            "op": self.op,
            "status": self.status,
            "duration_ms": self.duration_ms,
        }
        if self.network is not None:
            out["network"] = self.network
        if self.owner is not None:
            out["owner"] = self.owner
        if self.step_ms:
            out["step_ms"] = dict(self.step_ms)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.expansions is not None:
            out["expansions"] = self.expansions
        if self.degraded:
            out["degraded"] = True
            out["completed_steps"] = list(self.completed_steps)
            out["interrupted_step"] = self.interrupted_step
        if self.error is not None:
            out["error"] = self.error
        return out


class TraceRing:
    """A bounded, thread-safe ring buffer of recent :class:`QueryTrace`."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: Deque[QueryTrace] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, trace: QueryTrace) -> None:
        """Append a trace, evicting the oldest once at capacity."""
        with self._lock:
            self._ring.append(trace)
            self._recorded += 1

    def snapshot(self) -> List[Dict[str, Any]]:
        """Most-recent-last list of trace dicts (a copy)."""
        with self._lock:
            return [t.to_dict() for t in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total traces ever recorded (including evicted ones)."""
        with self._lock:
            return self._recorded
