"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

The ROADMAP's "heavy traffic" story needs eyes: the engine computes a
:class:`~repro.core.framework.StepBreakdown` and
:class:`~repro.core.framework.QueryCounters` on every query, but without
an exporter those numbers die inside the result object.  This module is
the sink: a :class:`MetricsRegistry` holds named counter / gauge /
histogram families (Prometheus-style, with label sets), and the service,
pipeline and batch layers record into whichever registry is *installed*.

Design constraints, in order:

1. **Near-zero cost when observability is off.**  Nothing is recorded
   unless a registry has been installed (:func:`install`) or explicitly
   handed to the service.  The instrumentation points all reduce to one
   ``None`` check per *query* (not per inner-loop iteration), so the
   un-instrumented hot paths are unchanged.
2. **Thread-safe.**  The service facade advertises ``max_in_flight``
   concurrent requests; every mutation of a metric family takes the
   registry's lock.  Updates are a dict lookup plus a float add — the
   lock is held for nanoseconds and is never held while user code runs.
3. **No dependencies.**  Rendering to the Prometheus text format is a
   pure-string affair (:mod:`repro.obs.prometheus`); no client library
   is required.

Example
-------
>>> from repro.obs import MetricsRegistry
>>> reg = MetricsRegistry()
>>> reg.inc("requests_total", labels={"op": "blinks", "status": "ok"})
>>> reg.observe("request_seconds", 0.003, labels={"op": "blinks"})
>>> reg.value("requests_total", labels={"op": "blinks", "status": "ok"})
1.0
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "HistogramValue",
    "MetricsRegistry",
    "install",
    "installed",
    "uninstall",
]

#: Fixed latency buckets (seconds).  Chosen to straddle the repo's query
#: latencies — sub-millisecond k-nk lookups up to multi-second adversarial
#: Blinks sweeps — with roughly-logarithmic spacing, Prometheus-style.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: A label set frozen into a hashable, order-independent key.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, Any]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class HistogramValue:
    """One histogram series: cumulative bucket counts plus sum/count."""

    buckets: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # trailing +Inf

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative counts (one per bucket, then +Inf)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Named counter / gauge / histogram families with label sets.

    All mutation and read methods are thread-safe.  Metric names follow
    Prometheus conventions (``snake_case``, ``_total`` suffix on
    counters) but nothing is enforced — this registry is also the
    backing store for ad-hoc test instrumentation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, HistogramValue]] = {}
        self._histogram_buckets: Dict[str, Tuple[float, ...]] = {}

    # -- write side -----------------------------------------------------
    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Add ``amount`` (default 1) to a counter series."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + amount

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Set a gauge series to ``value``."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, Any]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        """Record ``value`` into a histogram series.

        The bucket layout is fixed by the *first* observation of a
        metric name; later ``buckets`` arguments are ignored so all
        series of one family stay comparable.
        """
        key = _label_key(labels)
        with self._lock:
            bounds = self._histogram_buckets.setdefault(name, tuple(buckets))
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = HistogramValue(bounds)
            hist.observe(value)

    # -- read side ------------------------------------------------------
    def value(
        self, name: str, labels: Optional[Dict[str, Any]] = None
    ) -> float:
        """Current value of a counter or gauge series (0.0 when absent)."""
        key = _label_key(labels)
        with self._lock:
            if name in self._counters:
                return self._counters[name].get(key, 0.0)
            if name in self._gauges:
                return self._gauges[name].get(key, 0.0)
        return 0.0

    def histogram(
        self, name: str, labels: Optional[Dict[str, Any]] = None
    ) -> Optional[HistogramValue]:
        """The histogram series for ``name``/``labels`` (``None`` if absent)."""
        with self._lock:
            series = self._histograms.get(name)
            if series is None:
                return None
            return series.get(_label_key(labels))

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly dump of every series (for the ``metrics`` op)."""

        def fmt(key: LabelKey) -> str:
            return ",".join(f"{k}={v}" for k, v in key)

        with self._lock:
            out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
            for name, series in self._counters.items():
                out["counters"][name] = {fmt(k): v for k, v in series.items()}
            for name, series in self._gauges.items():
                out["gauges"][name] = {fmt(k): v for k, v in series.items()}
            for name, series in self._histograms.items():
                out["histograms"][name] = {
                    fmt(k): {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for k, h in series.items()
                }
            return out

    def collect(self) -> Dict[str, Dict[str, Dict[LabelKey, Any]]]:
        """Raw family maps for renderers (copies; safe to iterate)."""
        with self._lock:
            return {
                "counters": {n: dict(s) for n, s in self._counters.items()},
                "gauges": {n: dict(s) for n, s in self._gauges.items()},
                "histograms": {n: dict(s) for n, s in self._histograms.items()},
            }

    def reset(self) -> None:
        """Drop every series (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._histogram_buckets.clear()


# ----------------------------------------------------------------------
# process-wide installation
# ----------------------------------------------------------------------
_installed: Optional[MetricsRegistry] = None
_install_lock = threading.Lock()


def install(registry: MetricsRegistry) -> Optional[MetricsRegistry]:
    """Install ``registry`` process-wide; returns the previous one."""
    global _installed
    with _install_lock:
        previous, _installed = _installed, registry
    return previous


def uninstall() -> Optional[MetricsRegistry]:
    """Remove the installed registry; returns it (instrumentation goes dark)."""
    global _installed
    with _install_lock:
        previous, _installed = _installed, None
    return previous


def installed() -> Optional[MetricsRegistry]:
    """The process-wide registry, or ``None`` when observability is off."""
    return _installed
