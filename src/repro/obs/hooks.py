"""Instrumentation hooks called from the engine's hot layers.

Each hook is one function call per *query* (never per inner-loop
iteration) and returns immediately when no registry is installed, so the
un-observed fast path pays a global read plus a ``None`` check — within
noise of the pre-observability code (asserted by
``benchmarks/test_obs_overhead.py``).

The pipeline hook lives here rather than in the pipeline modules so the
metric names stay in one catalogue:

``ppkws_step_seconds{pipeline,step}``
    Histogram of per-step wall time (PEval / ARefine / AComplete).
``ppkws_pipeline_degraded_total{pipeline,interrupted_step}``
    Queries whose budget expired mid-pipeline.
``ppkws_query_work_total{pipeline,counter}``
    The :class:`~repro.core.framework.QueryCounters` fields, summed.
``ppkws_batch_cache_hits_total`` / ``ppkws_batch_cache_misses_total``
    :class:`~repro.core.batch.BatchSession` completion-cache traffic.

The serving-layer hooks differ in one way: the service and executor
resolve their *own* effective registry (constructor-injected, else the
installed one), so these take the registry explicitly instead of
reading the global:

``ppkws_answer_cache_hits_total`` / ``ppkws_answer_cache_misses_total``
    Cross-request :class:`~repro.serving.cache.AnswerCache` traffic.
``ppkws_executor_queue_depth``
    Gauge of submitted-but-unfinished executor requests.
``ppkws_executor_wait_seconds`` / ``ppkws_worker_request_seconds{worker}``
    Queue wait and per-worker run-latency histograms.
``ppkws_executor_completed_total{worker}``
    Per-worker completion counter.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Optional

from repro.obs.registry import MetricsRegistry, installed

__all__ = [
    "observe_pipeline",
    "observe_batch_cache",
    "observe_batch_request",
    "observe_answer_cache",
    "observe_executor_queue",
    "observe_executor_request",
    "observe_sweep_reuse",
    "observe_vectorized_fallback",
    "observe_vectorized_kernel",
]

_STEPS = ("peval", "arefine", "acomplete")


def observe_pipeline(pipeline: str, result: Any) -> None:
    """Record one pipeline query result into the installed registry.

    ``result`` is a :class:`~repro.core.framework.QueryResult` or
    :class:`~repro.core.framework.KnkQueryResult`; duck-typing avoids an
    import cycle (core imports obs, not vice versa).
    """
    registry = installed()
    if registry is None:
        return
    breakdown = result.breakdown
    for step in _STEPS:
        registry.observe(
            "ppkws_step_seconds",
            getattr(breakdown, step),
            labels={"pipeline": pipeline, "step": step},
        )
    counters = result.counters
    for f in dataclass_fields(counters):
        value = getattr(counters, f.name)
        if value:
            registry.inc(
                "ppkws_query_work_total",
                amount=value,
                labels={"pipeline": pipeline, "counter": f.name},
            )
    if result.degraded:
        registry.inc(
            "ppkws_pipeline_degraded_total",
            labels={
                "pipeline": pipeline,
                "interrupted_step": result.interrupted_step or "unknown",
            },
        )


def observe_batch_cache(hits: int, misses: int) -> None:
    """Record completion-cache traffic deltas from a batch query."""
    if hits == 0 and misses == 0:
        return
    registry = installed()
    if registry is None:
        return
    if hits:
        registry.inc("ppkws_batch_cache_hits_total", amount=hits)
    if misses:
        registry.inc("ppkws_batch_cache_misses_total", amount=misses)


def observe_batch_request(items_by_status: "dict[str, int]") -> None:
    """Record one ``{"op": "batch"}`` request and its per-item outcomes."""
    registry = installed()
    if registry is None:
        return
    registry.inc("ppkws_batch_requests_total")
    for status, count in items_by_status.items():
        if count:
            registry.inc(
                "ppkws_batch_items_total",
                amount=count,
                labels={"status": status},
            )


def observe_vectorized_kernel(kernel: str, columns: int) -> None:
    """Record one vectorized kernel invocation and its column count."""
    registry = installed()
    if registry is None:
        return
    registry.inc("ppkws_vectorized_kernel_total", labels={"kernel": kernel})
    if columns:
        registry.inc("ppkws_vectorized_columns_total", amount=columns)


def observe_vectorized_fallback() -> None:
    """Record an explicit vectorized request that fell back to pure."""
    registry = installed()
    if registry is None:
        return
    registry.inc("ppkws_vectorized_fallbacks_total")


def observe_sweep_reuse(hits: int) -> None:
    """Record cross-query sweep-memo hits (batch-level PKA reuse)."""
    registry = installed()
    if registry is None:
        return
    registry.inc("ppkws_batch_sweep_reuse_total", amount=hits)


def observe_answer_cache(registry: Optional[MetricsRegistry], hit: bool) -> None:
    """Record one cross-request answer-cache lookup outcome."""
    if registry is None:
        return
    if hit:
        registry.inc("ppkws_answer_cache_hits_total")
    else:
        registry.inc("ppkws_answer_cache_misses_total")


def observe_executor_queue(
    registry: Optional[MetricsRegistry], depth: int
) -> None:
    """Update the executor's queue-depth gauge."""
    if registry is None:
        return
    registry.set_gauge("ppkws_executor_queue_depth", depth)


def observe_executor_request(
    registry: Optional[MetricsRegistry],
    worker: str,
    wait_s: float,
    run_s: float,
) -> None:
    """Record one completed executor request: wait + per-worker latency."""
    if registry is None:
        return
    registry.observe("ppkws_executor_wait_seconds", wait_s)
    registry.observe(
        "ppkws_worker_request_seconds", run_s, labels={"worker": worker}
    )
    registry.inc("ppkws_executor_completed_total", labels={"worker": worker})
