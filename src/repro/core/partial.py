"""Partial answers and refinement indicators (paper Sec. III).

PEval runs the (modified) keyword-search algorithm on the private graph
and emits :class:`PartialAnswer` objects: an ordinary rooted answer plus

* the *refinement indicators* ``C`` — the vertex/keyword pairs whose
  recorded distances might shrink once the private graph is attached to
  the public one (consumed by ARefine), and
* qualification bookkeeping — which keywords were matched by genuine
  private vertices vs. routed through portals (consumed by the
  public-private answer test of Def. II.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.labeled_graph import Label, Vertex
from repro.semantics.answers import KnkAnswer, Match, RootedAnswer

__all__ = [
    "PairIndicator",
    "KeywordIndicator",
    "PartialAnswer",
    "PartialKnkAnswer",
    "salvage_rooted_answers",
]


@dataclass(frozen=True)
class PairIndicator:
    """A ``(v, u)`` vertex pair whose distance ARefine should tighten.

    ``keyword`` names the query keyword whose match produced the pair, so
    the refined distance can be written back into the right match slot.
    """

    v: Vertex
    u: Vertex
    keyword: Label


@dataclass(frozen=True)
class KeywordIndicator:
    """A ``(root, keyword)`` pair to tighten via portal-keyword detours.

    This is the Blinks-style indicator (paper Algo 4): the match vertex
    itself may change if a different keyword vertex becomes closer
    through the portals.
    """

    root: Vertex
    keyword: Label


@dataclass
class PartialAnswer:
    """A rooted partial answer with its refinement / completion metadata."""

    answer: RootedAnswer
    pair_indicators: List[PairIndicator] = field(default_factory=list)
    keyword_indicators: List[KeywordIndicator] = field(default_factory=list)
    #: keywords matched by a real private vertex (portal-routed ones are
    #: excluded) — the counter behind the public-private qualification.
    private_matched: Set[Label] = field(default_factory=set)
    #: keyword -> portal it is currently routed through (completion target)
    portal_routed: Dict[Label, Vertex] = field(default_factory=dict)
    #: keywords with no private match at all (Blinks "missing keywords")
    missing: Set[Label] = field(default_factory=set)
    #: keywords completed by a public vertex during AComplete
    public_matched: Set[Label] = field(default_factory=set)

    @property
    def root(self) -> Vertex:
        """The answer root (delegates to the wrapped answer)."""
        return self.answer.root

    def match(self, keyword: Label) -> Optional[Match]:
        """The match slot for ``keyword`` (``None`` if absent)."""
        return self.answer.matches.get(keyword)

    def set_match(self, keyword: Label, vertex: Optional[Vertex], d: float) -> None:
        """Write a match slot (creating it if needed)."""
        self.answer.matches[keyword] = Match(vertex, d)

    def is_public_private(self) -> bool:
        """Def. II.2: keywords matched on both the private and public side."""
        return bool(self.private_matched) and bool(self.public_matched)

    def copy(self) -> "PartialAnswer":
        """Deep copy — AComplete's backward expansion clones per new root."""
        return PartialAnswer(
            answer=self.answer.copy(),
            pair_indicators=list(self.pair_indicators),
            keyword_indicators=list(self.keyword_indicators),
            private_matched=set(self.private_matched),
            portal_routed=dict(self.portal_routed),
            missing=set(self.missing),
            public_matched=set(self.public_matched),
        )


def salvage_rooted_answers(
    partials: Iterable[PartialAnswer],
    tau: float,
    k: int,
) -> List[RootedAnswer]:
    """Best already-complete answers among ``partials`` (degraded mode).

    When a query budget expires mid-pipeline the interrupted step's work
    is lost, but partial answers whose every keyword is matched by a
    *genuine* vertex within ``tau`` are already structurally valid — the
    recorded distances are realized by actual paths, so they satisfy the
    achievability checks of :func:`repro.validation.validate_rooted_answer`.
    Keywords still routed through a portal or missing entirely disqualify
    an answer (the portal is not a real match).  The public-private
    qualification of Def. II.2 is *not* enforced here; degraded results
    are marked so callers know the answer set is best-effort.

    Bounded work: one pass plus a sort — safe to run after expiry.
    """
    out: List[RootedAnswer] = []
    for partial in partials:
        answer = partial.answer
        if partial.missing or partial.portal_routed or not answer.matches:
            continue
        if any(not m.is_resolved() for m in answer.matches.values()):
            continue
        if not answer.within_bound(tau):
            continue
        out.append(answer)
    out.sort(key=RootedAnswer.sort_key)
    return out[:k]


@dataclass
class PartialKnkAnswer:
    """PEval output for k-nk: the private top-k plus portal candidates.

    ``portal_entries`` lists ``(portal, d'(source, portal))`` pairs —
    completion extends each with the portal's public-side distance to the
    query keyword (Appx. A).
    """

    answer: KnkAnswer
    pair_indicators: List[PairIndicator] = field(default_factory=list)
    portal_entries: List[Tuple[Vertex, float]] = field(default_factory=list)
