"""Query budgets: deadlines, expansion caps and cooperative cancellation.

The ROADMAP's production story needs *bounded* query latency: a single
adversarial query (huge ``tau``, dense private graph, hub-heavy keyword)
must not pin a worker indefinitely.  :class:`QueryBudget` is the
cancellation token threaded cooperatively through the hot paths — the
Dijkstra variants in :mod:`repro.graph.traversal`, the semantics-level
sweeps, and the PEval / ARefine / AComplete pipeline modules all call
:meth:`QueryBudget.checkpoint` once per unit of work (typically one heap
pop, i.e. one node expansion).

``checkpoint`` is designed to be cheap enough for the innermost loops:

* the expansion counter and the cancellation flag are checked on every
  call (an integer compare and an attribute read);
* the wall clock is only read every ``check_interval`` expansions, so the
  amortized cost of deadline enforcement is a fraction of a
  ``time.monotonic()`` call per expansion;
* the interval *adapts* to the observed cost of a checkpoint: loops whose
  per-checkpoint work is heavy (e.g. one oracle refinement instead of one
  heap pop) shrink the interval so deadline overshoot stays bounded by
  wall-clock time (~:data:`TARGET_CLOCK_GAP_S`), not by expansion count.

When a limit is hit, ``checkpoint`` raises the matching member of the
:class:`~repro.exceptions.BudgetError` family.  The pipeline entry
points catch it and *degrade gracefully*: each PPKWS step produces
usable intermediate answers, so an expiring query returns the best
answers completed so far instead of nothing (see ``QueryResult.degraded``).

This module deliberately depends only on :mod:`repro.exceptions` so the
graph and semantics layers can accept a budget without import cycles.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.exceptions import (
    BudgetExhaustedError,
    DeadlineExceededError,
    QueryCancelledError,
)

__all__ = ["QueryBudget", "DEFAULT_CHECK_INTERVAL", "TARGET_CLOCK_GAP_S"]

#: How many expansions pass between wall-clock reads.  At ~1 µs per heap
#: pop this bounds deadline overshoot to well under a millisecond.
DEFAULT_CHECK_INTERVAL = 256

#: Desired wall-clock spacing of deadline checks (seconds).  When the
#: observed gap between two clock reads exceeds this, the interval
#: shrinks; far below it, the interval grows back (never above the
#: configured ``check_interval``).
TARGET_CLOCK_GAP_S = 0.001


class QueryBudget:
    """A per-query budget: wall-clock deadline, expansion cap, cancel flag.

    Parameters
    ----------
    deadline_ms:
        Wall-clock budget in milliseconds, measured from construction.
        ``None`` disables deadline enforcement.
    max_expansions:
        Cap on the total number of node expansions charged via
        :meth:`checkpoint`.  ``None`` disables the cap.
    check_interval:
        Expansions between wall-clock reads (amortization of the
        deadline check).
    clock:
        Monotonic clock returning seconds; injectable for tests.

    Example
    -------
    >>> budget = QueryBudget(max_expansions=2)
    >>> budget.checkpoint()
    >>> budget.checkpoint()
    >>> budget.checkpoint()
    Traceback (most recent call last):
        ...
    repro.exceptions.BudgetExhaustedError: query expansion budget of 2 \
exhausted (3 expansions performed)
    """

    __slots__ = (
        "deadline_ms",
        "max_expansions",
        "check_interval",
        "expansions",
        "_clock",
        "_started",
        "_deadline",
        "_interval",
        "_last_check_time",
        "_next_clock_check",
        "_cancelled",
    )

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline_ms = deadline_ms
        self.max_expansions = max_expansions
        self.check_interval = max(1, int(check_interval))
        self.expansions = 0
        self._clock = clock
        self._started = clock()
        self._deadline = (
            self._started + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        # First deadline check happens on the first checkpoint so that an
        # already-expired budget (deadline_ms <= 0) fails fast.
        self._next_clock_check = 0
        # Start with a short interval and let fast loops grow it: a heavy
        # loop then pays at most a few iterations before the first
        # adaptation, while a cheap loop reaches check_interval within a
        # handful of (cheap) clock reads.
        self._interval = min(8, self.check_interval)
        self._last_check_time = self._started
        self._cancelled = False

    # ------------------------------------------------------------------
    def checkpoint(self, cost: int = 1) -> None:
        """Charge ``cost`` expansions; raise if any limit was crossed.

        Raises
        ------
        QueryCancelledError
            If :meth:`cancel` was called.
        BudgetExhaustedError
            If the expansion cap is exceeded.
        DeadlineExceededError
            If the wall-clock deadline has passed (checked every
            ``check_interval`` expansions).
        """
        self.expansions += cost
        if self._cancelled:
            raise QueryCancelledError()
        if self.max_expansions is not None and self.expansions > self.max_expansions:
            raise BudgetExhaustedError(self.expansions, self.max_expansions)
        if self._deadline is not None and self.expansions >= self._next_clock_check:
            now = self._clock()
            # Adapt the interval to the observed per-checkpoint cost: a
            # checkpoint may guard one heap pop or one oracle refinement,
            # orders of magnitude apart in wall-clock terms.  Aim the
            # next read ~TARGET_CLOCK_GAP_S away so deadline overshoot is
            # bounded in *time* whatever the loop's unit of work.
            gap = now - self._last_check_time
            self._last_check_time = now
            if gap > TARGET_CLOCK_GAP_S:
                self._interval = max(1, self._interval // 4)
            elif gap < TARGET_CLOCK_GAP_S / 8:
                self._interval = min(self.check_interval, self._interval * 2)
            self._next_clock_check = self.expansions + self._interval
            if now > self._deadline:
                raise DeadlineExceededError(
                    (now - self._started) * 1000.0, self.deadline_ms or 0.0
                )

    def recheck(self) -> None:
        """Unamortized limit check: force a clock read right now.

        The pipeline calls this at step boundaries so a deadline that
        passed near the end of one step is detected before the next step
        starts, however the amortization counters happen to be aligned.
        The adaptive interval is also reset: the unit of work usually
        changes across a boundary (a heap pop vs an oracle refinement),
        so the next phase re-learns its own checkpoint cost instead of
        inheriting an interval tuned to the previous phase.
        """
        self._interval = min(8, self.check_interval)
        self._next_clock_check = self.expansions
        self.checkpoint(cost=0)

    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cooperative cancellation (thread-safe: a flag write)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._cancelled

    def elapsed_ms(self) -> float:
        """Milliseconds since the budget was created."""
        return (self._clock() - self._started) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds until the deadline (``None`` without a deadline).

        Can be negative once the deadline has passed.
        """
        if self._deadline is None:
            return None
        return (self._deadline - self._clock()) * 1000.0

    def expired(self) -> bool:
        """Non-raising probe: would :meth:`recheck` raise right now?

        Reads the clock directly (no amortization) — use between pipeline
        steps, not in inner loops.

        The expansion comparison is deliberately strict (``>``) to match
        :meth:`checkpoint`: a cap of ``N`` allows exactly ``N`` charged
        expansions, so a query sitting *at* the cap is not expired.  (A
        lenient ``>=`` here used to declare boundary queries expired at
        step boundaries while in-loop checkpoints let them run, yielding
        inconsistent ``interrupted_step`` reporting.)
        """
        if self._cancelled:
            return True
        if self.max_expansions is not None and self.expansions > self.max_expansions:
            return True
        return self._deadline is not None and self._clock() > self._deadline

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueryBudget deadline_ms={self.deadline_ms!r} "
            f"max_expansions={self.max_expansions!r} "
            f"expansions={self.expansions} cancelled={self._cancelled}>"
        )
