"""Persistence for the public index (PADS / KPADS / PageRank).

The public index is the only expensive artifact in PPKWS — it is built
once per public graph and shared by every user — so a production
deployment wants it on disk.  The format is JSON-lines: one record per
vertex sketch / keyword sketch, self-describing and diff-friendly.

Vertex identity: JSON only has strings and numbers, so vertices are
stored with a one-character type tag (``i:42`` / ``s:name``).  Only
``int`` and ``str`` vertices are supported for persistence — the
generators and datasets use exactly these.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from repro.core.framework import PublicIndex
from repro.exceptions import IndexBuildError
from repro.graph.labeled_graph import Vertex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.protocol import GraphLike
from repro.sketches.base import DistanceSketch
from repro.sketches.kpads import KeywordSketch

__all__ = ["save_index", "load_index"]

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT_VERSION = 1


def _encode_vertex(v: Vertex) -> str:
    if isinstance(v, bool) or not isinstance(v, (int, str)):
        raise IndexBuildError(
            f"only int and str vertices can be persisted, got {type(v).__name__}"
        )
    return f"i:{v}" if isinstance(v, int) else f"s:{v}"


def _decode_vertex(token: str) -> Vertex:
    tag, _, body = token.partition(":")
    if tag == "i":
        return int(body)
    if tag == "s":
        return body
    raise IndexBuildError(f"malformed vertex token {token!r}")


def save_index(index: PublicIndex, path: PathLike) -> None:
    """Write a :class:`PublicIndex` to ``path`` (JSON lines)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({
            "record": "header",
            "version": _FORMAT_VERSION,
            "k": index.pads.k,
            "kpads_per_center": index.kpads.per_center,
            "num_vertices": index.pads.num_vertices,
        }) + "\n")
        for v, score in index.pagerank_scores.items():
            fh.write(json.dumps({
                "record": "pagerank",
                "v": _encode_vertex(v),
                "score": score,
            }) + "\n")
        for v, sketch in index.pads.entries.items():
            fh.write(json.dumps({
                "record": "pads",
                "v": _encode_vertex(v),
                "centers": [[_encode_vertex(c), d] for c, d in sketch.items()],
            }) + "\n")
        for t, merged in index.kpads.entries.items():
            witnesses = index.kpads.witnesses.get(t, {})
            candidates = index.kpads.candidates.get(t, {})
            fh.write(json.dumps({
                "record": "kpads",
                "t": t,
                "centers": [
                    [
                        _encode_vertex(c),
                        d,
                        _encode_vertex(witnesses[c]),
                        [[cd, _encode_vertex(cv)] for cd, cv in candidates.get(c, [])],
                    ]
                    for c, d in merged.items()
                ],
            }) + "\n")


def load_index(graph: "GraphLike", path: PathLike) -> PublicIndex:
    """Read a :class:`PublicIndex` previously written by :func:`save_index`.

    ``graph`` must be the same public graph the index was built over
    (checked by vertex count; deeper consistency is the caller's
    responsibility, exactly as with any on-disk index).  Either backend
    works; pass a :class:`~repro.graph.frozen.FrozenGraph` to get a
    frozen engine from a loaded index.
    """
    pagerank_scores: Dict[Vertex, float] = {}
    pads_entries: Dict[Vertex, Dict[Vertex, float]] = {}
    kpads_entries: Dict[str, Dict[Vertex, float]] = {}
    kpads_witnesses: Dict[str, Dict[Vertex, Vertex]] = {}
    kpads_candidates: Dict[str, Dict[Vertex, List[Tuple[float, Vertex]]]] = {}
    header = None

    with open(path, encoding="utf-8") as fh:
        for line in fh:
            rec = json.loads(line)
            kind = rec["record"]
            if kind == "header":
                header = rec
                if rec.get("version") != _FORMAT_VERSION:
                    raise IndexBuildError(
                        f"unsupported index format version {rec.get('version')}"
                    )
            elif kind == "pagerank":
                pagerank_scores[_decode_vertex(rec["v"])] = rec["score"]
            elif kind == "pads":
                pads_entries[_decode_vertex(rec["v"])] = {
                    _decode_vertex(c): d for c, d in rec["centers"]
                }
            elif kind == "kpads":
                t = rec["t"]
                merged: Dict[Vertex, float] = {}
                wit: Dict[Vertex, Vertex] = {}
                cand: Dict[Vertex, List[Tuple[float, Vertex]]] = {}
                for c_tok, d, w_tok, cand_list in rec["centers"]:
                    c = _decode_vertex(c_tok)
                    merged[c] = d
                    wit[c] = _decode_vertex(w_tok)
                    cand[c] = [(cd, _decode_vertex(cv)) for cd, cv in cand_list]
                kpads_entries[t] = merged
                kpads_witnesses[t] = wit
                kpads_candidates[t] = cand
            else:
                raise IndexBuildError(f"unknown record kind {kind!r}")

    if header is None:
        raise IndexBuildError(f"{path}: missing index header record")
    if header["num_vertices"] != graph.num_vertices:
        raise IndexBuildError(
            f"index was built over {header['num_vertices']} vertices but the "
            f"graph has {graph.num_vertices}"
        )

    pads = DistanceSketch(pads_entries, header["k"], kind="PADS")
    kpads = KeywordSketch(
        kpads_entries,
        kpads_witnesses,
        header["k"],
        kpads_candidates,
        header["kpads_per_center"],
    )
    return PublicIndex(graph, pads, kpads, pagerank_scores)
