"""Persistence for the public index (PADS / KPADS / PageRank).

The public index is the only expensive artifact in PPKWS — it is built
once per public graph and shared by every user — so a production
deployment wants it on disk.  The format is JSON-lines: one record per
vertex sketch / keyword sketch, self-describing and diff-friendly.

Crash safety (format v2)
------------------------
``save_index`` writes through :func:`repro.ioutil.atomic_write`
(tmp + fsync + rename), so a crash mid-save leaves the previous index
intact — never a truncated hybrid at ``path``.  The file ends with a
checksummed trailer record::

    {"record": "trailer", "records": N, "sha256": "<hex>"}

where the digest covers every preceding raw line.  ``load_index``
verifies the trailer *before* interpreting any record: a truncated
file, a bit flip, a missing trailer or a record-count mismatch raises
:class:`~repro.exceptions.IndexCorruptError` (which the service facade
quarantines to ``<path>.corrupt``) instead of half-loading a damaged
index.  A *stale* file — right format, wrong graph — still raises the
base :class:`~repro.exceptions.IndexBuildError`, which callers treat
as "rebuild".

Vertex identity: JSON only has strings and numbers, so vertices are
stored with a one-character type tag (``i:42`` / ``s:name``).  Only
``int`` and ``str`` vertices are supported for persistence — the
generators and datasets use exactly these.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple, Union

from repro import faults
from repro.core.framework import PublicIndex
from repro.exceptions import IndexBuildError, IndexCorruptError
from repro.faults.points import (
    PERSIST_LOAD_READ,
    PERSIST_SAVE_FSYNC,
    PERSIST_SAVE_RENAME,
    PERSIST_SAVE_WRITE,
)
from repro.graph.labeled_graph import Vertex
from repro.ioutil import atomic_write

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.protocol import GraphLike
from repro.sketches.base import DistanceSketch
from repro.sketches.kpads import KeywordSketch

__all__ = ["save_index", "load_index"]

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT_VERSION = 2


def _encode_vertex(v: Vertex) -> str:
    if isinstance(v, bool) or not isinstance(v, (int, str)):
        raise IndexBuildError(
            f"only int and str vertices can be persisted, got {type(v).__name__}"
        )
    return f"i:{v}" if isinstance(v, int) else f"s:{v}"


def _decode_vertex(token: str) -> Vertex:
    tag, _, body = token.partition(":")
    if tag == "i":
        return int(body)
    if tag == "s":
        return body
    raise IndexBuildError(f"malformed vertex token {token!r}")


def _iter_records(index: PublicIndex) -> Iterator[str]:
    """Yield every record line (with newline), trailer excluded."""
    yield json.dumps({
        "record": "header",
        "version": _FORMAT_VERSION,
        "k": index.pads.k,
        "kpads_per_center": index.kpads.per_center,
        "num_vertices": index.pads.num_vertices,
    }) + "\n"
    for v, score in index.pagerank_scores.items():
        yield json.dumps({
            "record": "pagerank",
            "v": _encode_vertex(v),
            "score": score,
        }) + "\n"
    for v, sketch in index.pads.entries.items():
        yield json.dumps({
            "record": "pads",
            "v": _encode_vertex(v),
            "centers": [[_encode_vertex(c), d] for c, d in sketch.items()],
        }) + "\n"
    for t, merged in index.kpads.entries.items():
        witnesses = index.kpads.witnesses.get(t, {})
        candidates = index.kpads.candidates.get(t, {})
        yield json.dumps({
            "record": "kpads",
            "t": t,
            "centers": [
                [
                    _encode_vertex(c),
                    d,
                    _encode_vertex(witnesses[c]),
                    [[cd, _encode_vertex(cv)] for cd, cv in candidates.get(c, [])],
                ]
                for c, d in merged.items()
            ],
        }) + "\n"


def save_index(index: PublicIndex, path: PathLike) -> None:
    """Write a :class:`PublicIndex` to ``path`` atomically (JSON lines).

    The new file becomes visible at ``path`` only after it is complete
    and fsynced; a crash at any instant leaves the previous contents of
    ``path`` (or no file) — never a torn write.
    """
    digest = hashlib.sha256()
    count = 0
    with atomic_write(
        os.fspath(path),
        PERSIST_SAVE_WRITE,
        PERSIST_SAVE_FSYNC,
        PERSIST_SAVE_RENAME,
    ) as fh:
        for line in _iter_records(index):
            digest.update(line.encode("utf-8"))
            count += 1
            fh.write(line)
        fh.write(json.dumps({
            "record": "trailer",
            "records": count,
            "sha256": digest.hexdigest(),
        }) + "\n")


def _verify_trailer(path: PathLike, lines: List[str]) -> List[str]:
    """Integrity-check ``lines``; return the record lines sans trailer."""
    if not lines:
        raise IndexCorruptError(path, "empty index file")
    try:
        trailer = json.loads(lines[-1])
    except ValueError:
        raise IndexCorruptError(
            path, "last line is not valid JSON (truncated write?)"
        ) from None
    if not isinstance(trailer, dict) or trailer.get("record") != "trailer":
        raise IndexCorruptError(
            path, "missing checksum trailer (truncated write?)"
        )
    body = lines[:-1]
    records = trailer.get("records")
    if records != len(body):
        raise IndexCorruptError(
            path,
            f"trailer expects {records} record(s) but file has {len(body)}",
        )
    digest = hashlib.sha256("".join(body).encode("utf-8")).hexdigest()
    if digest != trailer.get("sha256"):
        raise IndexCorruptError(path, "checksum mismatch (bit flip?)")
    return body


def load_index(graph: "GraphLike", path: PathLike) -> PublicIndex:
    """Read a :class:`PublicIndex` previously written by :func:`save_index`.

    ``graph`` must be the same public graph the index was built over
    (checked by vertex count; deeper consistency is the caller's
    responsibility, exactly as with any on-disk index).  Either backend
    works; pass a :class:`~repro.graph.frozen.FrozenGraph` to get a
    frozen engine from a loaded index.

    Raises :class:`~repro.exceptions.IndexCorruptError` when the file
    fails its integrity checks (truncation, bit flip, version skew) and
    plain :class:`~repro.exceptions.IndexBuildError` when the file is
    merely stale for ``graph``.
    """
    pagerank_scores: Dict[Vertex, float] = {}
    pads_entries: Dict[Vertex, Dict[Vertex, float]] = {}
    kpads_entries: Dict[str, Dict[Vertex, float]] = {}
    kpads_witnesses: Dict[str, Dict[Vertex, Vertex]] = {}
    kpads_candidates: Dict[str, Dict[Vertex, List[Tuple[float, Vertex]]]] = {}
    header = None

    faults.fire(PERSIST_LOAD_READ)
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    body = _verify_trailer(path, lines)

    for line in body:
        try:
            rec = json.loads(line)
            kind = rec["record"]
            if kind == "header":
                header = rec
                if rec.get("version") != _FORMAT_VERSION:
                    raise IndexCorruptError(
                        path,
                        f"unsupported index format version {rec.get('version')}",
                    )
            elif kind == "pagerank":
                pagerank_scores[_decode_vertex(rec["v"])] = rec["score"]
            elif kind == "pads":
                pads_entries[_decode_vertex(rec["v"])] = {
                    _decode_vertex(c): d for c, d in rec["centers"]
                }
            elif kind == "kpads":
                t = rec["t"]
                merged: Dict[Vertex, float] = {}
                wit: Dict[Vertex, Vertex] = {}
                cand: Dict[Vertex, List[Tuple[float, Vertex]]] = {}
                for c_tok, d, w_tok, cand_list in rec["centers"]:
                    c = _decode_vertex(c_tok)
                    merged[c] = d
                    wit[c] = _decode_vertex(w_tok)
                    cand[c] = [(cd, _decode_vertex(cv)) for cd, cv in cand_list]
                kpads_entries[t] = merged
                kpads_witnesses[t] = wit
                kpads_candidates[t] = cand
            elif kind == "trailer":
                raise IndexCorruptError(
                    path, "trailer record before end of file"
                )
            else:
                raise IndexCorruptError(path, f"unknown record kind {kind!r}")
        except IndexBuildError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            # The checksum passed but a record does not decode: the file
            # was damaged before the trailer was computed (or hand-edited).
            raise IndexCorruptError(
                path, f"undecodable record: {type(exc).__name__}: {exc}"
            ) from exc

    if header is None:
        raise IndexCorruptError(path, "missing index header record")
    if header["num_vertices"] != graph.num_vertices:
        # Stale, not corrupt: the graph changed since the index was
        # built.  Callers rebuild silently, exactly as before v2.
        raise IndexBuildError(
            f"index was built over {header['num_vertices']} vertices but the "
            f"graph has {graph.num_vertices}"
        )

    pads = DistanceSketch(pads_entries, header["k"], kind="PADS")
    kpads = KeywordSketch(
        kpads_entries,
        kpads_witnesses,
        header["k"],
        kpads_candidates,
        header["kpads_per_center"],
    )
    return PublicIndex(graph, pads, kpads, pagerank_scores)
