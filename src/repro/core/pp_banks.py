"""PP-BANKS: tree answers on top of PPKWS.

BANKS answers are Blinks answers plus the materialized tree, so the
framework part is exactly PP-Blinks; only the *presentation* differs.
Reconstructing trees during search would defeat PPKWS (it would traverse
the combined graph), so PP-BANKS:

1. runs the PP-Blinks steps (PEval / ARefine / AComplete — the spec
   literally shares the step functions of :mod:`repro.core.pp_blinks`)
   to get the top-k rooted answers, then
2. materializes each answer's tree by shortest-path reconstruction over
   the *lazy* combined view (:func:`repro.graph.views.combine_lazy`) —
   ``O(k)`` point-to-point searches, no graph copy.

A pleasant side effect: reconstruction computes exact combined-graph
paths, so the returned match distances are exact (they can only improve
on the sketch estimates that ranked the answers).

The ``materialize`` step is engine-timed like any other but has no
:class:`~repro.core.framework.StepBreakdown` slot (the breakdown is the
paper's three-step accounting); a budget expiring mid-materialization
salvages the trees already built plus the remaining rooted answers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.budget import QueryBudget
from repro.core.engine import (
    PipelineContext,
    SemanticsSpec,
    StepSpec,
    register_semantics,
)
from repro.core.framework import Attachment, PPKWS, QueryResult
from repro.core.pp_blinks import (
    init_blinks_state,
    salvage_blinks,
    step_acomplete,
    step_acomplete_sharded,
    step_acomplete_vectorized,
    step_arefine,
    step_peval,
    validate_blinks_params,
)
from repro.graph.labeled_graph import Label
from repro.graph.traversal import shortest_path
from repro.graph.views import combine_lazy
from repro.semantics.answers import RootedAnswer
from repro.semantics.banks import TreeAnswer
from repro.semantics.wire import (
    rooted_cache_params,
    rooted_payload,
    rooted_wire_params,
)

__all__ = ["pp_banks_query"]


def _step_materialize(ctx: PipelineContext) -> None:
    """Step 4: reconstruct each answer's tree on the lazy combined view."""
    view = combine_lazy(ctx.engine.public, ctx.attachment.private)
    trees: List[RootedAnswer] = ctx.scratch.setdefault("trees", [])
    for idx, answer in enumerate(ctx.answers):
        # Progress markers for salvage: trees built so far, index of the
        # answer being materialized when the budget expired.
        ctx.scratch["idx"] = idx
        tree = TreeAnswer(answer.root, {})
        for q, m in answer.matches.items():
            tree.matches[q] = m.copy()
            if m.vertex is None or m.vertex == answer.root:
                continue
            path = shortest_path(view, answer.root, m.vertex, budget=ctx.budget)
            if path is None:  # pragma: no cover - answers are connected
                continue
            total = 0.0
            for u, v in zip(path, path[1:]):
                tree.edges.add(frozenset((u, v)))
                total += view.weight(u, v)
            # Exact path length can only improve on the sketch estimate.
            if total < tree.matches[q].distance:
                tree.matches[q].distance = total
        trees.append(tree)
    trees.sort(key=RootedAnswer.sort_key)
    ctx.answers = list(trees)


def _salvage(ctx: PipelineContext, step: str) -> List[RootedAnswer]:
    if step == "materialize":
        # Trees already materialized keep their edges / exact paths; the
        # remaining rooted answers ride along as-is (ranked, no edges).
        trees: List[RootedAnswer] = ctx.scratch.get("trees", [])
        idx: int = ctx.scratch.get("idx", 0)
        salvaged = list(trees) + list(ctx.answers[idx:])
        salvaged.sort(key=RootedAnswer.sort_key)
        return salvaged
    return salvage_blinks(ctx, step)


BANKS = register_semantics(SemanticsSpec(
    name="banks",
    summary="Top-k tree answers (PP-BANKS: Blinks + lazy materialization).",
    steps=(
        StepSpec("peval", step_peval),
        StepSpec("arefine", step_arefine),
        StepSpec(
            "acomplete", step_acomplete,
            step_acomplete_sharded, step_acomplete_vectorized,
        ),
        StepSpec("materialize", _step_materialize),
    ),
    validate=validate_blinks_params,
    init=init_blinks_state,
    salvage=_salvage,
    count_answers=len,
    result_type=QueryResult,
    wire_required=("network", "owner", "keywords"),
    wire_optional=("tau", "k"),
    wire_params=rooted_wire_params,
    wire_payload=rooted_payload,
    wire_cache_params=rooted_cache_params,
))


def pp_banks_query(
    engine: PPKWS,
    attachment: Attachment,
    keywords: List[Label],
    tau: float,
    k: int,
    require_public_private: bool,
    budget: Optional[QueryBudget] = None,
) -> QueryResult:
    """PP-Blinks followed by lazy tree materialization."""
    return BANKS.run(
        engine, attachment,
        {
            "keywords": list(keywords),
            "tau": tau,
            "k": k,
            "require_public_private": require_public_private,
        },
        budget=budget,
    )
