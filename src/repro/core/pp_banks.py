"""PP-BANKS: tree answers on top of PPKWS.

BANKS answers are Blinks answers plus the materialized tree, so the
framework part is exactly PP-Blinks; only the *presentation* differs.
Reconstructing trees during search would defeat PPKWS (it would traverse
the combined graph), so PP-BANKS:

1. runs the full PP-Blinks pipeline (PEval / ARefine / AComplete) to get
   the top-k rooted answers, then
2. materializes each answer's tree by shortest-path reconstruction over
   the *lazy* combined view (:func:`repro.graph.views.combine_lazy`) —
   ``O(k)`` point-to-point searches, no graph copy.

A pleasant side effect: reconstruction computes exact combined-graph
paths, so the returned match distances are exact (they can only improve
on the sketch estimates that ranked the answers).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.budget import QueryBudget
from repro.core.framework import PIPELINE_STEPS, Attachment, PPKWS, QueryResult
from repro.exceptions import BudgetError
from repro.graph.labeled_graph import Label
from repro.graph.traversal import shortest_path
from repro.graph.views import combine_lazy
from repro.obs import observe_pipeline
from repro.semantics.answers import RootedAnswer
from repro.semantics.banks import TreeAnswer

__all__ = ["pp_banks_query"]


def pp_banks_query(
    engine: PPKWS,
    attachment: Attachment,
    keywords: List[Label],
    tau: float,
    k: int,
    require_public_private: bool,
    budget: Optional[QueryBudget] = None,
) -> QueryResult:
    """PP-Blinks followed by lazy tree materialization."""
    from repro.core.pp_blinks import pp_blinks_query

    result = pp_blinks_query(
        engine, attachment, keywords, tau, k, require_public_private,
        budget=budget, obs_pipeline=None,  # observed below as "banks"
    )
    if result.degraded:
        # The budget expired during the Blinks pipeline: return the
        # salvaged rooted answers as-is.  Tree materialization runs
        # point-to-point searches on the combined view — exactly the
        # work a spent budget no longer pays for.
        observe_pipeline("banks", result)
        return result
    view = combine_lazy(engine.public, attachment.private)
    trees: List[RootedAnswer] = []
    for idx, answer in enumerate(result.answers):
        tree = TreeAnswer(answer.root, {})
        try:
            for q, m in answer.matches.items():
                tree.matches[q] = m.copy()
                if m.vertex is None or m.vertex == answer.root:
                    continue
                path = shortest_path(view, answer.root, m.vertex, budget=budget)
                if path is None:  # pragma: no cover - answers are connected
                    continue
                total = 0.0
                for u, v in zip(path, path[1:]):
                    tree.edges.add(frozenset((u, v)))
                    total += view.weight(u, v)
                # Exact path length can only improve on the sketch estimate.
                if total < tree.matches[q].distance:
                    tree.matches[q].distance = total
        except BudgetError:
            # The budget expired mid-materialization.  Salvage what we
            # have: trees already materialized plus the remaining rooted
            # answers as-is (ranked, but without edges / exact paths).
            salvaged = trees + list(result.answers[idx:])
            salvaged.sort(key=RootedAnswer.sort_key)
            degraded = QueryResult(
                salvaged, result.breakdown, result.counters,
                degraded=True,
                completed_steps=PIPELINE_STEPS,
                interrupted_step="materialize",
            )
            observe_pipeline("banks", degraded)
            return degraded
        trees.append(tree)
    trees.sort(key=RootedAnswer.sort_key)
    final = QueryResult(trees, result.breakdown, result.counters)
    observe_pipeline("banks", final)
    return final
