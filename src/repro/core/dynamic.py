"""Dynamic private graphs (the paper's stated future work, Sec. IX).

The paper concludes: "We will extend the PPKWS to support keyword search
on dynamic graphs."  Private graphs are the natural place to start — they
are per-user, small, and change frequently (new collaborations, new
private facts) — while the public graph and its PADS/KPADS indexes stay
fixed.

:class:`DynamicPrivateGraph` wraps an attached private graph and keeps
the per-user PPKWS state consistent under mutation:

* **edge/vertex insertion** is handled *incrementally*: adding an edge
  ``(u, v, w)`` can only shorten distances, so the vertex-portal map, the
  portal-keyword map and the private portal map are repaired by bounded
  relaxations seeded at the two endpoints — no full rebuild.
* **edge/vertex deletion** can lengthen distances, which monotone
  relaxation cannot repair; deletions therefore trigger a rebuild of the
  per-user maps (still cheap: ``O(|P| (|G'| log |G'| + |P|^2))``).

Both paths produce exactly the state :meth:`PPKWS.attach` would build
from scratch (tested by comparing against a fresh attachment).
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from repro.core.framework import Attachment, PPKWS
from repro.exceptions import GraphError
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import INF
from repro.portals.distance_map import (
    all_pairs_portal_distances,
    refine_portal_distances,
)
from repro.portals.oracle import CombinedDistanceOracle

__all__ = ["DynamicPrivateGraph"]


class DynamicPrivateGraph:
    """Mutation interface for an attached private graph.

    Example
    -------
    >>> from repro.graph import LabeledGraph
    >>> pub = LabeledGraph.from_edges([(0, 1), (1, 2)], {2: {"t"}})
    >>> priv = LabeledGraph.from_edges([(0, "x")])
    >>> engine = PPKWS(pub, sketch_k=2)
    >>> _ = engine.attach("u", priv)
    >>> dyn = DynamicPrivateGraph(engine, "u")
    >>> dyn.add_edge("x", "y")            # incremental repair
    >>> dyn.add_labels("y", {"t"})
    """

    def __init__(self, engine: PPKWS, owner: str) -> None:
        self.engine = engine
        self.owner = owner
        # Validates the owner exists.
        engine.attachment(owner)

    # ------------------------------------------------------------------
    @property
    def attachment(self) -> Attachment:
        """The current per-user state (replaced on structural rebuilds)."""
        return self.engine.attachment(self.owner)

    @property
    def graph(self) -> LabeledGraph:
        """The underlying private graph."""
        return self.attachment.private

    # ------------------------------------------------------------------
    # monotone updates: incremental repair
    # ------------------------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add (or shorten) a private edge and repair the maps in place.

        New vertices are created as needed.  If the edge touches a public
        vertex, that vertex becomes a *new portal* — a structural change
        that falls back to a rebuild.
        """
        att = self.attachment
        private = att.private
        new_portal = any(
            x not in private and x in self.engine.public for x in (u, v)
        )
        if private.has_edge(u, v) and private.weight(u, v) <= weight:
            return  # no-op: not an improvement
        private.add_edge(u, v, weight)
        if new_portal:
            self._rebuild()
            return
        self._relax_from(u)
        self._relax_from(v)
        self._refresh_portal_map()

    def add_vertex(self, v: Vertex, labels: Optional[set] = None) -> None:
        """Add an isolated private vertex (labels optional).

        Becomes a portal if ``v`` exists in the public graph — structural,
        so that path rebuilds.
        """
        att = self.attachment
        if v in att.private:
            if labels:
                self.add_labels(v, labels)
            return
        att.private.add_vertex(v, labels)
        if v in self.engine.public:
            self._rebuild()

    def add_labels(self, v: Vertex, labels: set) -> None:
        """Attach labels to a private vertex and extend the PKD map."""
        att = self.attachment
        att.private.add_labels(v, labels)
        # The new labels make v a witness for each portal at the already
        # known vertex-portal distances.
        for p in att.portals:
            d = att.oracle.vertex_portal.get(v, p)
            if d < INF:
                for t in labels:
                    att.oracle.pkd.record(p, t, v, d)
        # The maps changed in place: move the epoch or the answer/batch
        # caches keep returning answers computed without the new labels.
        self.engine._bump_attachment_epoch()

    # ------------------------------------------------------------------
    # non-monotone updates: rebuild
    # ------------------------------------------------------------------
    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove a private edge (distances may grow: rebuild)."""
        self.attachment.private.remove_edge(u, v)
        self._rebuild()

    def remove_vertex(self, v: Vertex) -> None:
        """Remove a private vertex and its edges (rebuild).

        Portals may be removed; the attachment must keep at least one
        portal or the user can no longer receive public-private answers.
        """
        att = self.attachment
        att.private.remove_vertex(v)
        if not any(p in att.private for p in att.portals if p != v):
            raise GraphError(
                "removing this vertex would leave the private graph "
                "with no portal nodes"
            )
        self._rebuild()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _relax_from(self, source: Vertex) -> None:
        """Monotone repair of vertex-portal distances from ``source``.

        After an edge insertion, improved distances propagate outward
        from the endpoints; a Dijkstra that only *enqueues improvements*
        touches exactly the affected region.
        """
        att = self.attachment
        private = att.private
        vpm = att.oracle.vertex_portal
        pkd = att.oracle.pkd
        portals = [p for p in att.portals if p in private]
        if source not in private:
            return

        for p in portals:
            # Best distance p -> source available after the change:
            # either the recorded one, p itself (if source IS p), or via
            # a neighbor's recorded distance plus the incident edge.
            seed = 0.0 if source == p else vpm.get(source, p)
            for nbr, w in private.neighbor_items(source):
                seed = min(seed, vpm.get(nbr, p) + w)
            if seed >= vpm.get(source, p):
                continue  # nothing improved towards this portal
            if seed == INF:
                continue
            # bounded relaxation: push only strict improvements
            counter = itertools.count()
            heap: List[Tuple[float, int, Vertex]] = [(seed, next(counter), source)]
            while heap:
                d, _, x = heapq.heappop(heap)
                if d >= vpm.get(x, p):
                    continue
                vpm.record(x, p, d)
                for t in private.labels(x):
                    pkd.record(p, t, x, d)
                for nbr, w in private.neighbor_items(x):
                    nd = d + w
                    if nd < vpm.get(nbr, p):
                        heapq.heappush(heap, (nd, next(counter), nbr))

    def _refresh_portal_map(self) -> None:
        """Recompute the Algo-7 combined portal map from the repaired
        private distances (the |P|^2 fixpoint is cheap)."""
        att = self.attachment
        private_pm = all_pairs_portal_distances(att.private, att.portals)
        public_pm = all_pairs_portal_distances(self.engine.public, att.portals)
        combined_pm, refined = refine_portal_distances(public_pm, private_pm)
        new_att = Attachment(
            owner=att.owner,
            private=att.private,
            portals=att.portals,
            portal_map=combined_pm,
            private_portal_map=private_pm,
            refined_portal_pairs=frozenset(refined),
            oracle=CombinedDistanceOracle(
                att.private,
                combined_pm,
                att.oracle.vertex_portal,
                att.oracle.pkd,
                att.oracle.public,
            ),
        )
        self.engine._replace_attachment(self.owner, new_att)

    def _rebuild(self) -> None:
        """Full per-user rebuild (used for non-monotone changes)."""
        private = self.attachment.private
        self.engine.detach(self.owner)
        self.engine.attach(self.owner, private)
