"""Answer qualification: the public-private answer test (Def. II.2).

An answer is *public-private* iff it contains (i) a keyword-carrying
vertex in the private graph's vertex set and (ii) a keyword-carrying
vertex in the public graph's vertex set.  The two conditions are
independent — a portal node belongs to both vertex sets, so a single
keyword-carrying portal satisfies both (the definition's memberships are
checked separately).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.protocol import GraphLike
from repro.semantics.answers import RootedAnswer

__all__ = ["answer_sides", "is_public_private_answer"]


def answer_sides(
    match_vertices: Iterable[Vertex],
    public: "GraphLike",
    private: LabeledGraph,
) -> Tuple[bool, bool]:
    """``(touches_private, touches_public)`` over keyword-match vertices."""
    touches_private = False
    touches_public = False
    for v in match_vertices:
        if v is None:
            continue
        if v in private:
            touches_private = True
        if v in public:
            touches_public = True
        if touches_private and touches_public:
            break
    return touches_private, touches_public


def is_public_private_answer(
    answer: RootedAnswer,
    public: "GraphLike",
    private: LabeledGraph,
) -> bool:
    """Def. II.2 for a rooted answer (only match vertices carry keywords)."""
    vertices = (m.vertex for m in answer.matches.values())
    touches_private, touches_public = answer_sides(vertices, public, private)
    return touches_private and touches_public
