"""PP-truss: public-private k-truss community search.

The sixth registered semantics — and the engine's proof of generality:
the paper's PEval / ARefine / AComplete frame carries a *cohesive
subgraph* semantics, not just distance-based keyword search, without the
engine changing at all.

* **PEval** computes, for every private edge ``(u, v)``, its support on
  the private graph alone: ``|N'(u) ∩ N'(v)|``.  Private-only supports
  are lower bounds on the combined-graph supports (adding public edges
  can only add triangles).
* **ARefine** corrects each private edge's support to its exact value on
  ``Gc`` using the union neighborhoods ``N_Gc(x) = N(x) ∪ N'(x)`` —
  the truss analogue of the Eq.-4 distance refinement (portals are
  exactly the vertices whose neighborhoods grow).
* **AComplete** extends the support table to the public edges (same
  union-neighborhood count), peels the combined edge set down to the
  k-truss, splits it into connected components and keeps those covering
  the query keywords and — when ``require_public_private`` is set —
  containing at least one private and one public edge (the Def.-II.2
  qualification: an answer must genuinely span both graphs).

Because supports entering the peel are exact on ``Gc``, and a k-truss is
the unique maximal subgraph with all supports >= k - 2, the pipeline's
output equals :func:`repro.semantics.truss.truss_search` on the
materialized combined graph (the equivalence the test suite pins).

On budget expiry the salvage peels the *private* edges whose supports
were computed so far — a best-effort private-side community answer (an
over-approximation when ARefine already raised some supports with public
triangles); the Def.-II.2 qualification is skipped since completion
never ran.

Budget checkpoints, step timing, degradation bookkeeping and obs hooks
all live in :mod:`repro.core.engine` (rule RA008); this module only
declares the steps and registers the :data:`TRUSS` spec.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.budget import QueryBudget
from repro.core.engine import (
    PipelineContext,
    SemanticsSpec,
    StepSpec,
    register_semantics,
)
from repro.core.framework import Attachment, PPKWS, QueryResult
from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.semantics.truss import (
    EdgeKey,
    TrussAnswer,
    covers_keywords,
    edge_key,
    peel_truss,
    truss_components,
)
from repro.semantics.wire import (
    truss_cache_params,
    truss_payload,
    truss_wire_params,
)

__all__ = ["pp_truss_query"]


def _combined_neighbors(
    engine: PPKWS, attachment: Attachment, cache: Dict[Vertex, Set[Vertex]], v: Vertex
) -> Set[Vertex]:
    """``N_Gc(v) = N(v) ∪ N'(v)``, memoized per query."""
    hit = cache.get(v)
    if hit is None:
        hit = set()
        if v in engine.public:
            hit.update(engine.public.neighbors(v))
        if v in attachment.private:
            hit.update(attachment.private.neighbors(v))
        cache[v] = hit
    return hit


def _step_peval(ctx: PipelineContext) -> None:
    """Private-edge supports on the private graph alone (lower bounds)."""
    private = ctx.attachment.private
    support: Dict[EdgeKey, int] = ctx.state
    adj = {v: set(private.neighbors(v)) for v in private.vertices()}
    for e in sorted(
        (edge_key(u, v) for u, v, _ in private.edges()), key=repr
    ):
        if ctx.budget is not None:
            ctx.budget.checkpoint()
        u, v = e
        support[e] = len(adj[u] & adj[v])
    threshold = ctx.params["k"] - 2
    ctx.counters.partial_answers = sum(
        1 for s in support.values() if s >= threshold
    )


def _step_arefine(ctx: PipelineContext) -> None:
    """Correct private-edge supports to exact combined-graph values."""
    support: Dict[EdgeKey, int] = ctx.state
    nbrs: Dict[Vertex, Set[Vertex]] = ctx.scratch.setdefault("nbrs", {})
    for e in sorted(support, key=repr):
        if ctx.budget is not None:
            ctx.budget.checkpoint()
        ctx.counters.refinement_checks += 1
        u, v = e
        exact = len(
            _combined_neighbors(ctx.engine, ctx.attachment, nbrs, u)
            & _combined_neighbors(ctx.engine, ctx.attachment, nbrs, v)
        )
        if exact != support[e]:
            support[e] = exact
            ctx.counters.refinements_applied += 1


def _step_acomplete(ctx: PipelineContext) -> None:
    """Public-edge supports, global peel, components, qualification."""
    engine = ctx.engine
    attachment = ctx.attachment
    support: Dict[EdgeKey, int] = ctx.state
    nbrs: Dict[Vertex, Set[Vertex]] = ctx.scratch.setdefault("nbrs", {})
    public_edges = sorted(
        (edge_key(u, v) for u, v, _ in engine.public.edges()), key=repr
    )
    for e in public_edges:
        if e in support:  # a portal-portal edge present in both graphs
            continue
        if ctx.budget is not None:
            ctx.budget.checkpoint()
        u, v = e
        support[e] = len(
            _combined_neighbors(engine, attachment, nbrs, u)
            & _combined_neighbors(engine, attachment, nbrs, v)
        )
    ctx.counters.completion_lookups = len(support)

    adj: Dict[Vertex, Set[Vertex]] = {}
    for u, v in support:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    surviving = peel_truss(adj, support, ctx.params["k"], ctx.budget)
    answers = truss_components(adj, surviving)

    keywords: Sequence[Label] = ctx.params["keywords"]
    private = attachment.private
    public = engine.public

    def combined_labels(v: Vertex):
        out = frozenset()
        if v in public:
            out |= public.labels(v)
        if v in private:
            out |= private.labels(v)
        return out

    kept: List[TrussAnswer] = []
    for a in answers:
        if keywords and not covers_keywords(combined_labels, a.vertices, keywords):
            ctx.counters.answers_pruned += 1
            continue
        if ctx.params["require_public_private"]:
            # Def. II.2: a public-private answer must span both graphs —
            # here, carry at least one private and one public edge
            # (shared portal-portal edges count for both sides).
            has_private = any(private.has_edge(u, v) for u, v in a.edges)
            has_public = any(public.has_edge(u, v) for u, v in a.edges)
            if not (has_private and has_public):
                ctx.counters.answers_pruned += 1
                continue
        kept.append(a)
    ctx.answers = kept


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
def _validate(ctx: PipelineContext) -> None:
    if ctx.params["k"] < 2:
        raise QueryError(f"k-truss requires k >= 2, got {ctx.params['k']}")


def _init(ctx: PipelineContext) -> None:
    p = ctx.params
    p.setdefault("keywords", [])
    p.setdefault("require_public_private", True)
    p["keywords"] = list(dict.fromkeys(p["keywords"]))
    ctx.state = {}


def _salvage(ctx: PipelineContext, step: str) -> List[TrussAnswer]:
    """Best-effort private-side communities from the supports seen so far."""
    private = ctx.attachment.private
    support = {
        e: s for e, s in ctx.state.items() if private.has_edge(e[0], e[1])
    }
    adj: Dict[Vertex, Set[Vertex]] = {}
    for u, v in support:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    surviving = peel_truss(adj, support, ctx.params["k"])
    answers = truss_components(adj, surviving)
    keywords = ctx.params["keywords"]
    if keywords:
        answers = [
            a for a in answers
            if covers_keywords(private.labels, a.vertices, keywords)
        ]
    return answers


TRUSS = register_semantics(SemanticsSpec(
    name="truss",
    summary="Keyword-covering k-truss communities (public-private k-truss).",
    steps=(
        StepSpec("peval", _step_peval),
        StepSpec("arefine", _step_arefine),
        StepSpec("acomplete", _step_acomplete),
    ),
    validate=_validate,
    init=_init,
    salvage=_salvage,
    count_answers=len,
    result_type=QueryResult,
    wire_required=("network", "owner", "k"),
    wire_optional=("keywords",),
    wire_params=truss_wire_params,
    wire_payload=truss_payload,
    wire_cache_params=truss_cache_params,
))


def pp_truss_query(
    engine: PPKWS,
    attachment: Attachment,
    k: int,
    keywords: Sequence[Label] = (),
    require_public_private: bool = True,
    budget: Optional[QueryBudget] = None,
) -> QueryResult:
    """PEval -> ARefine -> AComplete for public-private k-truss."""
    return TRUSS.run(
        engine, attachment,
        {
            "k": k,
            "keywords": list(keywords),
            "require_public_private": require_public_private,
        },
        budget=budget,
    )
