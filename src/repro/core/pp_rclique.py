"""PP-r-clique: the r-clique semantic on top of PPKWS (paper Sec. IV-A).

* **PEval** runs the Kargar-An star enumeration on the private graph with
  the portal nodes appended to every keyword's candidate set (Algo 2,
  line 1) and the ``tau`` bound *not* enforced — portal detours refined
  in later may still pull a partial answer under the bound.
* **ARefine** (Algo 3) tightens every recorded ``(root, match)`` distance
  with two-portal detours, ``d'(v,p_i) + dc(p_i,p_j) + d'(p_j,u)``
  (Eq. 4), guarded by the Lemma-VI.1 refined-portal table when the
  reduced-refinement optimization is on.
* **AComplete** resolves every keyword still routed through a portal by a
  KPADS lookup on the public side (``d_hat(p, q)`` plus the recorded
  ``d'(root, p)``), prunes answers that exceed ``tau`` or fail the
  public-private qualification (Def. II.2), and ranks by star weight.

Budget checkpoints, step timing, degradation bookkeeping and obs hooks
all live in :mod:`repro.core.engine` (rule RA008); this module only
declares the steps and registers the :data:`RCLIQUE` spec.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.budget import QueryBudget
from repro.core.engine import (
    PipelineContext,
    SemanticsSpec,
    StepSpec,
    register_semantics,
)
from repro.core.framework import (
    Attachment,
    PPKWS,
    QueryCounters,
    QueryResult,
)
from repro.core.partial import PairIndicator, PartialAnswer, salvage_rooted_answers
from repro.core.repair import try_requalify
from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.semantics.answers import RootedAnswer
from repro.semantics.rclique import rclique_search
from repro.semantics.wire import (
    rooted_cache_params,
    rooted_payload,
    rooted_wire_params,
)

__all__ = ["pp_rclique_query", "peval_rclique", "arefine_pairs", "CompletionCache"]


class CompletionCache:
    """The Sec.-VI-B dynamic-programming table ``PKA``.

    Memoizes ``portal x keyword -> (distance, witness)`` public-side
    lookups so partial answers sharing a portal-keyword pair pay for it
    once.  With the optimization disabled the cache is bypassed and every
    answer re-queries the sketches (the ablation benchmark measures the
    difference).
    """

    __slots__ = ("enabled", "_table", "_list_table", "hits", "misses")

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._table: Dict[Tuple[Vertex, Label], Tuple[float, Optional[Vertex]]] = {}
        self._list_table: Dict[
            Tuple[Vertex, Label, int], List[Tuple[Vertex, float]]
        ] = {}
        self.hits = 0
        self.misses = 0

    def lookup(
        self,
        engine: PPKWS,
        portal: Vertex,
        keyword: Label,
    ) -> Tuple[float, Optional[Vertex]]:
        """``d_hat(portal, keyword)`` on the public graph, with witness."""
        key = (portal, keyword)
        if self.enabled and key in self._table:
            self.hits += 1
            return self._table[key]
        self.misses += 1
        result = engine.index.provider().keyword_distance_with_witness(
            portal, keyword
        )
        if self.enabled:
            self._table[key] = result
        return result

    def lookup_candidates(
        self,
        engine: PPKWS,
        portal: Vertex,
        keyword: Label,
        k: int,
    ) -> List[Tuple[Vertex, float]]:
        """Top-``k`` public keyword candidates near ``portal`` (PP-knk)."""
        key = (portal, keyword, k)
        if self.enabled and key in self._list_table:
            self.hits += 1
            return self._list_table[key]
        self.misses += 1
        result = engine.index.kpads.top_candidates(
            engine.index.pads, portal, keyword, k
        )
        if self.enabled:
            self._list_table[key] = result
        return result

    def lookup_candidates_many(
        self,
        engine: PPKWS,
        portals: Sequence[Vertex],
        keyword: Label,
        k: int,
        runtime: object,
    ) -> Optional[List[List[Tuple[Vertex, float]]]]:
        """Batched :meth:`lookup_candidates` over ``portals``.

        Replicates the per-portal hit/miss accounting exactly — a portal
        repeated in the batch counts one miss then hits, just as the
        serial loop's immediate compute-and-store would — and resolves
        the whole miss set through one vectorized kernel call.  Returns
        None when the kernel declines (repr collision, private
        candidates); the caller then falls back to the serial path with
        the counters untouched.
        """
        plan_hits = 0
        plan_misses = 0
        results: List[Optional[List[Tuple[Vertex, float]]]] = []
        pending: Dict[Vertex, List[int]] = {}
        for i, portal in enumerate(portals):
            key = (portal, keyword, k)
            if self.enabled and key in self._list_table:
                plan_hits += 1
                results.append(self._list_table[key])
            elif self.enabled and portal in pending:
                # The serial loop would have computed and stored it at
                # the first occurrence, so the repeat is a hit.
                plan_hits += 1
                results.append(None)
                pending[portal].append(i)
            else:
                plan_misses += 1
                results.append(None)
                pending.setdefault(portal, []).append(i)
        if pending:
            batch = list(pending)
            computed = runtime.top_candidates_many(  # type: ignore[attr-defined]
                batch, keyword, k
            )
            if computed is None:
                return None
            for portal, found in zip(batch, computed):
                for i in pending[portal]:
                    results[i] = found
                if self.enabled:
                    self._list_table[(portal, keyword, k)] = found
        self.hits += plan_hits
        self.misses += plan_misses
        return [r if r is not None else [] for r in results]


def peval_rclique(
    attachment: Attachment,
    keywords: Sequence[Label],
    tau: float,
    max_answers: int,
    budget: Optional[QueryBudget] = None,
) -> List[PartialAnswer]:
    """Step 1: partial evaluation on the private graph (Algo 2)."""
    raw = rclique_search(
        attachment.private,
        keywords,
        tau,
        k=max_answers,
        extra_candidates=attachment.portals,
        enforce_bound=False,
        search_cutoff=tau,
        budget=budget,
    )
    partials: List[PartialAnswer] = []
    private = attachment.private
    for answer in raw:
        partial = PartialAnswer(answer=answer)
        for q, m in answer.matches.items():
            if m.vertex is None:
                partial.missing.add(q)
                continue
            # Every recorded pair is a refinement candidate (Algo 2 line 22).
            partial.pair_indicators.append(
                PairIndicator(answer.root, m.vertex, q)
            )
            if private.has_label(m.vertex, q):
                partial.private_matched.add(q)
            elif m.vertex in attachment.portals:
                partial.portal_routed[q] = m.vertex
            else:  # pragma: no cover - rclique_search only matches label/portal
                partial.missing.add(q)
        partials.append(partial)
    return partials


def arefine_pairs(
    attachment: Attachment,
    partials: List[PartialAnswer],
    counters: QueryCounters,
    reduced: bool,
    budget: Optional[QueryBudget] = None,
) -> None:
    """Step 2: Algo 3 — tighten every indicated pair through the portals."""
    if reduced and not attachment.has_refined_portals:
        # Lemma VI.1: no portal pair improved, so no private distance can.
        counters.refinement_checks += sum(len(p.pair_indicators) for p in partials)
        return
    oracle = attachment.oracle
    # Reduced refinement (Sec. VI-A): only detours through *refined*
    # portal pairs can beat a private shortest distance, so restrict the
    # Eq.-4 middle loop to them.
    pairs = attachment.refined_by_source if reduced else None
    for partial in partials:
        for ind in partial.pair_indicators:
            if budget is not None:
                budget.checkpoint()
            counters.refinement_checks += 1
            match = partial.match(ind.keyword)
            if match is None or match.vertex != ind.u:
                continue
            refined = oracle.refine_pair(ind.v, ind.u, match.distance, pairs_by_source=pairs)
            if refined < match.distance:
                match.distance = refined
                counters.refinements_applied += 1


def _acomplete(
    engine: PPKWS,
    attachment: Attachment,
    partials: List[PartialAnswer],
    keywords: List[Label],
    tau: float,
    counters: QueryCounters,
    cache: CompletionCache,
    require_public_private: bool,
    budget: Optional[QueryBudget] = None,
) -> List[RootedAnswer]:
    """Step 3: complete portal-routed keywords and qualify (Sec. IV-A (3))."""
    public = engine.public
    private = attachment.private
    completed: List[RootedAnswer] = []
    for partial in partials:
        if budget is not None:
            budget.checkpoint()
        if partial.missing:
            counters.answers_pruned += 1
            continue
        ok = True
        for q, portal in partial.portal_routed.items():
            match = partial.match(q)
            assert match is not None  # portal_routed entries always have a slot
            pub_d, witness = cache.lookup(engine, portal, q)
            if witness is None or match.distance + pub_d > tau:
                ok = False
                break
            partial.set_match(q, witness, match.distance + pub_d)
            partial.public_matched.add(q)
        if not ok or not partial.answer.within_bound(tau):
            counters.answers_pruned += 1
            continue
        if require_public_private and not try_requalify(
            engine, attachment, partial, keywords, cache
        ):
            counters.answers_pruned += 1
            continue
        completed.append(partial.answer)
    return completed


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
def _validate(ctx: PipelineContext) -> None:
    if not ctx.params["keywords"]:
        raise QueryError("r-clique query needs at least one keyword")


def _init(ctx: PipelineContext) -> None:
    ctx.params["keywords"] = list(dict.fromkeys(ctx.params["keywords"]))
    ctx.state = []


def _step_peval(ctx: PipelineContext) -> None:
    p = ctx.params
    ctx.state = peval_rclique(
        ctx.attachment, p["keywords"], p["tau"], ctx.options.peval_answers,
        ctx.budget,
    )
    ctx.counters.partial_answers = len(ctx.state)


def _step_arefine(ctx: PipelineContext) -> None:
    arefine_pairs(
        ctx.attachment, ctx.state, ctx.counters,
        ctx.options.reduced_refinement, ctx.budget,
    )


def _step_acomplete(ctx: PipelineContext) -> None:
    p = ctx.params
    if ctx.cache is None:
        ctx.cache = CompletionCache(ctx.options.dp_completion)
    final = _acomplete(
        ctx.engine, ctx.attachment, ctx.state, p["keywords"], p["tau"],
        ctx.counters, ctx.cache, p["require_public_private"], ctx.budget,
    )
    ctx.counters.completion_lookups = ctx.cache.misses + ctx.cache.hits
    ctx.counters.completion_cache_hits = ctx.cache.hits
    final.sort(key=RootedAnswer.sort_key)
    ctx.answers = final[: p["k"]]


def _salvage(ctx: PipelineContext, step: str) -> List[RootedAnswer]:
    return salvage_rooted_answers(ctx.state, ctx.params["tau"], ctx.params["k"])


RCLIQUE = register_semantics(SemanticsSpec(
    name="rclique",
    summary="Top-k star answers (PP-r-clique, Sec. IV-A).",
    steps=(
        StepSpec("peval", _step_peval),
        StepSpec("arefine", _step_arefine),
        StepSpec("acomplete", _step_acomplete),
    ),
    validate=_validate,
    init=_init,
    salvage=_salvage,
    count_answers=len,
    result_type=QueryResult,
    wire_required=("network", "owner", "keywords"),
    wire_optional=("tau", "k"),
    wire_params=rooted_wire_params,
    wire_payload=rooted_payload,
    wire_cache_params=rooted_cache_params,
    baseline_m1=lambda g, keywords, tau, k: rclique_search(g, keywords, tau, k),
    # M2 historically over-generates (k * 8 stars, k + 1 neighbor lists)
    # so the public-private filter still leaves k answers (pinned by the
    # M2 tests).
    baseline_m2=lambda g, keywords, tau, k: rclique_search(
        g, keywords, tau, k * 8, neighbor_list_size=k + 1
    ),
))


def pp_rclique_query(
    engine: PPKWS,
    attachment: Attachment,
    keywords: List[Label],
    tau: float,
    k: int,
    require_public_private: bool,
    cache: Optional[CompletionCache] = None,
    budget: Optional[QueryBudget] = None,
) -> QueryResult:
    """Run the full PEval -> ARefine -> AComplete pipeline for r-clique.

    ``cache`` lets batch sessions share one completion cache across
    queries; by default each query gets a fresh one (the paper's PKA).

    ``budget`` enables cooperative cancellation: expiry mid-step degrades
    the query to the best answers completed so far (see
    :class:`~repro.core.framework.QueryResult`).
    """
    return RCLIQUE.run(
        engine, attachment,
        {
            "keywords": list(keywords),
            "tau": tau,
            "k": k,
            "require_public_private": require_public_private,
        },
        budget=budget,
        cache=cache,
    )
