"""PP-knk for multi-keyword queries (conjunction / disjunction).

Extends :mod:`repro.core.pp_knk` to the multi-keyword k-nk semantics
(paper Sec. II mentions the extension; the framework steps carry over):

* **disjunction** completes each portal with the *best single-keyword*
  KPADS candidates of every query keyword — a vertex matching any
  keyword matches the disjunction, so merging per-keyword candidate
  lists is exact with respect to the sketches;
* **conjunction** completes each portal with candidates drawn from the
  *rarest* keyword's KPADS lists and keeps only those carrying all query
  keywords (labels are checked on the public graph).  This mirrors the
  classic rarest-first strategy for conjunctive retrieval; candidates
  the sketch does not surface may be missed, so the conjunctive variant
  is approximate on the public side — private-side answers remain exact.

Budget checkpoints, step timing, degradation bookkeeping and obs hooks
all live in :mod:`repro.core.engine` (rule RA008); this module only
declares the steps and registers the :data:`KNK_MULTI` spec.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.budget import QueryBudget
from repro.core.engine import (
    PipelineContext,
    SemanticsSpec,
    StepSpec,
    register_semantics,
)
from repro.core.framework import (
    Attachment,
    KnkQueryResult,
    PPKWS,
)
from repro.core.partial import PairIndicator, PartialKnkAnswer
from repro.core.pp_knk import _arefine, salvage_knk_answer
from repro.core.pp_rclique import CompletionCache
from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.traversal import INF, dijkstra_ordered
from repro.semantics.answers import KnkAnswer, Match
from repro.semantics.knk_multi import match_predicate
from repro.semantics.wire import (
    knk_multi_cache_params,
    knk_multi_wire_params,
    knk_payload,
)

__all__ = ["pp_knk_multi_query"]


def _peval_multi(
    attachment: Attachment,
    source: Vertex,
    keywords: Sequence[Label],
    mode: str,
    k: int,
    budget: Optional[QueryBudget] = None,
    partial: Optional[PartialKnkAnswer] = None,
) -> PartialKnkAnswer:
    """Private-graph sweep with the multi-keyword predicate.

    Like :func:`repro.core.pp_knk.peval_knk`, accepts a pre-built
    ``partial`` so budget expiry mid-sweep keeps the matches found.
    """
    private = attachment.private
    predicate = match_predicate(private, keywords, mode)
    portals = attachment.portals
    joiner = "&" if mode == "and" else "|"
    if partial is None:
        partial = PartialKnkAnswer(answer=KnkAnswer(source, joiner.join(keywords), []))
    answer = partial.answer
    for v, d in dijkstra_ordered(private, source, budget=budget):
        if v in portals:
            partial.portal_entries.append((v, d))
        if predicate(v):
            answer.matches.append(Match(v, d))
            partial.pair_indicators.append(
                PairIndicator(source, v, answer.keyword)
            )
            if len(answer.matches) >= k:
                break
    return partial


def _rarest_keyword(engine: PPKWS, keywords: Sequence[Label]) -> Label:
    """The query keyword with the fewest public matches (rarest-first)."""
    public = engine.public
    return min(keywords, key=lambda t: (public.label_frequency(t), t))


def _acomplete_multi(
    engine: PPKWS,
    attachment: Attachment,
    partial: PartialKnkAnswer,
    keywords: List[Label],
    mode: str,
    k: int,
    cache: CompletionCache,
    budget: Optional[QueryBudget] = None,
) -> KnkAnswer:
    """Merge public candidates reached through portals."""
    public = engine.public
    best: Dict[Vertex, float] = {}
    for m in partial.answer.matches:
        if m.vertex is not None and m.distance < best.get(m.vertex, INF):
            best[m.vertex] = m.distance

    if mode == "or":
        probe_keywords = keywords
    else:
        probe_keywords = [_rarest_keyword(engine, keywords)]
    keyword_set = frozenset(keywords)

    for portal, d in partial.portal_entries:
        if budget is not None:
            budget.checkpoint()
        for q in probe_keywords:
            for witness, pub_d in cache.lookup_candidates(engine, portal, q, k):
                if mode == "and" and not keyword_set <= public.labels(witness):
                    continue
                total = d + pub_d
                if total < best.get(witness, INF):
                    best[witness] = total

    ranked = sorted(best.items(), key=lambda item: (item[1], repr(item[0])))
    final = KnkAnswer(partial.answer.source, partial.answer.keyword, [])
    final.matches = [Match(v, d) for v, d in ranked[:k]]
    return final


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
def _validate(ctx: PipelineContext) -> None:
    p = ctx.params
    if p["k"] < 1:
        raise QueryError(f"k must be >= 1, got {p['k']}")
    if not p["keywords"]:
        raise QueryError("multi-keyword k-nk needs at least one keyword")
    if p["source"] not in ctx.attachment.private:
        raise QueryError(
            f"k-nk query vertex {p['source']!r} must belong to the private graph"
        )


def _init(ctx: PipelineContext) -> None:
    p = ctx.params
    p["keywords"] = list(dict.fromkeys(p["keywords"]))
    joiner = "&" if p["mode"] == "and" else "|"
    ctx.state = PartialKnkAnswer(
        answer=KnkAnswer(p["source"], joiner.join(p["keywords"]), [])
    )


def _step_peval(ctx: PipelineContext) -> None:
    p = ctx.params
    ctx.state = _peval_multi(
        ctx.attachment, p["source"], p["keywords"], p["mode"], p["k"],
        ctx.budget, ctx.state,
    )
    ctx.counters.partial_answers = len(ctx.state.answer.matches)


def _step_arefine(ctx: PipelineContext) -> None:
    _arefine(
        ctx.attachment, ctx.state, ctx.counters,
        ctx.options.reduced_refinement, ctx.budget,
    )


def _step_acomplete(ctx: PipelineContext) -> None:
    # Multi-keyword completion never shares a caller-provided cache: its
    # list-table entries are keyed per probe keyword and the conjunctive
    # filter consults live public labels, so each query gets a fresh PKA.
    p = ctx.params
    cache = CompletionCache(ctx.options.dp_completion)
    ctx.answers = _acomplete_multi(
        ctx.engine, ctx.attachment, ctx.state, p["keywords"], p["mode"],
        p["k"], cache, ctx.budget,
    )
    ctx.counters.completion_lookups = cache.misses + cache.hits
    ctx.counters.completion_cache_hits = cache.hits


def _salvage(ctx: PipelineContext, step: str) -> KnkAnswer:
    return salvage_knk_answer(ctx.state, ctx.params["k"])


KNK_MULTI = register_semantics(SemanticsSpec(
    name="knk_multi",
    summary="Multi-keyword k-nk, conjunctive or disjunctive (Sec. II ext.).",
    steps=(
        StepSpec("peval", _step_peval),
        StepSpec("arefine", _step_arefine),
        StepSpec("acomplete", _step_acomplete),
    ),
    validate=_validate,
    init=_init,
    salvage=_salvage,
    count_answers=lambda a: len(a.matches),
    result_type=KnkQueryResult,
    wire_required=("network", "owner", "source", "keywords"),
    wire_optional=("k", "mode"),
    wire_params=knk_multi_wire_params,
    wire_payload=knk_payload,
    wire_cache_params=knk_multi_cache_params,
))


def pp_knk_multi_query(
    engine: PPKWS,
    attachment: Attachment,
    source: Vertex,
    keywords: Sequence[Label],
    k: int,
    mode: str = "and",
    budget: Optional[QueryBudget] = None,
) -> KnkQueryResult:
    """PEval -> ARefine -> AComplete for multi-keyword k-nk.

    ``budget`` enables cooperative cancellation with graceful
    degradation, as in :func:`repro.core.pp_knk.pp_knk_query`.
    """
    return KNK_MULTI.run(
        engine, attachment,
        {"source": source, "keywords": list(keywords), "k": k, "mode": mode},
        budget=budget,
    )
