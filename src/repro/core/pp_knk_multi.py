"""PP-knk for multi-keyword queries (conjunction / disjunction).

Extends :mod:`repro.core.pp_knk` to the multi-keyword k-nk semantics
(paper Sec. II mentions the extension; the framework steps carry over):

* **disjunction** completes each portal with the *best single-keyword*
  KPADS candidates of every query keyword — a vertex matching any
  keyword matches the disjunction, so merging per-keyword candidate
  lists is exact with respect to the sketches;
* **conjunction** completes each portal with candidates drawn from the
  *rarest* keyword's KPADS lists and keeps only those carrying all query
  keywords (labels are checked on the public graph).  This mirrors the
  classic rarest-first strategy for conjunctive retrieval; candidates
  the sketch does not surface may be missed, so the conjunctive variant
  is approximate on the public side — private-side answers remain exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.budget import QueryBudget
from repro.core.framework import (
    Attachment,
    KnkQueryResult,
    PPKWS,
    QueryCounters,
    StepBreakdown,
    _Timer,
)
from repro.core.partial import PairIndicator, PartialKnkAnswer
from repro.core.pp_knk import _arefine, salvage_knk_answer
from repro.core.pp_rclique import CompletionCache
from repro.exceptions import BudgetError, QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.traversal import INF, dijkstra_ordered
from repro.obs import observe_pipeline
from repro.semantics.answers import KnkAnswer, Match
from repro.semantics.knk_multi import match_predicate

__all__ = ["pp_knk_multi_query"]


def _peval_multi(
    attachment: Attachment,
    source: Vertex,
    keywords: Sequence[Label],
    mode: str,
    k: int,
    budget: Optional[QueryBudget] = None,
    partial: Optional[PartialKnkAnswer] = None,
) -> PartialKnkAnswer:
    """Private-graph sweep with the multi-keyword predicate.

    Like :func:`repro.core.pp_knk.peval_knk`, accepts a pre-built
    ``partial`` so budget expiry mid-sweep keeps the matches found.
    """
    private = attachment.private
    predicate = match_predicate(private, keywords, mode)
    portals = attachment.portals
    joiner = "&" if mode == "and" else "|"
    if partial is None:
        partial = PartialKnkAnswer(answer=KnkAnswer(source, joiner.join(keywords), []))
    answer = partial.answer
    for v, d in dijkstra_ordered(private, source, budget=budget):
        if v in portals:
            partial.portal_entries.append((v, d))
        if predicate(v):
            answer.matches.append(Match(v, d))
            partial.pair_indicators.append(
                PairIndicator(source, v, answer.keyword)
            )
            if len(answer.matches) >= k:
                break
    return partial


def pp_knk_multi_query(
    engine: PPKWS,
    attachment: Attachment,
    source: Vertex,
    keywords: Sequence[Label],
    k: int,
    mode: str = "and",
    budget: Optional[QueryBudget] = None,
) -> KnkQueryResult:
    """PEval -> ARefine -> AComplete for multi-keyword k-nk.

    ``budget`` enables cooperative cancellation with graceful
    degradation, as in :func:`repro.core.pp_knk.pp_knk_query`.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not keywords:
        raise QueryError("multi-keyword k-nk needs at least one keyword")
    if source not in attachment.private:
        raise QueryError(
            f"k-nk query vertex {source!r} must belong to the private graph"
        )
    unique_keywords = list(dict.fromkeys(keywords))
    counters = QueryCounters()
    breakdown = StepBreakdown()
    options = engine.options

    joiner = "&" if mode == "and" else "|"
    partial = PartialKnkAnswer(
        answer=KnkAnswer(source, joiner.join(unique_keywords), [])
    )
    completed: List[str] = []
    step = "peval"
    t = _Timer()
    try:
        with _Timer() as t:
            partial = _peval_multi(
                attachment, source, unique_keywords, mode, k, budget, partial
            )
        breakdown.peval = t.elapsed
        completed.append("peval")
        counters.partial_answers = len(partial.answer.matches)

        step = "arefine"
        if budget is not None:
            budget.recheck()
        with _Timer() as t:
            _arefine(attachment, partial, counters, options.reduced_refinement, budget)
        breakdown.arefine = t.elapsed
        completed.append("arefine")

        step = "acomplete"
        if budget is not None:
            budget.recheck()
        with _Timer() as t:
            cache = CompletionCache(options.dp_completion)
            final = _acomplete_multi(
                engine, attachment, partial, unique_keywords, mode, k, cache, budget
            )
            counters.completion_lookups = cache.misses + cache.hits
            counters.completion_cache_hits = cache.hits
        breakdown.acomplete = t.elapsed
        completed.append("acomplete")
    except BudgetError:
        setattr(breakdown, step, t.elapsed)
        final = salvage_knk_answer(partial, k)
        counters.final_answers = len(final.matches)
        result = KnkQueryResult(
            final, breakdown, counters,
            degraded=True, completed_steps=tuple(completed), interrupted_step=step,
        )
        observe_pipeline("knk_multi", result)
        return result

    counters.final_answers = len(final.matches)
    result = KnkQueryResult(final, breakdown, counters)
    observe_pipeline("knk_multi", result)
    return result


def _rarest_keyword(engine: PPKWS, keywords: Sequence[Label]) -> Label:
    """The query keyword with the fewest public matches (rarest-first)."""
    public = engine.public
    return min(keywords, key=lambda t: (public.label_frequency(t), t))


def _acomplete_multi(
    engine: PPKWS,
    attachment: Attachment,
    partial: PartialKnkAnswer,
    keywords: List[Label],
    mode: str,
    k: int,
    cache: CompletionCache,
    budget: Optional[QueryBudget] = None,
) -> KnkAnswer:
    """Merge public candidates reached through portals."""
    public = engine.public
    best: Dict[Vertex, float] = {}
    for m in partial.answer.matches:
        if m.vertex is not None and m.distance < best.get(m.vertex, INF):
            best[m.vertex] = m.distance

    if mode == "or":
        probe_keywords = keywords
    else:
        probe_keywords = [_rarest_keyword(engine, keywords)]
    keyword_set = frozenset(keywords)

    for portal, d in partial.portal_entries:
        if budget is not None:
            budget.checkpoint()
        for q in probe_keywords:
            for witness, pub_d in cache.lookup_candidates(engine, portal, q, k):
                if mode == "and" and not keyword_set <= public.labels(witness):
                    continue
                total = d + pub_d
                if total < best.get(witness, INF):
                    best[witness] = total

    ranked = sorted(best.items(), key=lambda item: (item[1], repr(item[0])))
    final = KnkAnswer(partial.answer.source, partial.answer.keyword, [])
    final.matches = [Match(v, d) for v, d in ranked[:k]]
    return final
