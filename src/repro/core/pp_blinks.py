"""PP-Blinks: the Blinks semantic on top of PPKWS (paper Sec. IV-B).

* **PEval** runs backward expansion on the private graph: one bounded
  multi-origin Dijkstra per keyword from its genuine private matches.
  Every traversed vertex becomes a candidate root; keywords that never
  reached a root are recorded as *missing*.  Portal nodes are always
  candidate roots — they are the seeds of the public-side expansion.
* **ARefine** (Algo 4) tightens each recorded root-to-keyword distance
  with two-portal detours ``d'(r,p_i) + dc(p_i,p_j) + d'(p_j,q)`` where
  the last leg comes from the portal-keyword distance map (PKD).
* **AComplete** (Algo 5) has three parts: (a) *backward expansion* — each
  portal-rooted partial answer floods up to ``x = max(tau - d)`` into the
  public graph, planting (or flood-updating) answers at public roots;
  (b) *retrieving missing keywords* — every answer tries to improve each
  keyword with a public-side route (a KPADS lookup for public roots, the
  best portal detour for private roots); (c) *qualification* — distance
  bound, completeness and the Def.-II.2 public-private test.

Budget checkpoints, step timing, degradation bookkeeping and obs hooks
all live in :mod:`repro.core.engine` (rule RA008); this module only
declares the steps and registers the :data:`BLINKS` spec.
"""

from __future__ import annotations

import heapq
import itertools
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.budget import QueryBudget
from repro.core.engine import (
    PipelineContext,
    SemanticsSpec,
    StepSpec,
    register_semantics,
    register_shard_task,
)
from repro.core.framework import (
    Attachment,
    PPKWS,
    QueryCounters,
    QueryResult,
)
from repro.core.partial import KeywordIndicator, PartialAnswer, salvage_rooted_answers
from repro.core.pp_rclique import CompletionCache
from repro.core.repair import try_requalify
from repro.core.vectorized import merge_rank
from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.graph.traversal import INF
from repro.semantics.answers import Match, RootedAnswer
from repro.semantics.blinks import blinks_search, keyword_expansion
from repro.semantics.wire import (
    rooted_cache_params,
    rooted_payload,
    rooted_wire_params,
)

__all__ = ["pp_blinks_query", "peval_blinks", "arefine_keywords"]


def peval_blinks(
    attachment: Attachment,
    keywords: Sequence[Label],
    tau: float,
    budget: Optional[QueryBudget] = None,
) -> Dict[Vertex, PartialAnswer]:
    """Step 1: backward expansion on the private graph, keyed by root."""
    private = attachment.private
    per_keyword: Dict[Label, Dict[Vertex, Match]] = {}
    roots: Set[Vertex] = set(p for p in attachment.portals if p in private)
    for q in keywords:
        origins = private.vertices_with_label(q)
        cover = keyword_expansion(private, origins, tau, budget=budget) if origins else {}
        per_keyword[q] = cover
        roots.update(cover)
    # The paper seeds the portals as search origins for every keyword, so
    # any private vertex within tau of a portal is traversed and becomes
    # a candidate root (its keywords complete through the public graph).
    # The vertex-portal map already holds those distances.
    vpm = attachment.oracle.vertex_portal
    for v in private.vertices():
        if budget is not None:
            budget.checkpoint()
        if v in roots:
            continue
        portal_d = vpm.portal_distances(v)
        if portal_d and min(portal_d.values()) <= tau:
            roots.add(v)

    partials: Dict[Vertex, PartialAnswer] = {}
    # repr order: which roots get processed before a budget expiry — and
    # hence the salvaged prefix of a degraded run — must not depend on
    # set iteration order (PYTHONHASHSEED).
    for r in sorted(roots, key=repr):
        if budget is not None:
            budget.checkpoint()
        partial = PartialAnswer(answer=RootedAnswer(r, {}))
        for q in keywords:
            hit = per_keyword[q].get(r)
            if hit is None:
                partial.missing.add(q)
                partial.set_match(q, None, INF)
            else:
                partial.set_match(q, hit.vertex, hit.distance)
                partial.private_matched.add(q)
                partial.keyword_indicators.append(KeywordIndicator(r, q))
        partials[r] = partial
    return partials


def arefine_keywords(
    attachment: Attachment,
    partials: Dict[Vertex, PartialAnswer],
    counters: QueryCounters,
    reduced: bool,
    budget: Optional[QueryBudget] = None,
) -> None:
    """Step 2: Algo 4 — refine (root, keyword) distances via portal pairs."""
    if reduced and not attachment.has_refined_portals:
        counters.refinement_checks += sum(
            len(p.keyword_indicators) for p in partials.values()
        )
        return
    oracle = attachment.oracle
    pairs = attachment.refined_by_source if reduced else None
    for partial in partials.values():
        for ind in partial.keyword_indicators:
            if budget is not None:
                budget.checkpoint()
            counters.refinement_checks += 1
            match = partial.match(ind.keyword)
            if match is None:
                continue
            refined, witness = oracle.refine_vertex_keyword_with_witness(
                ind.root, ind.keyword, match.distance, pairs_by_source=pairs
            )
            if refined < match.distance:
                # The refined path ends at the portal-side nearest keyword
                # vertex, which becomes the new witness.
                match.distance = refined
                counters.refinements_applied += 1
                if witness is not None:
                    match.vertex = witness


def _offset_sweep(
    public: "LabeledGraph",
    seeds: List[Tuple[float, Vertex, Vertex]],
    tau: float,
    budget: Optional[QueryBudget] = None,
) -> Dict[Vertex, Match]:
    """Multi-source Dijkstra with per-source starting offsets.

    ``seeds`` are ``(offset, portal, witness)`` triples; the result maps
    every public vertex ``u`` with ``min(offset + d(portal, u)) <= tau``
    to a :class:`Match` carrying that minimal total and the witness of
    the winning seed.
    """
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex, Vertex]] = []
    for offset, portal, witness in seeds:
        if offset <= tau:
            heap.append((offset, next(counter), portal, witness))
    heapq.heapify(heap)
    reached: Dict[Vertex, Match] = {}
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v, witness = heapq.heappop(heap)
        if v in reached:
            continue
        reached[v] = Match(witness, d)
        for u, w in public.neighbor_items(v):
            nd = d + w
            if u not in reached and nd <= tau:
                heapq.heappush(heap, (nd, next(counter), u, witness))
    return reached


def _portal_sweep_seeds(
    public: object,
    attachment: Attachment,
    partials: Dict[Vertex, PartialAnswer],
    keywords: List[Label],
) -> Dict[Label, List[Tuple[float, Vertex, Vertex]]]:
    """Per-keyword ``(offset, portal, witness)`` seeds for the public sweep.

    Portal order is ``repr``-sorted so the seed list — and hence the
    heap tie-breaking inside :func:`_offset_sweep` — is identical no
    matter which process (or hash seed) builds it.
    """
    portal_seeds: List[Tuple[Vertex, PartialAnswer]] = [
        (p, partials[p])
        for p in sorted(attachment.portals, key=repr)
        if p in partials and p in public
    ]
    return {
        q: [
            (seed.answer.matches[q].distance, p, seed.answer.matches[q].vertex)
            for p, seed in portal_seeds
            if seed.answer.matches[q].distance < INF
        ]
        for q in keywords
    }


def _merge_swept_root(
    answers: Dict[Vertex, PartialAnswer],
    u: Vertex,
    swept: Dict[Label, Dict[Vertex, Match]],
    keywords: List[Label],
) -> None:
    """Part (a) for one swept vertex: flood-update or plant an answer."""
    if u in answers:
        existing = answers[u]
        for q in keywords:
            hit = swept[q].get(u)
            dst = existing.answer.matches.get(q)
            if hit is not None and (dst is None or hit.distance < dst.distance):
                existing.set_match(q, hit.vertex, hit.distance)
                existing.missing.discard(q)
    else:
        partial = PartialAnswer(answer=RootedAnswer(u, {}))
        for q in keywords:
            hit = swept[q].get(u)
            if hit is None:
                partial.set_match(q, None, INF)
                partial.missing.add(q)
            else:
                partial.set_match(q, hit.vertex, hit.distance)
        answers[u] = partial


def _complete_root(
    engine: PPKWS,
    attachment: Attachment,
    root: Vertex,
    partial: PartialAnswer,
    keywords: List[Label],
    cache: CompletionCache,
    provider: object,
    public_probe: Optional[
        Callable[[Vertex, Label], Tuple[float, Optional[Vertex]]]
    ],
) -> None:
    """Part (b) for one root: retrieve/improve keywords via the public side."""
    root_is_public = root in engine.public
    root_is_private = root in attachment.private
    for q in keywords:
        match = partial.match(q)
        current = match.distance if match is not None else INF
        best, witness = INF, None
        if root_is_public:
            if public_probe is not None:
                best, witness = public_probe(root, q)
            else:
                best, witness = provider.keyword_distance_with_witness(  # type: ignore[attr-defined]
                    root, q
                )
        if root_is_private:
            for portal, d1 in (
                attachment.oracle.vertex_portal.portal_distances(root).items()
            ):
                pub_d, w = cache.lookup(engine, portal, q)
                if w is not None and d1 + pub_d < best:
                    best, witness = d1 + pub_d, w
        if witness is not None and best < current:
            partial.set_match(q, witness, best)
            partial.missing.discard(q)
            partial.public_matched.add(q)


def _qualify(
    engine: PPKWS,
    attachment: Attachment,
    candidates: Iterable[PartialAnswer],
    keywords: List[Label],
    tau: float,
    k: int,
    counters: QueryCounters,
    cache: CompletionCache,
    require_public_private: bool,
    budget: Optional[QueryBudget] = None,
) -> List[RootedAnswer]:
    """Part (c): walk candidates in weight order, stop at k survivors.

    ``candidates`` must arrive in ``sort_key()`` order; the walk stops
    once the top-k survivors are in hand, so the (comparatively
    expensive) witness repair only ever touches the cheap prefix.
    """
    final: List[RootedAnswer] = []
    for partial in candidates:
        if budget is not None:
            budget.checkpoint()
        if len(final) >= k:
            break
        if partial.missing or not partial.answer.within_bound(tau):
            counters.answers_pruned += 1
            continue
        if any(not m.is_resolved() for m in partial.answer.matches.values()):
            counters.answers_pruned += 1
            continue
        if require_public_private and not try_requalify(
            engine, attachment, partial, keywords, cache
        ):
            counters.answers_pruned += 1
            continue
        final.append(partial.answer)
    return final


def _acomplete(
    engine: PPKWS,
    attachment: Attachment,
    partials: Dict[Vertex, PartialAnswer],
    keywords: List[Label],
    tau: float,
    k: int,
    counters: QueryCounters,
    cache: CompletionCache,
    require_public_private: bool,
    budget: Optional[QueryBudget] = None,
    swept: Optional[Dict[Label, Dict[Vertex, Match]]] = None,
    public_probe: Optional[
        Callable[[Vertex, Label], Tuple[float, Optional[Vertex]]]
    ] = None,
) -> List[RootedAnswer]:
    """Step 3: Algo 5 — expand, retrieve missing keywords, qualify.

    ``swept`` lets a caller inject the part-(a) public sweeps computed
    elsewhere (the shard workers or the vectorized kernel); the merge
    below is insensitive to who ran them, so the answers stay
    bit-identical.  ``public_probe`` likewise replaces the per-root
    part-(b) KPADS lookup with precomputed (batched) results — it must
    return exactly what ``keyword_distance_with_witness`` would.
    """
    public = engine.public
    provider = engine.index.provider()

    # (a) Backward expansion from portal-rooted partial answers (lines 2-8).
    #
    # The paper expands each portal separately and flood-updates answers
    # that several portals reach (UpdateAns, lines 14-19).  The fixpoint
    # of those updates is, per keyword q, exactly
    #     min over portal-rooted answers a'  of  a'.match[q].d + d(p, u)
    # which one *offset* multi-source Dijkstra per keyword computes in a
    # single sweep — same final matches, |Q| sweeps instead of |P|.
    answers: Dict[Vertex, PartialAnswer] = dict(partials)
    if swept is None:
        seeds_by_kw = _portal_sweep_seeds(public, attachment, partials, keywords)
        swept = {
            q: _offset_sweep(public, seeds, tau, budget) if seeds else {}
            for q, seeds in seeds_by_kw.items()
        }
    touched: Set[Vertex] = set()
    for cover in swept.values():
        touched.update(cover)
    for u in sorted(touched, key=repr):
        if budget is not None:
            budget.checkpoint()
        _merge_swept_root(answers, u, swept, keywords)

    # (b) Retrieve missing keywords / improve via the public graph
    # (CompleteAns, lines 20-23).
    for root, partial in answers.items():
        if budget is not None:
            budget.checkpoint()
        _complete_root(
            engine, attachment, root, partial, keywords, cache,
            provider, public_probe,
        )

    # (c) Qualification.
    candidates = sorted(answers.values(), key=lambda p: p.answer.sort_key())
    return _qualify(
        engine, attachment, candidates, keywords, tau, k,
        counters, cache, require_public_private, budget,
    )


# ----------------------------------------------------------------------
# the spec (its steps are shared by PP-BANKS, see repro.core.pp_banks)
# ----------------------------------------------------------------------
def validate_blinks_params(ctx: PipelineContext) -> None:
    if not ctx.params["keywords"]:
        raise QueryError("Blinks query needs at least one keyword")


def init_blinks_state(ctx: PipelineContext) -> None:
    ctx.params["keywords"] = list(dict.fromkeys(ctx.params["keywords"]))
    ctx.state = {}


def step_peval(ctx: PipelineContext) -> None:
    p = ctx.params
    ctx.state = peval_blinks(ctx.attachment, p["keywords"], p["tau"], ctx.budget)
    ctx.counters.partial_answers = len(ctx.state)


def step_arefine(ctx: PipelineContext) -> None:
    arefine_keywords(
        ctx.attachment, ctx.state, ctx.counters,
        ctx.options.reduced_refinement, ctx.budget,
    )


def step_acomplete(ctx: PipelineContext) -> None:
    p = ctx.params
    if ctx.cache is None:
        ctx.cache = CompletionCache(ctx.options.dp_completion)
    answers = _acomplete(
        ctx.engine, ctx.attachment, ctx.state, p["keywords"], p["tau"],
        p["k"], ctx.counters, ctx.cache, p["require_public_private"],
        ctx.budget,
    )
    ctx.counters.completion_lookups = ctx.cache.misses + ctx.cache.hits
    ctx.counters.completion_cache_hits = ctx.cache.hits
    answers.sort(key=RootedAnswer.sort_key)
    ctx.answers = answers[: p["k"]]


# ----------------------------------------------------------------------
# the vectorized AComplete (repro.core.vectorized numpy kernels)
# ----------------------------------------------------------------------
def _acomplete_fast(
    ctx: PipelineContext,
    swept: Dict[Label, Dict[Vertex, Match]],
) -> Optional[List[RootedAnswer]]:
    """Array-merged AComplete parts (a)-(c); None means fall back.

    The bulk of a sweep's cover is *new public-only* roots — vertices
    that are neither existing partials nor private-side vertices.  For
    those the merged matches, weights and the ``(weight, repr)`` rank
    are computed as arrays (:func:`repro.core.vectorized.merge_rank`),
    and candidates are materialized lazily only as the qualification
    walk reaches them.  Existing partials and private-side roots — a
    handful per query — run through the same per-root helpers as the
    pure step, and the two ordered streams merge lazily.  Answers are
    bit-identical to the pure step; only budget checkpoint placement and
    mid-AComplete counter timing differ (the merge charges its roots in
    bulk).
    """
    engine, attachment = ctx.engine, ctx.attachment
    plan = ctx.vectorized
    runtime = plan.runtime
    public, private = engine.public, attachment.private
    p = ctx.params
    keywords, tau, k = p["keywords"], p["tau"], p["k"]
    partials: Dict[Vertex, PartialAnswer] = ctx.state
    cache = ctx.cache

    intern = runtime.public.intern
    slow_ids: Set[int] = set()
    for u in partials:
        if u in public:
            slow_ids.add(intern(u))
    for v in private.vertices():
        if v in public:
            slow_ids.add(intern(v))
    ranked = merge_rank(runtime, keywords, swept, slow_ids)
    if ranked is None:
        return None
    if ctx.budget is not None:
        # The pure step charges one checkpoint per touched root in part
        # (a) and one per answer in part (b); charge the fast-path roots
        # in bulk so expansion caps bind at an equivalent magnitude.
        ctx.budget.checkpoint(cost=2 * len(ranked))

    # Slow side — existing partials plus private-side swept roots — runs
    # the exact per-root bodies of the pure step.
    answers: Dict[Vertex, PartialAnswer] = dict(partials)
    vertex_of = runtime.vertex_of
    slow_touched = [vertex_of[int(i)] for i in ranked.slow_touched_ids]
    for u in sorted(slow_touched, key=repr):
        if ctx.budget is not None:
            ctx.budget.checkpoint()
        _merge_swept_root(answers, u, swept, keywords)
    pub_slow = [r for r in answers if r in public]
    probed = {q: runtime.probe_many(pub_slow, q) for q in keywords}

    def probe(root: Vertex, q: Label) -> Tuple[float, Optional[Vertex]]:
        return probed[q][root]

    provider = engine.index.provider()
    for root, partial in answers.items():
        if ctx.budget is not None:
            ctx.budget.checkpoint()
        _complete_root(
            engine, attachment, root, partial, keywords, cache,
            provider, probe,
        )

    slow_sorted = sorted(
        answers.values(), key=lambda pa: pa.answer.sort_key()
    )
    slow_keys = [pa.answer.sort_key() for pa in slow_sorted]

    def merged() -> Iterator[PartialAnswer]:
        si, fi, nfast = 0, 0, len(ranked)
        while si < len(slow_sorted) or fi < nfast:
            if fi >= nfast or (
                si < len(slow_sorted) and slow_keys[si] <= ranked.key(fi)
            ):
                yield slow_sorted[si]
                si += 1
            else:
                yield ranked.materialize(fi, swept)
                fi += 1

    return _qualify(
        engine, attachment, merged(), keywords, tau, k,
        ctx.counters, cache, p["require_public_private"], ctx.budget,
    )


def step_acomplete_vectorized(ctx: PipelineContext) -> None:
    """AComplete routed through the numpy kernels.

    Part (a)'s per-keyword offset sweeps run as columns of one shared
    kernel invocation (consulting the batch sweep memo first — the
    paper's PKA lifted to the batch level); parts (a)-(c) then merge and
    rank through the array fast path (:func:`_acomplete_fast`), which
    materializes only the candidate prefix the qualification walk
    visits.  When the fast path cannot run (repr collision, foreign
    covers) the pure merge takes over with batched part-(b) probes
    injected.  All kernels reproduce the pure tie-breaking exactly (see
    :mod:`repro.core.vectorized`), so answers are bit-identical either
    way.
    """
    p = ctx.params
    plan = ctx.vectorized
    if ctx.cache is None:
        ctx.cache = CompletionCache(ctx.options.dp_completion)
    keywords, tau = p["keywords"], p["tau"]
    seeds_by_kw = _portal_sweep_seeds(
        ctx.engine.public, ctx.attachment, ctx.state, keywords
    )
    seeded = [q for q in keywords if seeds_by_kw[q]]
    covers = plan.sweeps([(seeds_by_kw[q], tau) for q in seeded], ctx.budget)
    swept: Dict[Label, Dict[Vertex, Match]] = {q: {} for q in keywords}
    for q, cover in zip(seeded, covers):
        swept[q] = cover
    answers = _acomplete_fast(ctx, swept)
    if answers is None:
        # Part (b)'s answer roots are known up front (partials + every
        # swept vertex), so the public-side probes still batch into one
        # kernel call per keyword instead of one scan per (root, keyword).
        roots: Set[Vertex] = set(ctx.state)
        for cover in swept.values():
            roots.update(cover)
        public = ctx.engine.public
        pub_roots = [r for r in roots if r in public]
        probed = {q: plan.runtime.probe_many(pub_roots, q) for q in keywords}

        def probe(root: Vertex, q: Label) -> Tuple[float, Optional[Vertex]]:
            return probed[q][root]

        answers = _acomplete(
            ctx.engine, ctx.attachment, ctx.state, keywords, tau,
            p["k"], ctx.counters, ctx.cache, p["require_public_private"],
            ctx.budget, swept=swept, public_probe=probe,
        )
    ctx.counters.completion_lookups = ctx.cache.misses + ctx.cache.hits
    ctx.counters.completion_cache_hits = ctx.cache.hits
    answers.sort(key=RootedAnswer.sort_key)
    ctx.answers = answers[: p["k"]]


# ----------------------------------------------------------------------
# the sharded AComplete (repro.serving.shards fan-out)
# ----------------------------------------------------------------------
def _shard_task_blinks_sweep(
    host: object, network: str, owner: str,
    payload: Dict[str, object], bound: object,
) -> Dict[Label, List[Tuple[Vertex, Vertex, float]]]:
    """Worker body: run this shard's per-keyword public sweeps.

    Each sweep is the same offset multi-source Dijkstra the serial step
    runs, over the worker's shared-memory public-graph replica, with
    seeds built (and ordered) by the parent — so the reached-set is
    bit-identical to a serial sweep.
    """
    engine = host.engine(network)  # type: ignore[attr-defined]
    tau = payload["tau"]
    out: Dict[Label, List[Tuple[Vertex, Vertex, float]]] = {}
    for q, seeds in payload["seeds_by_keyword"].items():  # type: ignore[union-attr]
        cover = _offset_sweep(engine.public, [tuple(s) for s in seeds], tau)
        out[q] = [(v, m.vertex, m.distance) for v, m in cover.items()]
    return out


register_shard_task("blinks_sweep", _shard_task_blinks_sweep)


def step_acomplete_sharded(ctx: PipelineContext) -> None:
    """AComplete with part (a) fanned out: one sweep task set per shard.

    Keywords are dealt round-robin over the shards (a sweep is
    whole-graph work, so the split is by keyword, not by partition);
    parts (b) and (c) merge locally exactly as the serial step does, and
    they only read the sweeps' per-vertex minima — order-insensitive, so
    the answers are bit-identical to the serial run.
    """
    p = ctx.params
    plan = ctx.shards
    if ctx.cache is None:
        ctx.cache = CompletionCache(ctx.options.dp_completion)
    keywords, tau = p["keywords"], p["tau"]
    seeds_by_kw = _portal_sweep_seeds(
        ctx.engine.public, ctx.attachment, ctx.state, keywords
    )
    swept: Dict[Label, Dict[Vertex, Match]] = {q: {} for q in keywords}
    seeded = [q for q in keywords if seeds_by_kw[q]]
    if seeded:
        groups: Dict[int, Dict[Label, List[Tuple[float, Vertex, Vertex]]]] = {}
        for i, q in enumerate(seeded):
            groups.setdefault(i % plan.num_shards, {})[q] = seeds_by_kw[q]

        def merge(result: Dict[Label, List[Tuple[Vertex, Vertex, float]]]) -> float:
            for q, hits in result.items():
                swept[q] = {v: Match(w, d) for v, w, d in hits}
            return INF

        plan.scatter(
            "blinks_sweep",
            [
                (shard, {"seeds_by_keyword": groups[shard], "tau": tau}, 0.0)
                for shard in sorted(groups)
            ],
            initial_bound=INF,
            on_result=merge,
        )
    answers = _acomplete(
        ctx.engine, ctx.attachment, ctx.state, keywords, tau,
        p["k"], ctx.counters, ctx.cache, p["require_public_private"],
        ctx.budget, swept=swept,
    )
    ctx.counters.completion_lookups = ctx.cache.misses + ctx.cache.hits
    ctx.counters.completion_cache_hits = ctx.cache.hits
    answers.sort(key=RootedAnswer.sort_key)
    ctx.answers = answers[: p["k"]]


def salvage_blinks(ctx: PipelineContext, step: str) -> List[RootedAnswer]:
    # AComplete mutates partials in place, so improvements it made before
    # expiry are kept by the salvage too.
    return salvage_rooted_answers(
        ctx.state.values(), ctx.params["tau"], ctx.params["k"]
    )


BLINKS = register_semantics(SemanticsSpec(
    name="blinks",
    summary="Top-k rooted-tree answers (PP-Blinks, Sec. IV-B).",
    steps=(
        StepSpec("peval", step_peval),
        StepSpec("arefine", step_arefine),
        StepSpec(
            "acomplete", step_acomplete,
            step_acomplete_sharded, step_acomplete_vectorized,
        ),
    ),
    validate=validate_blinks_params,
    init=init_blinks_state,
    salvage=salvage_blinks,
    count_answers=len,
    result_type=QueryResult,
    wire_required=("network", "owner", "keywords"),
    wire_optional=("tau", "k"),
    wire_params=rooted_wire_params,
    wire_payload=rooted_payload,
    wire_cache_params=rooted_cache_params,
    baseline_m1=lambda g, keywords, tau, k: blinks_search(g, keywords, tau, k),
    # M2 historically asks Blinks for every root and lets the caller
    # truncate after the public-private filter (pinned by the M2 tests).
    baseline_m2=lambda g, keywords, tau, k: blinks_search(
        g, keywords, tau, g.num_vertices
    ),
))


def pp_blinks_query(
    engine: PPKWS,
    attachment: Attachment,
    keywords: List[Label],
    tau: float,
    k: int,
    require_public_private: bool,
    cache: Optional[CompletionCache] = None,
    budget: Optional[QueryBudget] = None,
) -> QueryResult:
    """Run the full PEval -> ARefine -> AComplete pipeline for Blinks.

    ``cache`` lets batch sessions share one completion cache across
    queries; by default each query gets a fresh one (the paper's PKA).

    ``budget`` enables cooperative cancellation: expiry mid-step degrades
    the query to the best answers completed so far (salvaged from the
    partial answers) instead of raising, with ``QueryResult.degraded``,
    ``completed_steps`` and ``interrupted_step`` recording what ran.
    """
    return BLINKS.run(
        engine, attachment,
        {
            "keywords": list(keywords),
            "tau": tau,
            "k": k,
            "require_public_private": require_public_private,
        },
        budget=budget,
        cache=cache,
    )
