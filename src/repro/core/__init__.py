"""The PPKWS framework: PEval / ARefine / AComplete (paper Sec. III-IV)."""

from repro.core.framework import (
    Attachment,
    KnkQueryResult,
    PPKWS,
    PublicIndex,
    QueryCounters,
    QueryOptions,
    QueryResult,
    StepBreakdown,
    query_model_m1,
    query_model_m2,
)
from repro.core.partial import (
    KeywordIndicator,
    PairIndicator,
    PartialAnswer,
    PartialKnkAnswer,
)
from repro.core.batch import BatchSession, PersistentCompletionCache
from repro.core.dynamic import DynamicPrivateGraph
from repro.core.persist import load_index, save_index
from repro.core.pp_rclique import CompletionCache
from repro.core.qualify import answer_sides, is_public_private_answer

__all__ = [
    "Attachment",
    "BatchSession",
    "PersistentCompletionCache",
    "CompletionCache",
    "DynamicPrivateGraph",
    "KeywordIndicator",
    "KnkQueryResult",
    "PPKWS",
    "PairIndicator",
    "PartialAnswer",
    "PartialKnkAnswer",
    "PublicIndex",
    "QueryCounters",
    "QueryOptions",
    "QueryResult",
    "StepBreakdown",
    "answer_sides",
    "is_public_private_answer",
    "load_index",
    "query_model_m1",
    "query_model_m2",
    "save_index",
]
