"""The PPKWS framework: PEval / ARefine / AComplete (paper Sec. III-IV)."""

from repro.core.budget import DEFAULT_CHECK_INTERVAL, QueryBudget
from repro.core.framework import (
    Attachment,
    KnkQueryResult,
    PIPELINE_STEPS,
    PPKWS,
    PublicIndex,
    QueryCounters,
    QueryOptions,
    QueryResult,
    StepBreakdown,
    query_model_m1,
    query_model_m2,
)
from repro.core.partial import (
    KeywordIndicator,
    PairIndicator,
    PartialAnswer,
    PartialKnkAnswer,
    salvage_rooted_answers,
)
from repro.core.batch import BatchBudget, BatchSession, PersistentCompletionCache
from repro.core.dynamic import DynamicPrivateGraph
from repro.core.engine import (
    PipelineContext,
    SemanticsSpec,
    StepSpec,
    register_semantics,
    registered_semantics,
    run_pipeline,
    semantics_spec,
)
from repro.core.persist import load_index, save_index
from repro.core.pp_rclique import CompletionCache
from repro.core.qualify import answer_sides, is_public_private_answer

__all__ = [
    "Attachment",
    "BatchBudget",
    "BatchSession",
    "DEFAULT_CHECK_INTERVAL",
    "PersistentCompletionCache",
    "CompletionCache",
    "DynamicPrivateGraph",
    "KeywordIndicator",
    "KnkQueryResult",
    "PIPELINE_STEPS",
    "PPKWS",
    "PairIndicator",
    "PartialAnswer",
    "PartialKnkAnswer",
    "PipelineContext",
    "PublicIndex",
    "QueryBudget",
    "QueryCounters",
    "QueryOptions",
    "QueryResult",
    "SemanticsSpec",
    "StepBreakdown",
    "StepSpec",
    "answer_sides",
    "is_public_private_answer",
    "load_index",
    "query_model_m1",
    "query_model_m2",
    "register_semantics",
    "registered_semantics",
    "run_pipeline",
    "salvage_rooted_answers",
    "save_index",
    "semantics_spec",
]
