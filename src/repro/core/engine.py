"""The PPKWS query engine: one PEval → ARefine → AComplete orchestrator.

The paper's central claim is that PEval/ARefine/AComplete is a *general
frame* over keyword-search semantics.  This module makes the claim
structural: every semantics is a declarative :class:`SemanticsSpec` — a
validator, a state initializer, an ordered tuple of :class:`StepSpec`
callables and a salvage function — registered with a process-wide
registry, and :func:`run_pipeline` is the **only** code that

* threads :class:`~repro.core.budget.QueryBudget` checkpoints between
  steps (``recheck`` at every step boundary after the first),
* times steps into the :class:`~repro.core.framework.StepBreakdown`,
* fires the ``core.engine.step`` fault-injection point,
* handles :class:`~repro.exceptions.BudgetError` degradation — the
  ``completed_steps`` / ``interrupted_step`` bookkeeping and the call
  into the spec's salvage function, and
* records the query into :mod:`repro.obs` (``ppkws_step_seconds``,
  ``ppkws_query_work_total``) exactly once.

The five original pipelines (``pp_blinks``, ``pp_rclique``, ``pp_knk``,
``pp_knk_multi``, ``pp_banks``) are specs now; ``pp_truss`` — the
public-private k-truss port — is the sixth, and the proof that adding a
semantics is a one-module job.  Analysis rule RA008 keeps it that way:
``repro/core/pp_*.py`` modules may not hand-roll step loops.

Degradation contract (kept bit-identical to the pre-engine pipelines):

* the budget is **not** rechecked before the first step;
* when a recheck at a step boundary raises, the previous step's timer is
  the one still in scope, so its elapsed time lands in the *new* step's
  breakdown slot (a deliberate quirk the equivalence fixtures pin);
* ``completed_steps`` holds the steps that finished, ``interrupted_step``
  the one cut short, and the salvage function sees both the mutable
  pipeline state and the interrupted step name.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

from repro import faults
from repro.core.budget import QueryBudget
from repro.core.framework import (
    Attachment,
    KnkQueryResult,
    PPKWS,
    QueryCounters,
    QueryOptions,
    QueryResult,
    StepBreakdown,
    _Timer,
)
from repro.exceptions import BudgetError, QueryError
from repro.faults.points import ENGINE_STEP
from repro.obs import observe_pipeline

__all__ = [
    "PipelineContext",
    "StepSpec",
    "SemanticsSpec",
    "run_pipeline",
    "register_semantics",
    "semantics_spec",
    "registered_semantics",
    "registry_version",
    "register_shard_task",
    "shard_task",
    "ensure_builtin_semantics",
]

AnyResult = Union[QueryResult, KnkQueryResult]


@dataclass
class PipelineContext:
    """Everything one query run threads through its steps.

    ``params`` are the normalized query parameters (the spec's ``init``
    may rewrite them, e.g. deduplicating keywords); ``state`` is the
    mutable partial-answer structure salvage reads after a budget expiry
    (initialized *before* the first step so a mid-step interrupt always
    has something to salvage); ``answers`` is where the final step
    leaves the completed answers; ``scratch`` is free-form per-run
    storage for multi-step coordination (e.g. BANKS' materialized-tree
    progress).
    """

    engine: PPKWS
    attachment: Attachment
    params: Dict[str, Any]
    options: QueryOptions
    counters: QueryCounters
    breakdown: StepBreakdown
    budget: Optional[QueryBudget] = None
    cache: Optional[Any] = None
    state: Any = None
    answers: Any = None
    scratch: Dict[str, Any] = field(default_factory=dict)
    #: a shard plan (repro.serving.shards) when this run may fan its
    #: completion work out to shard workers; None = single-process.
    shards: Optional[Any] = None
    #: a repro.core.vectorized.VectorizedPlan when this run should use
    #: the numpy kernels for steps that offer them; None = pure bodies.
    vectorized: Optional[Any] = None


@dataclass(frozen=True)
class StepSpec:
    """One named pipeline step: a side-effecting callable on the context.

    ``sharded_run``, when present, is a drop-in alternative body used
    *only* when the context carries a shard plan (``ctx.shards``): it
    must leave the context in a bit-identical state to ``run`` — the
    equivalence suite holds it to that — while fanning the heavy part of
    the work out across shard workers.

    ``vectorized_run`` is the same contract for a context carrying a
    :class:`~repro.core.vectorized.VectorizedPlan` (``ctx.vectorized``):
    a drop-in body that routes the heavy array work through the numpy
    kernels.  Precedence when both plans are present: sharded wins (the
    shard fan-out already amortizes the sweep work across processes).
    """

    name: str
    run: Callable[[PipelineContext], None]
    sharded_run: Optional[Callable[[PipelineContext], None]] = None
    vectorized_run: Optional[Callable[[PipelineContext], None]] = None


@dataclass(frozen=True)
class SemanticsSpec:
    """A keyword-search semantics, declaratively.

    The pipeline fields drive :func:`run_pipeline`; the ``wire_*``
    fields let :mod:`repro.service` generate the query op (request
    schema, cache key, response payload) straight from the registry, so
    a newly registered semantics shows up in ``help`` and on the wire
    without touching the service.
    """

    # -- pipeline ------------------------------------------------------
    name: str
    summary: str
    steps: Tuple[StepSpec, ...]
    validate: Callable[[PipelineContext], None]
    init: Callable[[PipelineContext], None]
    salvage: Callable[[PipelineContext, str], Any]
    count_answers: Callable[[Any], int]
    result_type: Callable[..., AnyResult]
    # -- wire protocol -------------------------------------------------
    wire_required: Tuple[str, ...]
    wire_optional: Tuple[str, ...]
    wire_params: Callable[[Dict[str, Any]], Dict[str, Any]]
    wire_payload: Callable[[AnyResult], Dict[str, Any]]
    wire_cache_params: Optional[Callable[[Dict[str, Any]], Tuple[Any, ...]]]
    # -- baselines (Appx. D query models) ------------------------------
    #: run this semantics directly on one plain graph — M1 evaluates it
    #: on G and G' separately, M2 on the combined graph.  Signature:
    #: ``(graph, keywords, tau, k) -> answers``.  None = the semantics
    #: has no single-graph baseline (query_model_m1/m2 raise QueryError).
    baseline_m1: Optional[Callable[..., Any]] = None
    baseline_m2: Optional[Callable[..., Any]] = None

    def run(
        self,
        engine: PPKWS,
        attachment: Attachment,
        params: Dict[str, Any],
        budget: Optional[QueryBudget] = None,
        cache: Optional[Any] = None,
        shards: Optional[Any] = None,
        vectorized: Optional[Any] = None,
    ) -> AnyResult:
        """Run this semantics through the engine (see :func:`run_pipeline`)."""
        return run_pipeline(
            self, engine, attachment, params, budget, cache, shards,
            vectorized,
        )


def run_pipeline(
    spec: SemanticsSpec,
    engine: PPKWS,
    attachment: Attachment,
    params: Dict[str, Any],
    budget: Optional[QueryBudget] = None,
    cache: Optional[Any] = None,
    shards: Optional[Any] = None,
    vectorized: Optional[Any] = None,
) -> AnyResult:
    """The one PEval → ARefine → AComplete loop all semantics share.

    Validation errors (:class:`~repro.exceptions.QueryError`) propagate;
    :class:`~repro.exceptions.BudgetError` degrades the query to
    whatever the spec can salvage (see the module docstring for the
    exact bookkeeping contract).
    """
    counters = QueryCounters()
    breakdown = StepBreakdown()
    ctx = PipelineContext(
        engine=engine,
        attachment=attachment,
        params=params,
        options=engine.options,
        counters=counters,
        breakdown=breakdown,
        budget=budget,
        cache=cache,
        shards=shards,
        vectorized=vectorized,
    )
    spec.validate(ctx)
    spec.init(ctx)

    completed: List[str] = []
    step = spec.steps[0].name
    t = _Timer()
    try:
        for i, s in enumerate(spec.steps):
            step = s.name
            # The first step runs on whatever budget is left; boundaries
            # between steps re-arm the adaptive deadline check.  When the
            # boundary recheck raises, ``t`` below is still the previous
            # step's timer — see the module docstring.
            if i and ctx.budget is not None:
                ctx.budget.recheck()
            faults.fire(ENGINE_STEP)
            body = s.run
            if ctx.shards is not None and s.sharded_run is not None:
                body = s.sharded_run
            elif ctx.vectorized is not None and s.vectorized_run is not None:
                body = s.vectorized_run
            with _Timer() as t:
                body(ctx)
            breakdown.record(step, t.elapsed)
            completed.append(step)
    except BudgetError:
        breakdown.record(step, t.elapsed)
        answers = spec.salvage(ctx, step)
        counters.final_answers = spec.count_answers(answers)
        result = spec.result_type(
            answers, breakdown, counters,
            degraded=True,
            completed_steps=tuple(completed),
            interrupted_step=step,
        )
        observe_pipeline(spec.name, result)
        return result

    answers = ctx.answers
    counters.final_answers = spec.count_answers(answers)
    result = spec.result_type(answers, breakdown, counters)
    observe_pipeline(spec.name, result)
    return result


# ----------------------------------------------------------------------
# the semantics registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, SemanticsSpec] = {}
_REGISTRY_LOCK = threading.Lock()
#: bumped on every successful register_semantics; lets callers cache
#: registry-derived structures with one lock-free int comparison instead
#: of re-sorting the name list per request (the serving hot path).
_REGISTRY_VERSION = 0


def register_semantics(spec: SemanticsSpec) -> SemanticsSpec:
    """Register ``spec`` process-wide; returns it for assignment style.

    Raises ``ValueError`` on a duplicate name or a structurally broken
    spec (no steps, an unnamed or non-callable step, duplicate step
    names) — a bad plugin should fail at import time, not mid-query.
    """
    if not spec.steps:
        raise ValueError(f"semantics {spec.name!r} declares no steps")
    seen: set = set()
    for s in spec.steps:
        if not s.name:
            raise ValueError(f"semantics {spec.name!r} has an unnamed step")
        if not callable(s.run):
            raise ValueError(
                f"semantics {spec.name!r} step {s.name!r} is missing its "
                "run callable"
            )
        if s.name in seen:
            raise ValueError(
                f"semantics {spec.name!r} declares step {s.name!r} twice"
            )
        seen.add(s.name)
    global _REGISTRY_VERSION
    with _REGISTRY_LOCK:
        if spec.name in _REGISTRY:
            raise ValueError(f"duplicate semantics {spec.name!r}")
        _REGISTRY[spec.name] = spec
        _REGISTRY_VERSION += 1
    return spec


def semantics_spec(name: str) -> SemanticsSpec:
    """The registered spec called ``name``.

    Raises :class:`~repro.exceptions.QueryError` (wire code
    ``bad_request``) when no such semantics exists.
    """
    ensure_builtin_semantics()
    with _REGISTRY_LOCK:
        try:
            return _REGISTRY[name]
        except KeyError:
            known = ", ".join(sorted(_REGISTRY))
            raise QueryError(
                f"unknown semantics {name!r} (registered: {known})"
            ) from None


def registered_semantics() -> Tuple[str, ...]:
    """All registered semantics names, sorted."""
    ensure_builtin_semantics()
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def registry_version() -> int:
    """A counter that changes whenever a semantics registers.

    Reading it is lock-free (a single int load), so per-request caches
    keyed on it cost one comparison instead of a lock + sort — see
    ``repro.service._current_ops``.
    """
    ensure_builtin_semantics()
    return _REGISTRY_VERSION


# ----------------------------------------------------------------------
# the shard-task registry
# ----------------------------------------------------------------------
# Shard workers receive (kind, payload) tasks over a pipe and look the
# handler up here; a sharded_run step enqueues tasks by the same kind.
# Handlers register at module import (alongside the semantics spec), so
# ensure_builtin_semantics() populates this registry in workers too.
_SHARD_TASKS: Dict[str, Callable[..., Any]] = {}


def register_shard_task(
    kind: str, fn: Callable[..., Any]
) -> Callable[..., Any]:
    """Register the worker-side handler for shard task ``kind``."""
    with _REGISTRY_LOCK:
        if kind in _SHARD_TASKS:
            raise ValueError(f"duplicate shard task {kind!r}")
        _SHARD_TASKS[kind] = fn
    return fn


def shard_task(kind: str) -> Callable[..., Any]:
    """The handler registered for shard task ``kind``."""
    ensure_builtin_semantics()
    with _REGISTRY_LOCK:
        try:
            return _SHARD_TASKS[kind]
        except KeyError:
            known = ", ".join(sorted(_SHARD_TASKS))
            raise QueryError(
                f"unknown shard task {kind!r} (registered: {known})"
            ) from None


_BUILTINS_LOADED = False
_BUILTINS_LOCK = threading.Lock()


def ensure_builtin_semantics() -> None:
    """Import the built-in pipeline modules so their specs register.

    The engine must not import them at module level (they import the
    engine), so registration is lazy and idempotent.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _BUILTINS_LOCK:
        if _BUILTINS_LOADED:
            return
        import repro.core.pp_blinks  # noqa: F401
        import repro.core.pp_rclique  # noqa: F401
        import repro.core.pp_knk  # noqa: F401
        import repro.core.pp_knk_multi  # noqa: F401
        import repro.core.pp_banks  # noqa: F401
        import repro.core.pp_truss  # noqa: F401
        _BUILTINS_LOADED = True
