"""The PPKWS engine: indexes, attachments and the three-step pipeline.

Usage mirrors the paper's deployment story:

1. Build a :class:`PublicIndex` over the shared public graph once
   (PageRank -> PADS -> KPADS).  This is the only large index and it is
   user-independent.
2. :meth:`PPKWS.attach` a user's private graph: portal discovery, the
   small per-user maps (portal distances on both sides, the Algo-7
   combined refinement, PKD, vertex-portal distances) are built here in
   ``O(|P| * (|G'| + |P|^2))`` — cheap because ``|G'| << |G|``.
3. Query via :meth:`PPKWS.rclique`, :meth:`PPKWS.blinks` or
   :meth:`PPKWS.knk`; each runs PEval / ARefine / AComplete and returns
   the answers plus a per-step timing breakdown (the quantity plotted in
   the paper's Fig. 6 d-f, j-l, p-r).

The module also provides the alternative query models of Appx. D:
M1 (public and private evaluated separately) and M2 (baseline on the
materialized combined graph), which the benchmarks compare against
M3 (= PPKWS).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.budget import QueryBudget
from repro.core.qualify import is_public_private_answer as _is_public_private_answer
from repro.exceptions import GraphError, OwnerNotAttachedError, QueryError
from repro.graph.frozen import freeze as _freeze
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.protocol import GraphLike
from repro.graph.pagerank import pagerank
from repro.graph.public_private import combine, portal_nodes
from repro.portals.distance_map import (
    PortalDistanceMap,
    all_pairs_portal_distances,
    refine_portal_distances,
)
from repro.portals.keyword_map import build_private_maps
from repro.portals.oracle import CombinedDistanceOracle, SketchPublicDistance
from repro.semantics.answers import KnkAnswer, RootedAnswer
from repro.sketches.base import DistanceSketch
from repro.sketches.kpads import KeywordSketch, build_kpads
from repro.sketches.pads import build_pads

__all__ = [
    "PublicIndex",
    "Attachment",
    "StepBreakdown",
    "QueryCounters",
    "QueryResult",
    "KnkQueryResult",
    "PIPELINE_STEPS",
    "PPKWS",
    "QueryOptions",
    "query_model_m1",
    "query_model_m2",
]


# ----------------------------------------------------------------------
# indexes
# ----------------------------------------------------------------------
@dataclass
class PublicIndex:
    """The user-independent indexes over the public graph (Sec. V-A/B)."""

    graph: "GraphLike"
    pads: DistanceSketch
    kpads: KeywordSketch
    pagerank_scores: Dict[Vertex, float]

    @classmethod
    def build(
        cls,
        graph: "GraphLike",
        k: int = 2,
        alpha: float = 0.85,
        kpads_per_center: int = 4,
        freeze: bool = True,
    ) -> "PublicIndex":
        """PageRank, then PADS with bottom-``k`` parameter, then KPADS.

        ``kpads_per_center`` controls the depth of KPADS candidate lists
        (used by PP-knk completion; 1 = the paper's minimal merge).

        With ``freeze=True`` (the default) the public graph is first
        interned into a :class:`~repro.graph.frozen.FrozenGraph`; index
        construction then runs over flat CSR arrays and the returned
        index carries the frozen graph as :attr:`graph`.  Pass
        ``freeze=False`` to index the mutable graph as-is (the dynamic
        public-update workflows do this).
        """
        if freeze:
            graph = _freeze(graph)
        scores = pagerank(graph, alpha=alpha)
        pads = build_pads(graph, k=k, ranks=scores)
        kpads = build_kpads(graph, pads, per_center=kpads_per_center)
        return cls(graph, pads, kpads, scores)

    def provider(self) -> SketchPublicDistance:
        """The sketch-backed public distance provider."""
        return SketchPublicDistance(self.pads, self.kpads)


@dataclass
class Attachment:
    """Everything PPKWS keeps per attached private graph (Sec. V-C)."""

    owner: str
    private: LabeledGraph
    portals: FrozenSet[Vertex]
    #: combined-graph portal distances dc(p_i, p_j) (Algo 7 output)
    portal_map: PortalDistanceMap
    #: private-graph-only portal distances d'(p_i, p_j)
    private_portal_map: PortalDistanceMap
    #: portal pairs (both orientations) that got strictly shorter in Gc
    refined_portal_pairs: FrozenSet[Tuple[Vertex, Vertex]]
    oracle: CombinedDistanceOracle

    @property
    def has_refined_portals(self) -> bool:
        """Lemma VI.1 gate: no refined portal pair => no pair can improve."""
        return bool(self.refined_portal_pairs)

    @property
    def refined_by_source(self) -> Dict[Vertex, Tuple[Vertex, ...]]:
        """Refined portal pairs grouped by first portal (reduced ARefine).

        Grouping lets the Eq.-4/5 loops keep their ``d1 >= best`` early
        exit while only visiting refined middles, so the reduced path is
        never slower than the full double loop.  Computed lazily and
        cached on the instance.
        """
        cached = getattr(self, "_refined_by_source", None)
        if cached is None:
            grouped: Dict[Vertex, List[Vertex]] = {}
            for pi, pj in self.refined_portal_pairs:
                grouped.setdefault(pi, []).append(pj)
            cached = {pi: tuple(pjs) for pi, pjs in grouped.items()}
            object.__setattr__(self, "_refined_by_source", cached)
        return cached


# ----------------------------------------------------------------------
# query-time records
# ----------------------------------------------------------------------
@dataclass
class StepBreakdown:
    """Wall-clock seconds spent in each of the three PPKWS steps."""

    peval: float = 0.0
    arefine: float = 0.0
    acomplete: float = 0.0

    def record(self, step: str, seconds: float) -> None:
        """Store ``seconds`` into ``step``'s slot.

        Non-standard steps (e.g. BANKS' ``materialize``) have no slot
        and are silently dropped — the breakdown reports the three
        framework steps only, matching its wire serialization.
        """
        if step in PIPELINE_STEPS:
            setattr(self, step, seconds)

    @property
    def total(self) -> float:
        """Total query time."""
        return self.peval + self.arefine + self.acomplete

    def fractions(self) -> Tuple[float, float, float]:
        """Per-step shares of the total (0 when the query was free)."""
        t = self.total
        if t == 0:
            return (0.0, 0.0, 0.0)
        return (self.peval / t, self.arefine / t, self.acomplete / t)


@dataclass
class QueryCounters:
    """Work counters exposed for tests, ablations and debugging."""

    partial_answers: int = 0
    refinement_checks: int = 0
    refinements_applied: int = 0
    completion_lookups: int = 0
    completion_cache_hits: int = 0
    answers_pruned: int = 0
    final_answers: int = 0


#: The three pipeline steps, in execution order.
PIPELINE_STEPS: Tuple[str, str, str] = ("peval", "arefine", "acomplete")


@dataclass
class QueryResult:
    """Answers plus instrumentation for a Blinks / r-clique query.

    ``degraded`` is true when a query budget (deadline / expansion cap /
    cancellation) expired mid-pipeline: ``answers`` then holds the best
    answers completed before the budget ran out, ``completed_steps``
    names the steps that finished, and ``interrupted_step`` the one cut
    short.  Degraded answer sets are best-effort: the public-private
    qualification may not have run and answers completed by later steps
    are absent.
    """

    answers: List[RootedAnswer]
    breakdown: StepBreakdown
    counters: QueryCounters
    degraded: bool = False
    completed_steps: Tuple[str, ...] = PIPELINE_STEPS
    interrupted_step: Optional[str] = None


@dataclass
class KnkQueryResult:
    """Answer plus instrumentation for a k-nk query.

    See :class:`QueryResult` for the degradation fields.
    """

    answer: KnkAnswer
    breakdown: StepBreakdown
    counters: QueryCounters
    degraded: bool = False
    completed_steps: Tuple[str, ...] = PIPELINE_STEPS
    interrupted_step: Optional[str] = None


@dataclass
class QueryOptions:
    """Tuning knobs of the framework.

    ``reduced_refinement`` and ``dp_completion`` are the two Sec.-VI
    optimizations (both on by default; the ablation benchmark flips
    them).  ``peval_answers`` bounds how many partial answers PEval may
    emit — the paper enumerates r-clique spaces until exhaustion, which
    is safe on small private graphs but still worth capping.

    ``deadline_ms`` / ``max_expansions`` give every query a default
    :class:`~repro.core.budget.QueryBudget` (wall-clock budget in
    milliseconds / node-expansion cap).  Both default to ``None`` — no
    budget object is created and the hot paths skip all budget checks,
    keeping results bit-identical to the unbudgeted code.  Per-call
    arguments on the :class:`PPKWS` entry points override these.

    ``execution_mode`` selects the step bodies for the generic
    :meth:`PPKWS.query` entry point (and everything built on it —
    :class:`~repro.core.batch.BatchSession`, the wire protocol):
    ``"pure"`` runs the reference dict/heap code, ``"vectorized"`` the
    numpy kernels of :mod:`repro.core.vectorized` (bit-identical
    answers, enforced by the equivalence suite), ``"auto"`` picks
    vectorized when the engine supports it (frozen public graph, numpy
    importable, strictly positive weights) and silently falls back to
    pure otherwise.  Per-call arguments override this default.
    """

    reduced_refinement: bool = True
    dp_completion: bool = True
    peval_answers: int = 32
    deadline_ms: Optional[float] = None
    max_expansions: Optional[int] = None
    execution_mode: str = "pure"


class _Timer:
    """Tiny context helper accumulating wall time into a breakdown slot."""

    __slots__ = ("_start",)

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class PPKWS:
    """Public-private keyword search over one public graph.

    Example
    -------
    >>> from repro.graph import LabeledGraph
    >>> pub = LabeledGraph.from_edges([(0, 1), (1, 2)], {0: {"a"}, 2: {"b"}})
    >>> priv = LabeledGraph.from_edges([(2, 10)], {10: {"c"}})
    >>> engine = PPKWS(pub, sketch_k=2)
    >>> _ = engine.attach("bob", priv)
    >>> result = engine.rclique("bob", ["b", "c"], tau=3.0)
    >>> len(result.answers) >= 1
    True
    """

    def __init__(
        self,
        public: "GraphLike",
        sketch_k: int = 2,
        alpha: float = 0.85,
        options: Optional[QueryOptions] = None,
        index: Optional[PublicIndex] = None,
        freeze: bool = True,
    ) -> None:
        self.options = options or QueryOptions()
        self.index = index if index is not None else PublicIndex.build(
            public, k=sketch_k, alpha=alpha, freeze=freeze
        )
        if (
            self.index.graph is not public
            and (
                self.index.graph.num_vertices != public.num_vertices
                or self.index.graph.num_edges != public.num_edges
            )
        ):
            raise GraphError("provided index was built over a different graph")
        # The index's graph is authoritative: PublicIndex.build freezes
        # the public graph by default, so queries run over the same
        # (possibly frozen) backend the sketches were built from.
        self.public = self.index.graph
        self._provider = self.index.provider()
        self._attachments: Dict[str, Attachment] = {}
        # Guards mutations of (and iteration over) the attachment map so
        # attach/detach are safe while queries run on other threads.
        # Single-key reads stay lock-free: dict lookups are atomic and
        # queries hold the Attachment object itself, which is immutable.
        self._attachments_lock = threading.Lock()
        # Bumped on every attach/detach; cache layers (BatchSession's
        # completion cache, the service's answer cache) compare epochs
        # instead of enumerating which entries a change affected.
        self._attachment_epoch = 0

    # ------------------------------------------------------------------
    def attach(self, owner: str, private: LabeledGraph) -> Attachment:
        """Attach a private graph: portal discovery + per-user maps.

        Thread-safe: concurrent attaches of the same owner are resolved
        by an atomic check-and-insert — exactly one wins, the others
        raise :class:`GraphError` (the early check merely fails fast
        before the expensive map construction).
        """
        if owner in self._attachments:
            raise GraphError(f"owner {owner!r} already attached")
        portals = portal_nodes(self.public, private)
        if not portals:
            raise GraphError(
                f"private graph of {owner!r} has no portal nodes; "
                "public-private answers cannot exist"
            )
        private_pm = all_pairs_portal_distances(private, portals)
        public_pm = all_pairs_portal_distances(self.public, portals)
        combined_pm, refined = refine_portal_distances(public_pm, private_pm)
        pkd, vpm = build_private_maps(private, portals)
        oracle = CombinedDistanceOracle(
            private, combined_pm, vpm, pkd, self._provider
        )
        attachment = Attachment(
            owner=owner,
            private=private,
            portals=portals,
            portal_map=combined_pm,
            private_portal_map=private_pm,
            refined_portal_pairs=frozenset(refined),
            oracle=oracle,
        )
        with self._attachments_lock:
            if owner in self._attachments:
                raise GraphError(f"owner {owner!r} already attached")
            self._attachments[owner] = attachment
            self._attachment_epoch += 1
        return attachment

    def detach(self, owner: str) -> None:
        """Drop an attachment (the user logged out).  Thread-safe."""
        with self._attachments_lock:
            if owner not in self._attachments:
                raise OwnerNotAttachedError(owner)
            del self._attachments[owner]
            self._attachment_epoch += 1

    def _replace_attachment(self, owner: str, attachment: Attachment) -> None:
        """Swap in repaired per-user state (dynamic incremental updates).

        Takes the attachment lock like :meth:`attach`/:meth:`detach` and
        bumps the epoch: the repaired maps can change which answers are
        current, so cached results keyed on the old epoch must die with
        it.  (An unlocked write here used to race with ``owners()`` and
        concurrent attach/detach; RA001 now pins the discipline.)
        """
        with self._attachments_lock:
            if owner not in self._attachments:
                raise OwnerNotAttachedError(owner)
            self._attachments[owner] = attachment
            self._attachment_epoch += 1

    def _bump_attachment_epoch(self) -> None:
        """Invalidate epoch-keyed caches after an in-place map mutation.

        Dynamic label additions repair the portal-keyword map without
        replacing the :class:`Attachment`; the epoch must still move or
        the answer/batch caches keep serving pre-mutation results.
        """
        with self._attachments_lock:
            self._attachment_epoch += 1

    def attachment(self, owner: str) -> Attachment:
        """The per-user state for ``owner``."""
        try:
            return self._attachments[owner]
        except KeyError:
            raise OwnerNotAttachedError(owner) from None

    @property
    def attachment_epoch(self) -> int:
        """Monotonic counter of attachment-map changes (attach/detach).

        Cache layers snapshot this and conservatively invalidate when it
        moves: any change to the engine's attachments may change which
        answers are current, and comparing one integer is far cheaper
        than deciding which cached entries a given change touched.
        """
        return self._attachment_epoch

    def owners(self) -> List[str]:
        """Attached owners.

        Takes the attachment lock: iterating a dict while another thread
        attaches/detaches raises ``RuntimeError`` mid-listing otherwise.
        """
        with self._attachments_lock:
            return list(self._attachments)

    # ------------------------------------------------------------------
    def make_budget(
        self,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> Optional[QueryBudget]:
        """The effective budget for one query.

        An explicit ``budget`` wins; otherwise per-call limits override
        the :class:`QueryOptions` defaults.  Returns ``None`` when no
        limit applies — the hot paths then skip all budget checks, so
        unbudgeted queries behave bit-identically to the pre-budget code.
        """
        if budget is not None:
            return budget
        if deadline_ms is None:
            deadline_ms = self.options.deadline_ms
        if max_expansions is None:
            max_expansions = self.options.max_expansions
        if deadline_ms is None and max_expansions is None:
            return None
        return QueryBudget(deadline_ms=deadline_ms, max_expansions=max_expansions)

    def rclique(
        self,
        owner: str,
        keywords: Sequence[Label],
        tau: float,
        k: int = 10,
        require_public_private: bool = True,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> QueryResult:
        """PP-r-clique (Sec. IV-A): top-``k`` star answers on ``Gc``.

        Budget expiry degrades gracefully: see :class:`QueryResult`.
        """
        from repro.core.pp_rclique import pp_rclique_query

        return pp_rclique_query(
            self, self.attachment(owner), list(keywords), tau, k,
            require_public_private,
            budget=self.make_budget(deadline_ms, max_expansions, budget),
        )

    def blinks(
        self,
        owner: str,
        keywords: Sequence[Label],
        tau: float,
        k: int = 10,
        require_public_private: bool = True,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> QueryResult:
        """PP-Blinks (Sec. IV-B): top-``k`` rooted-tree answers on ``Gc``.

        Budget expiry degrades gracefully: see :class:`QueryResult`.
        """
        from repro.core.pp_blinks import pp_blinks_query

        return pp_blinks_query(
            self, self.attachment(owner), list(keywords), tau, k,
            require_public_private,
            budget=self.make_budget(deadline_ms, max_expansions, budget),
        )

    def banks(
        self,
        owner: str,
        keywords: Sequence[Label],
        tau: float,
        k: int = 10,
        require_public_private: bool = True,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> QueryResult:
        """PP-BANKS: Blinks answers with materialized answer trees.

        Runs the PP-Blinks pipeline, then reconstructs each answer's tree
        lazily over the combined view (exact paths, no materialization).
        Budget expiry degrades gracefully: see :class:`QueryResult`.
        """
        from repro.core.pp_banks import pp_banks_query

        return pp_banks_query(
            self, self.attachment(owner), list(keywords), tau, k,
            require_public_private,
            budget=self.make_budget(deadline_ms, max_expansions, budget),
        )

    def knk(
        self,
        owner: str,
        source: Vertex,
        keyword: Label,
        k: int,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> KnkQueryResult:
        """PP-knk (Sec. IV-C / Appx. A): top-``k`` nearest keyword on ``Gc``.

        Budget expiry degrades gracefully: see :class:`KnkQueryResult`.
        """
        from repro.core.pp_knk import pp_knk_query

        return pp_knk_query(
            self, self.attachment(owner), source, keyword, k,
            budget=self.make_budget(deadline_ms, max_expansions, budget),
        )

    def knk_multi(
        self,
        owner: str,
        source: Vertex,
        keywords: Sequence[Label],
        k: int,
        mode: str = "and",
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
    ) -> KnkQueryResult:
        """Multi-keyword PP-knk: conjunctive (``"and"``) or disjunctive
        (``"or"``) nearest-keyword search (the Sec.-II extension).

        Budget expiry degrades gracefully: see :class:`KnkQueryResult`.
        """
        from repro.core.pp_knk_multi import pp_knk_multi_query

        return pp_knk_multi_query(
            self, self.attachment(owner), source, list(keywords), k, mode,
            budget=self.make_budget(deadline_ms, max_expansions, budget),
        )

    def query(
        self,
        semantics: str,
        owner: str,
        *,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        budget: Optional[QueryBudget] = None,
        cache: Optional[object] = None,
        execution_mode: Optional[str] = None,
        **params: object,
    ) -> object:
        """Run any registered semantics by name through the engine.

        The named methods above (``blinks``, ``knk``, …) are sugar over
        this generic entry point; plugins registered via
        :func:`repro.core.engine.register_semantics` are reachable only
        here (and on the wire).  Unknown names raise
        :class:`~repro.exceptions.QueryError`.

        ``execution_mode`` (``"pure"`` / ``"vectorized"`` / ``"auto"``)
        overrides :attr:`QueryOptions.execution_mode` for this call;
        answers are bit-identical across modes (see
        :mod:`repro.core.vectorized`).
        """
        from repro.core.engine import semantics_spec
        from repro.core.vectorized import plan_for

        spec = semantics_spec(semantics)
        return spec.run(
            self, self.attachment(owner), dict(params),
            budget=self.make_budget(deadline_ms, max_expansions, budget),
            cache=cache,
            vectorized=plan_for(self, execution_mode),
        )


# ----------------------------------------------------------------------
# alternative query models (Appx. D)
# ----------------------------------------------------------------------
def query_model_m1(
    public: LabeledGraph,
    private: LabeledGraph,
    semantic: str,
    keywords: Sequence[Label],
    tau: float,
    k: int = 10,
) -> Tuple[List[RootedAnswer], List[RootedAnswer]]:
    """M1: evaluate on the public and private graphs *individually*.

    Returns ``(public_answers, private_answers)`` — by construction none
    of them is a public-private answer.

    Dispatch goes through the semantics registry: any registered
    semantics that declares a ``baseline_m1`` (a plain single-graph
    search, see :class:`~repro.core.engine.SemanticsSpec`) works here,
    plugins included.  Unknown names and semantics without a baseline
    raise :class:`~repro.exceptions.QueryError`.
    """
    from repro.core.engine import semantics_spec

    spec = semantics_spec(semantic)
    if spec.baseline_m1 is None:
        raise QueryError(
            f"semantics {semantic!r} does not support query model M1"
        )
    return (
        spec.baseline_m1(public, keywords, tau, k),
        spec.baseline_m1(private, keywords, tau, k),
    )


def query_model_m2(
    public: LabeledGraph,
    private: LabeledGraph,
    semantic: str,
    keywords: Sequence[Label],
    tau: float,
    k: int = 10,
    combined: Optional[LabeledGraph] = None,
    require_public_private: bool = True,
) -> List[RootedAnswer]:
    """M2: the baseline — run the original algorithm on ``Gc`` directly.

    This is ``Baseline-Blinks`` / ``Baseline-rclique`` from the paper's
    experiments: the plain algorithm plus a qualification filter keeping
    only public-private answers.  Pass a pre-materialized ``combined``
    graph to keep the ⊕ cost out of measured regions.
    """
    from repro.core.engine import semantics_spec

    spec = semantics_spec(semantic)
    if spec.baseline_m2 is None:
        raise QueryError(
            f"semantics {semantic!r} does not support query model M2"
        )
    gc = combined if combined is not None else combine(public, private)
    # The spec's baseline_m2 owns the enumeration-prefix policy (Blinks
    # enumerates every root, r-clique a generous k*8 prefix — the
    # public-private qualification below is a post-filter and answers
    # need not rank in the global top-k).
    answers = spec.baseline_m2(gc, keywords, tau, k)
    if require_public_private:
        answers = [
            a for a in answers if _is_public_private_answer(a, public, private)
        ]
    return answers[:k]


