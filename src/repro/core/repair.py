"""Witness repair: re-qualify answers by equal-distance witness swaps.

Distance ties are common on unit-weight graphs, and the qualification of
Def. II.2 depends on *which* witness a match slot holds, not only on its
distance.  An answer whose matches all landed on private vertices can
therefore fail the public-private test even though an equally close
public witness exists (and vice versa).  Before pruning such an answer,
the AComplete steps call :func:`try_requalify`, which looks for a single
equal-distance swap that adds the missing side:

* missing the *public* side — for some keyword, a public-graph route of
  exactly the recorded distance (direct KPADS lookup for public roots,
  portal + KPADS for private roots);
* missing the *private* side — for some keyword, a portal-entry route of
  exactly the recorded distance ending at a private PKD witness.

Swaps never change distances, so weights, bounds and the quality lemmas
are untouched.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.partial import PartialAnswer
from repro.core.qualify import answer_sides
from repro.graph.labeled_graph import Label, Vertex

__all__ = ["try_requalify"]

_EPS = 1e-12


def _reach_portal(engine, attachment, root: Vertex, portal: Vertex) -> float:
    """Best known root-to-portal distance (private map and/or public).

    Besides the private-only map and the public sketch, Eq.-4 detours
    ``d'(root, p_i) + dc(p_i, portal)`` through the Algo-7 combined
    portal map are considered: the combined distance between two portals
    can beat both single-graph routes (a mixed path alternating sides),
    and ``dc`` is the only structure that records it.
    """
    reach = attachment.oracle.vertex_portal.get(root, portal)
    if root in engine.public:
        reach = min(reach, engine.index.provider().vertex_distance(root, portal))
    pmap = attachment.portal_map
    for pi, d1 in attachment.oracle.vertex_portal.portal_distances(root).items():
        if d1 < reach:
            reach = min(reach, d1 + pmap.get(pi, portal))
    return reach


def _public_route(
    engine, attachment, root: Vertex, keyword: Label, cache
) -> Tuple[float, Optional[Vertex]]:
    """Best public-side witness for (root, keyword), root public or private.

    Portals carrying the keyword (in either graph — labels union on the
    combined view) also count: a portal belongs to ``G.V``.
    """
    best, witness = float("inf"), None
    if root in engine.public:
        best, witness = engine.index.provider().keyword_distance_with_witness(
            root, keyword
        )
    if root in attachment.private:
        for portal, d1 in (
            attachment.oracle.vertex_portal.portal_distances(root).items()
        ):
            pub_d, w = cache.lookup(engine, portal, keyword)
            if w is not None and d1 + pub_d < best:
                best, witness = d1 + pub_d, w
    for portal in attachment.portals:
        if attachment.private.has_label(portal, keyword):
            reach = _reach_portal(engine, attachment, root, portal)
            if reach < best:
                best, witness = reach, portal
    return best, witness


def _private_route(
    engine, attachment, root: Vertex, keyword: Label
) -> Tuple[float, Optional[Vertex]]:
    """Best private-side witness for (root, keyword) through the portals."""
    oracle = attachment.oracle
    best, witness = float("inf"), None
    for pj in attachment.portals:
        reach = _reach_portal(engine, attachment, root, pj)
        # a portal in G'.V carrying the keyword (even only via its public
        # labels) is itself a private-side witness
        if engine.public.has_label(pj, keyword) or (
            attachment.private.has_label(pj, keyword)
        ):
            if reach < best:
                best, witness = reach, pj
        entry = oracle.pkd.get(pj, keyword)
        if entry is not None and reach + entry.distance < best:
            best, witness = reach + entry.distance, entry.vertex
    return best, witness


def try_requalify(
    engine,
    attachment,
    partial: PartialAnswer,
    keywords: List[Label],
    cache,
) -> bool:
    """Attempt one equal-distance witness swap to pass Def. II.2.

    Returns ``True`` if the answer now qualifies (possibly after a swap),
    ``False`` if no lossless swap exists.
    """
    public = engine.public
    private = attachment.private
    matches = partial.answer.matches
    touches_private, touches_public = answer_sides(
        (m.vertex for m in matches.values()), public, private
    )
    if touches_private and touches_public:
        return True

    for q in sorted(keywords):
        match = matches.get(q)
        if match is None or match.vertex is None:
            continue
        # Sides contributed by the *other* matches: a swap must not strip
        # the answer of the last witness for the side we are not fixing.
        others_private, others_public = answer_sides(
            (m.vertex for key, m in matches.items() if key != q),
            public, private,
        )
        if not touches_public:
            d, witness = _public_route(engine, attachment, partial.root, q, cache)
            if witness is not None and abs(d - match.distance) <= _EPS:
                if others_private or witness in private:
                    match.vertex = witness
                    partial.public_matched.add(q)
        elif not touches_private:
            d, witness = _private_route(engine, attachment, partial.root, q)
            if witness is not None and abs(d - match.distance) <= _EPS:
                if others_public or witness in public:
                    match.vertex = witness
        touches_private, touches_public = answer_sides(
            (m.vertex for m in matches.values()), public, private
        )
        if touches_private and touches_public:
            return True
    return False
