"""PP-knk: top-k nearest keyword search on top of PPKWS (Sec. IV-C, Appx. A).

* **PEval** is the unmodified k-nk algorithm on the private graph: a
  distance-ordered Dijkstra sweep from the query vertex collecting
  keyword matches.  The sweep additionally records every portal it
  passes — each is a gateway to public-side matches.
* **ARefine** tightens both the match distances and the portal distances
  with two-portal detours (Eq. 4), identical to PP-r-clique.
* **AComplete** extends each recorded portal with the public-side
  keyword distance ``d_hat(p, q)`` from PADS/KPADS (with witness), merges
  public candidates into the private ranking and keeps the top k.

Lemma A.1/A.4 guarantee: every private vertex belonging to the true
combined-graph top-k is returned, because private match distances are
exact on ``Gc`` after refinement while public candidates only ever carry
over-estimates.

Budget checkpoints, step timing, degradation bookkeeping and obs hooks
all live in :mod:`repro.core.engine` (rule RA008); this module only
declares the steps and registers the :data:`KNK` spec.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.budget import QueryBudget
from repro.core.engine import (
    PipelineContext,
    SemanticsSpec,
    StepSpec,
    register_semantics,
    register_shard_task,
)
from repro.core.framework import (
    Attachment,
    KnkQueryResult,
    PPKWS,
    QueryCounters,
)
from repro.core.partial import PairIndicator, PartialKnkAnswer
from repro.core.pp_rclique import CompletionCache
from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.traversal import INF, dijkstra_ordered
from repro.semantics.answers import KnkAnswer, Match
from repro.semantics.wire import knk_cache_params, knk_payload, knk_wire_params

__all__ = ["pp_knk_query", "peval_knk", "salvage_knk_answer"]


def salvage_knk_answer(partial: PartialKnkAnswer, k: int) -> KnkAnswer:
    """Best-effort k-nk answer from the private matches found so far.

    Private-sweep matches carry exact private-graph distances (only ever
    *tightened* by refinement towards the combined-graph distance), so
    every salvaged distance is achievable on ``Gc``.  Refinement may have
    unsorted the list, hence the re-sort.  Bounded work — safe after
    budget expiry.
    """
    source = partial.answer
    matches = [m.copy() for m in source.matches if m.is_resolved()]
    matches.sort(key=lambda m: (m.distance, repr(m.vertex)))
    return KnkAnswer(source.source, source.keyword, matches[:k])


def peval_knk(
    attachment: Attachment,
    source: Vertex,
    keyword: Label,
    k: int,
    budget: Optional[QueryBudget] = None,
    partial: Optional[PartialKnkAnswer] = None,
) -> PartialKnkAnswer:
    """Step 1: exact k-nk sweep on the private graph, recording portals.

    Pass a pre-built ``partial`` to accumulate matches in place — the
    pipeline does this so that a budget expiring mid-sweep still leaves
    the matches found so far available for the degraded result.
    """
    private = attachment.private
    portals = attachment.portals
    if partial is None:
        partial = PartialKnkAnswer(answer=KnkAnswer(source, keyword, []))
    answer = partial.answer
    for v, d in dijkstra_ordered(private, source, budget=budget):
        if v in portals:
            partial.portal_entries.append((v, d))
        if private.has_label(v, keyword):
            answer.matches.append(Match(v, d))
            partial.pair_indicators.append(PairIndicator(source, v, keyword))
            if len(answer.matches) >= k:
                break
    return partial


def _arefine(
    attachment: Attachment,
    partial: PartialKnkAnswer,
    counters: QueryCounters,
    reduced: bool,
    budget: Optional[QueryBudget] = None,
) -> None:
    """Step 2: refine match and portal distances with portal detours."""
    if reduced and not attachment.has_refined_portals:
        counters.refinement_checks += len(partial.pair_indicators) + len(
            partial.portal_entries
        )
        return
    oracle = attachment.oracle
    pairs = attachment.refined_by_source if reduced else None
    source = partial.answer.source
    for match in partial.answer.matches:
        if budget is not None:
            budget.checkpoint()
        counters.refinement_checks += 1
        if match.vertex is None:
            continue
        refined = oracle.refine_pair(
            source, match.vertex, match.distance, pairs_by_source=pairs
        )
        if refined < match.distance:
            match.distance = refined
            counters.refinements_applied += 1
    refined_portals: List[Tuple[Vertex, float]] = []
    for portal, d in partial.portal_entries:
        if budget is not None:
            budget.checkpoint()
        counters.refinement_checks += 1
        nd = oracle.refine_pair(source, portal, d, pairs_by_source=pairs)
        if nd < d:
            counters.refinements_applied += 1
        refined_portals.append((portal, nd))
    partial.portal_entries = refined_portals


def _acomplete(
    engine: PPKWS,
    attachment: Attachment,
    partial: PartialKnkAnswer,
    keyword: Label,
    k: int,
    cache: CompletionCache,
    budget: Optional[QueryBudget] = None,
) -> KnkAnswer:
    """Step 3: merge public candidates reached through portals (Appx. A)."""
    best: Dict[Vertex, float] = {}
    for m in partial.answer.matches:
        if m.vertex is not None and m.distance < best.get(m.vertex, INF):
            best[m.vertex] = m.distance
    for portal, d in partial.portal_entries:
        if budget is not None:
            budget.checkpoint()
        for witness, pub_d in cache.lookup_candidates(engine, portal, keyword, k):
            total = d + pub_d
            if total < best.get(witness, INF):
                best[witness] = total
    ranked = sorted(best.items(), key=lambda item: (item[1], repr(item[0])))
    final = KnkAnswer(partial.answer.source, keyword, [])
    final.matches = [Match(v, d) for v, d in ranked[:k]]
    return final


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
def _validate(ctx: PipelineContext) -> None:
    p = ctx.params
    if p["k"] < 1:
        raise QueryError(f"k must be >= 1, got {p['k']}")
    if p["source"] not in ctx.attachment.private:
        raise QueryError(
            f"k-nk query vertex {p['source']!r} must belong to the private graph"
        )


def _init(ctx: PipelineContext) -> None:
    # The partial exists before the sweep starts so a budget expiring
    # mid-peval still has matches to salvage.
    p = ctx.params
    ctx.state = PartialKnkAnswer(answer=KnkAnswer(p["source"], p["keyword"], []))


def _step_peval(ctx: PipelineContext) -> None:
    p = ctx.params
    ctx.state = peval_knk(
        ctx.attachment, p["source"], p["keyword"], p["k"], ctx.budget, ctx.state
    )
    ctx.counters.partial_answers = len(ctx.state.answer.matches)


def _step_arefine(ctx: PipelineContext) -> None:
    _arefine(
        ctx.attachment, ctx.state, ctx.counters,
        ctx.options.reduced_refinement, ctx.budget,
    )


def _step_acomplete(ctx: PipelineContext) -> None:
    p = ctx.params
    if ctx.cache is None:
        ctx.cache = CompletionCache(ctx.options.dp_completion)
    ctx.answers = _acomplete(
        ctx.engine, ctx.attachment, ctx.state, p["keyword"], p["k"],
        ctx.cache, ctx.budget,
    )
    ctx.counters.completion_lookups = ctx.cache.misses + ctx.cache.hits
    ctx.counters.completion_cache_hits = ctx.cache.hits


def _salvage(ctx: PipelineContext, step: str) -> KnkAnswer:
    return salvage_knk_answer(ctx.state, ctx.params["k"])


# ----------------------------------------------------------------------
# the vectorized AComplete (repro.core.vectorized numpy kernels)
# ----------------------------------------------------------------------
def _step_acomplete_vectorized(ctx: PipelineContext) -> None:
    """AComplete with the portal probes batched through the numpy kernel.

    One :meth:`CompletionCache.lookup_candidates_many` resolves every
    portal's public top-k in a single kernel invocation with the serial
    hit/miss accounting replicated, then the merge replays the serial
    loop over the precomputed lists — ranking and counters are
    bit-identical.  The kernel declines graphs whose vertex reprs
    collide or whose candidate lists include private vertices; the step
    then falls back to the serial body.
    """
    p = ctx.params
    if ctx.cache is None:
        ctx.cache = CompletionCache(ctx.options.dp_completion)
    partial = ctx.state
    keyword, k = p["keyword"], p["k"]
    runtime = ctx.vectorized.runtime
    lists = ctx.cache.lookup_candidates_many(
        ctx.engine, [portal for portal, _ in partial.portal_entries],
        keyword, k, runtime,
    )
    if lists is None:
        _step_acomplete(ctx)
        return
    best: Dict[Vertex, float] = {}
    for m in partial.answer.matches:
        if m.vertex is not None and m.distance < best.get(m.vertex, INF):
            best[m.vertex] = m.distance
    for (portal, d), candidates in zip(partial.portal_entries, lists):
        if ctx.budget is not None:
            ctx.budget.checkpoint()
        for witness, pub_d in candidates:
            total = d + pub_d
            if total < best.get(witness, INF):
                best[witness] = total
    ranked = sorted(best.items(), key=lambda item: (item[1], repr(item[0])))
    final = KnkAnswer(partial.answer.source, keyword, [])
    final.matches = [Match(v, d) for v, d in ranked[:k]]
    ctx.answers = final
    ctx.counters.completion_lookups = ctx.cache.misses + ctx.cache.hits
    ctx.counters.completion_cache_hits = ctx.cache.hits


# ----------------------------------------------------------------------
# the sharded AComplete (repro.serving.shards fan-out)
# ----------------------------------------------------------------------
def _shard_task_knk_complete(
    host: object, network: str, owner: str,
    payload: Dict[str, object], bound: Callable[[], float],
) -> List[Tuple[Vertex, float]]:
    """Worker body: public candidates for one shard's portal group.

    ``payload["portals"]`` arrives sorted ascending by private distance,
    so once a portal's ``d`` exceeds the current merge bound every later
    portal is prunable too (``total = d + pub_d >= d``) — the DKWS
    notify-push early exit.  The strict ``>`` keeps ties eligible, which
    is what makes the merged top-k bit-identical to the serial ranking.
    """
    engine = host.engine(network)  # type: ignore[attr-defined]
    keyword = payload["keyword"]
    k = payload["k"]
    cache = CompletionCache(engine.options.dp_completion)
    out: List[Tuple[Vertex, float]] = []
    for portal, d in payload["portals"]:  # type: ignore[union-attr]
        if d > bound():
            break
        for witness, pub_d in cache.lookup_candidates(engine, portal, keyword, k):
            out.append((witness, d + pub_d))
    return out


register_shard_task("knk_complete", _shard_task_knk_complete)


def _step_acomplete_sharded(ctx: PipelineContext) -> None:
    """AComplete via scatter-gather: portal groups fan out per shard.

    The merge is a per-witness min over ``(private d) + (public d)`` —
    order-insensitive — and the monotonic bound shipped to workers is
    the current kth-best distance, which final merging can only lower,
    so worker-side pruning never removes a true top-k candidate.
    """
    p = ctx.params
    plan = ctx.shards
    partial = ctx.state
    keyword, k = p["keyword"], p["k"]
    best: Dict[Vertex, float] = {}
    for m in partial.answer.matches:
        if m.vertex is not None and m.distance < best.get(m.vertex, INF):
            best[m.vertex] = m.distance

    def kth_bound() -> float:
        if len(best) < k:
            return INF
        return sorted(best.values())[k - 1]

    groups: Dict[int, List[Tuple[Vertex, float]]] = {}
    for portal, d in partial.portal_entries:
        groups.setdefault(plan.shard_of(portal), []).append((portal, d))
    tasks = []
    for shard in sorted(groups):
        portals = sorted(groups[shard], key=lambda e: (e[1], repr(e[0])))
        tasks.append((
            shard,
            {"portals": portals, "keyword": keyword, "k": k},
            portals[0][1],  # cheapest portal = the task's cost floor
        ))

    def merge(result: List[Tuple[Vertex, float]]) -> float:
        for witness, total in result:
            if total < best.get(witness, INF):
                best[witness] = total
        return kth_bound()

    plan.scatter("knk_complete", tasks, initial_bound=kth_bound(),
                 on_result=merge)
    ranked = sorted(best.items(), key=lambda item: (item[1], repr(item[0])))
    final = KnkAnswer(partial.answer.source, keyword, [])
    final.matches = [Match(v, d) for v, d in ranked[:k]]
    ctx.answers = final
    ctx.counters.completion_lookups = len(partial.portal_entries)


KNK = register_semantics(SemanticsSpec(
    name="knk",
    summary="Top-k nearest keyword matches (PP-knk, Sec. IV-C).",
    steps=(
        StepSpec("peval", _step_peval),
        StepSpec("arefine", _step_arefine),
        StepSpec(
            "acomplete", _step_acomplete,
            _step_acomplete_sharded, _step_acomplete_vectorized,
        ),
    ),
    validate=_validate,
    init=_init,
    salvage=_salvage,
    count_answers=lambda a: len(a.matches),
    result_type=KnkQueryResult,
    wire_required=("network", "owner", "source", "keyword"),
    wire_optional=("k",),
    wire_params=knk_wire_params,
    wire_payload=knk_payload,
    wire_cache_params=knk_cache_params,
))


def pp_knk_query(
    engine: PPKWS,
    attachment: Attachment,
    source: Vertex,
    keyword: Label,
    k: int,
    cache: "CompletionCache | None" = None,
    budget: Optional[QueryBudget] = None,
) -> KnkQueryResult:
    """Run the full PEval -> ARefine -> AComplete pipeline for k-nk.

    ``cache`` lets batch sessions share one completion cache across
    queries; by default each query gets a fresh one (the paper's PKA).

    ``budget`` enables cooperative cancellation: expiry mid-step degrades
    the query to the private matches found so far (see
    :class:`~repro.core.framework.KnkQueryResult`).
    """
    return KNK.run(
        engine, attachment,
        {"source": source, "keyword": keyword, "k": k},
        budget=budget,
        cache=cache,
    )
