"""Batch query evaluation with a persistent completion cache.

The paper's dynamic-programming table PKA (Sec. VI-B) memoizes
portal-to-keyword lookups *within* one query.  A session issuing many
queries against the same attachment repeats those lookups across queries
— the portal set is fixed and query keywords recur — so this module
extends the idea across a whole batch: one
:class:`PersistentCompletionCache` is shared by every query of a
:class:`BatchSession`.

Cache entries depend only on the portal identity and the (immutable)
public index, so they never go stale while the attachment lives; after
mutating the private graph (new portals) call :meth:`BatchSession.invalidate`.
Answers are bit-identical to individually evaluated queries — the cache
memoizes pure lookups — which the test suite asserts.

Sessions also track the engine's
:attr:`~repro.core.framework.PPKWS.attachment_epoch`: when any owner
attaches or detaches between two queries, the session conservatively
drops its cached lookups and re-reads its owner's current
:class:`~repro.core.framework.Attachment` before the next query runs
(so a detach+re-attach of the same owner is picked up mid-batch instead
of silently querying the dead attachment).  This mirrors the service
layer's epoch-based answer-cache invalidation — both layers key
freshness off one monotonic counter rather than enumerating affected
entries.

Batches can carry a *whole-batch budget*: ``run_queries`` (and the
``run_knk_queries`` / deprecated ``run_keyword_queries`` sugar) accept
``deadline_ms`` (and ``max_expansions``) for the entire workload.  The
remaining allowance is divided evenly across the remaining queries
before each query starts, so an early query that overruns shrinks the
slices of later ones, and a batch whose budget is already spent degrades
every remaining query immediately instead of running unbounded.

Sessions also carry the vectorized execution machinery: an
``execution_mode`` default and a :class:`~repro.core.vectorized.SweepMemo`
shared by every vectorized query of the session, so queries whose
keywords seed the same offset sweeps run them once (batch-level PKA).
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Dict, List, Optional, Sequence

from repro.core.budget import QueryBudget
from repro.core.framework import KnkQueryResult, PPKWS, QueryResult
from repro.core.pp_rclique import CompletionCache
from repro.core.vectorized import SweepMemo
from repro.datasets.queries import KeywordQuery, KnkQuery
from repro.graph.labeled_graph import Label, Vertex
from repro.obs import observe_batch_cache

__all__ = ["PersistentCompletionCache", "BatchSession", "BatchBudget"]


class BatchBudget:
    """Divides a whole-batch allowance across the batch's queries.

    ``slice_for(queries_left)`` returns a per-query
    :class:`QueryBudget` covering an even share of whatever time and
    expansions remain, or ``None`` when the batch is unbudgeted.
    The wall-clock share is never negative: once the batch deadline has
    passed, later queries get a zero-time budget and degrade at their
    first checkpoint.
    """

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
    ) -> None:
        self.deadline_ms = deadline_ms
        self.max_expansions = max_expansions
        self._started = time.monotonic()
        self._expansions_used = 0

    @property
    def unbudgeted(self) -> bool:
        """Whether no limit at all was configured."""
        return self.deadline_ms is None and self.max_expansions is None

    def charge(self, budget: Optional[QueryBudget]) -> None:
        """Record a finished query's expansion usage."""
        if budget is not None:
            self._expansions_used += budget.expansions

    def slice_for(self, queries_left: int) -> Optional[QueryBudget]:
        """A per-query budget for the next of ``queries_left`` queries."""
        if self.unbudgeted:
            return None
        share_ms: Optional[float] = None
        if self.deadline_ms is not None:
            elapsed_ms = (time.monotonic() - self._started) * 1000.0
            share_ms = max(self.deadline_ms - elapsed_ms, 0.0) / max(queries_left, 1)
        share_exp: Optional[int] = None
        if self.max_expansions is not None:
            left = max(self.max_expansions - self._expansions_used, 0)
            share_exp = left // max(queries_left, 1)
        return QueryBudget(deadline_ms=share_ms, max_expansions=share_exp)


class PersistentCompletionCache(CompletionCache):
    """A :class:`CompletionCache` that survives across queries."""

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (tables are kept)."""
        self.hits = 0
        self.misses = 0

    def invalidate(self) -> None:
        """Drop all cached entries (the attachment changed)."""
        self._table.clear()
        self._list_table.clear()


class BatchSession:
    """Evaluate many queries for one owner with a shared completion cache.

    Example
    -------
    >>> from repro.graph import LabeledGraph
    >>> pub = LabeledGraph.from_edges([(0, 1)], {1: {"t"}})
    >>> priv = LabeledGraph.from_edges([(0, "x")], {"x": {"s"}})
    >>> engine = PPKWS(pub, sketch_k=2)
    >>> _ = engine.attach("bob", priv)
    >>> session = BatchSession(engine, "bob")
    >>> r1 = session.blinks(["t", "s"], tau=3.0)
    >>> r2 = session.blinks(["t", "s"], tau=3.0)  # cache-warm re-run
    >>> session.cache_hits > 0
    True
    """

    def __init__(
        self,
        engine: PPKWS,
        owner: str,
        execution_mode: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.owner = owner
        self.attachment = engine.attachment(owner)
        self.cache = PersistentCompletionCache(
            enabled=engine.options.dp_completion
        )
        #: session default for the step bodies ("pure" / "vectorized" /
        #: "auto"); None defers to the engine's QueryOptions.  Per-call
        #: arguments override both.
        self.execution_mode = execution_mode
        #: batch-level PKA: offset sweeps memoized across the session's
        #: queries — queries sharing keywords (hence sweep seeds) reuse
        #: each other's vectorized expansions.
        self.sweep_memo = SweepMemo()
        self._engine_epoch = engine.attachment_epoch

    # ------------------------------------------------------------------
    def _refresh_if_stale(self) -> None:
        """Invalidate + re-read the attachment if the engine changed.

        Conservative: *any* attach/detach on the engine (even of another
        owner) drops the session's cached lookups — one integer compare
        per query buys never serving a stale entry.  Raises
        :class:`~repro.exceptions.OwnerNotAttachedError` if this
        session's owner was detached in the meantime.
        """
        current = self.engine.attachment_epoch
        if current != self._engine_epoch:
            self._engine_epoch = current
            self.cache.invalidate()
            self.sweep_memo.invalidate()
            self.attachment = self.engine.attachment(self.owner)

    def _cache_marks(self) -> tuple:
        return (self.cache.hits, self.cache.misses)

    def _observe_cache(self, marks: tuple) -> None:
        """Report this query's cache traffic to an installed registry."""
        observe_batch_cache(
            self.cache.hits - marks[0], self.cache.misses - marks[1]
        )

    def blinks(
        self, keywords: Sequence[Label], tau: float, k: int = 10,
        require_public_private: bool = True,
        budget: Optional[QueryBudget] = None,
        execution_mode: Optional[str] = None,
    ) -> QueryResult:
        """One Blinks query through the shared cache (sugar over
        :meth:`query`)."""
        result: QueryResult = self.query(
            "blinks", budget=budget, execution_mode=execution_mode,
            keywords=list(keywords), tau=tau, k=k,
            require_public_private=require_public_private,
        )
        return result

    def rclique(
        self, keywords: Sequence[Label], tau: float, k: int = 10,
        require_public_private: bool = True,
        budget: Optional[QueryBudget] = None,
        execution_mode: Optional[str] = None,
    ) -> QueryResult:
        """One r-clique query through the shared cache (sugar over
        :meth:`query`)."""
        result: QueryResult = self.query(
            "rclique", budget=budget, execution_mode=execution_mode,
            keywords=list(keywords), tau=tau, k=k,
            require_public_private=require_public_private,
        )
        return result

    def knk(
        self, source: Vertex, keyword: Label, k: int,
        budget: Optional[QueryBudget] = None,
        execution_mode: Optional[str] = None,
    ) -> KnkQueryResult:
        """One k-nk query through the shared cache (sugar over
        :meth:`query`)."""
        result: KnkQueryResult = self.query(
            "knk", budget=budget, execution_mode=execution_mode,
            source=source, keyword=keyword, k=k,
        )
        return result

    def query(
        self,
        semantics: str,
        budget: Optional[QueryBudget] = None,
        execution_mode: Optional[str] = None,
        **params: object,
    ):
        """One query of any registered semantics through the shared cache.

        The generic entry point the named methods above are sugar over:
        ``semantics`` is looked up in the engine registry and run with
        ``params`` as its pipeline parameters — so a newly registered
        semantics is batchable without this class growing a method.  The
        session's persistent cache is passed through; specs that do not
        use a completion cache simply ignore it.

        ``execution_mode`` overrides the session default (which itself
        defaults to the engine's
        :attr:`~repro.core.framework.QueryOptions.execution_mode`); the
        vectorized plan carries the session's :class:`SweepMemo`, so
        vectorized queries sharing sweep seeds reuse expansions across
        the batch.
        """
        from repro.core.engine import semantics_spec
        from repro.core.vectorized import plan_for

        spec = semantics_spec(semantics)
        self._refresh_if_stale()
        if execution_mode is None:
            execution_mode = self.execution_mode
        plan = plan_for(self.engine, execution_mode, memo=self.sweep_memo)
        marks = self._cache_marks()
        try:
            return spec.run(
                self.engine, self.attachment, dict(params),
                budget=budget, cache=self.cache, vectorized=plan,
            )
        finally:
            self._observe_cache(marks)

    # ------------------------------------------------------------------
    def run_queries(
        self,
        semantics: str,
        queries: Sequence[Dict[str, Any]],
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        execution_mode: Optional[str] = None,
    ) -> List[Any]:
        """Run a workload of parameter dicts through :meth:`query`.

        Works for any registered semantics — each dict is that query's
        pipeline parameters.  ``deadline_ms`` / ``max_expansions`` bound
        the *whole batch*: the remaining allowance is split evenly across
        the remaining queries, so an exhausted batch degrades its tail
        instead of overrunning.  Unknown semantics raise
        :class:`~repro.exceptions.QueryError` before any query runs.
        """
        from repro.core.engine import semantics_spec

        semantics_spec(semantics)  # fail fast, even on an empty workload
        batch = BatchBudget(deadline_ms, max_expansions)
        results: List[Any] = []
        for i, params in enumerate(queries):
            slice_budget = batch.slice_for(len(queries) - i)
            results.append(self.query(
                semantics, budget=slice_budget,
                execution_mode=execution_mode, **params,
            ))
            batch.charge(slice_budget)
        return results

    def run_keyword_queries(
        self,
        semantic: str,
        queries: Sequence[KeywordQuery],
        k: int = 10,
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
    ) -> List[QueryResult]:
        """Deprecated shim over :meth:`run_queries`.

        Historically hard-coded ``blinks`` / ``rclique``; now any
        registered keyword semantics (``keywords`` / ``tau`` / ``k`` /
        ``require_public_private`` params) dispatches through the
        registry.  Use :meth:`run_queries` directly in new code.
        """
        warnings.warn(
            "BatchSession.run_keyword_queries is deprecated; use "
            "BatchSession.run_queries with explicit parameter dicts",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run_queries(
            semantic,
            [
                {
                    "keywords": list(q.keywords), "tau": q.tau, "k": k,
                    "require_public_private": True,
                }
                for q in queries
            ],
            deadline_ms=deadline_ms,
            max_expansions=max_expansions,
        )

    def run_knk_queries(
        self,
        queries: Sequence[KnkQuery],
        deadline_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        execution_mode: Optional[str] = None,
    ) -> List[KnkQueryResult]:
        """Run a workload of k-nk queries, optionally batch-budgeted."""
        return self.run_queries(
            "knk",
            [{"source": q.source, "keyword": q.keyword, "k": q.k} for q in queries],
            deadline_ms=deadline_ms,
            max_expansions=max_expansions,
            execution_mode=execution_mode,
        )

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Total cache hits across the session."""
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        """Total cache misses across the session."""
        return self.cache.misses

    @property
    def cache_hit_rate(self) -> float:
        """Hits / lookups across the session (0.0 before any lookup)."""
        total = self.cache.hits + self.cache.misses
        return self.cache.hits / total if total else 0.0

    def invalidate(self) -> None:
        """Drop cached lookups (call after mutating the private graph)."""
        self.cache.invalidate()
        self.sweep_memo.invalidate()
