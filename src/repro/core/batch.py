"""Batch query evaluation with a persistent completion cache.

The paper's dynamic-programming table PKA (Sec. VI-B) memoizes
portal-to-keyword lookups *within* one query.  A session issuing many
queries against the same attachment repeats those lookups across queries
— the portal set is fixed and query keywords recur — so this module
extends the idea across a whole batch: one
:class:`PersistentCompletionCache` is shared by every query of a
:class:`BatchSession`.

Cache entries depend only on the portal identity and the (immutable)
public index, so they never go stale while the attachment lives; after
mutating the private graph (new portals) call :meth:`BatchSession.invalidate`.
Answers are bit-identical to individually evaluated queries — the cache
memoizes pure lookups — which the test suite asserts.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.framework import KnkQueryResult, PPKWS, QueryResult
from repro.core.pp_blinks import pp_blinks_query
from repro.core.pp_knk import pp_knk_query
from repro.core.pp_rclique import CompletionCache, pp_rclique_query
from repro.datasets.queries import KeywordQuery, KnkQuery
from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, Vertex

__all__ = ["PersistentCompletionCache", "BatchSession"]


class PersistentCompletionCache(CompletionCache):
    """A :class:`CompletionCache` that survives across queries."""

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (tables are kept)."""
        self.hits = 0
        self.misses = 0

    def invalidate(self) -> None:
        """Drop all cached entries (the attachment changed)."""
        self._table.clear()
        self._list_table.clear()


class BatchSession:
    """Evaluate many queries for one owner with a shared completion cache.

    Example
    -------
    >>> from repro.graph import LabeledGraph
    >>> pub = LabeledGraph.from_edges([(0, 1)], {1: {"t"}})
    >>> priv = LabeledGraph.from_edges([(0, "x")], {"x": {"s"}})
    >>> engine = PPKWS(pub, sketch_k=2)
    >>> _ = engine.attach("bob", priv)
    >>> session = BatchSession(engine, "bob")
    >>> r1 = session.blinks(["t", "s"], tau=3.0)
    >>> r2 = session.blinks(["t", "s"], tau=3.0)  # cache-warm re-run
    >>> session.cache_hits > 0
    True
    """

    def __init__(self, engine: PPKWS, owner: str) -> None:
        self.engine = engine
        self.owner = owner
        self.attachment = engine.attachment(owner)
        self.cache = PersistentCompletionCache(
            enabled=engine.options.dp_completion
        )

    # ------------------------------------------------------------------
    def blinks(
        self, keywords: Sequence[Label], tau: float, k: int = 10,
        require_public_private: bool = True,
    ) -> QueryResult:
        """One Blinks query through the shared cache."""
        return pp_blinks_query(
            self.engine, self.attachment, list(keywords), tau, k,
            require_public_private, cache=self.cache,
        )

    def rclique(
        self, keywords: Sequence[Label], tau: float, k: int = 10,
        require_public_private: bool = True,
    ) -> QueryResult:
        """One r-clique query through the shared cache."""
        return pp_rclique_query(
            self.engine, self.attachment, list(keywords), tau, k,
            require_public_private, cache=self.cache,
        )

    def knk(self, source: Vertex, keyword: Label, k: int) -> KnkQueryResult:
        """One k-nk query through the shared cache."""
        return pp_knk_query(
            self.engine, self.attachment, source, keyword, k, cache=self.cache
        )

    # ------------------------------------------------------------------
    def run_keyword_queries(
        self,
        semantic: str,
        queries: Sequence[KeywordQuery],
        k: int = 10,
    ) -> List[QueryResult]:
        """Run a workload of Blinks or r-clique queries."""
        if semantic == "blinks":
            runner = self.blinks
        elif semantic == "rclique":
            runner = self.rclique
        else:
            raise QueryError(f"unknown batch semantic {semantic!r}")
        return [runner(list(q.keywords), q.tau, k) for q in queries]

    def run_knk_queries(
        self, queries: Sequence[KnkQuery]
    ) -> List[KnkQueryResult]:
        """Run a workload of k-nk queries."""
        return [self.knk(q.source, q.keyword, q.k) for q in queries]

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Total cache hits across the session."""
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        """Total cache misses across the session."""
        return self.cache.misses

    def invalidate(self) -> None:
        """Drop cached lookups (call after mutating the private graph)."""
        self.cache.invalidate()
