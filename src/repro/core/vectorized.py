"""Vectorized (numpy) execution kernels over the frozen CSR arrays.

ROADMAP item 4: the hot public-side loops — the offset multi-source
Dijkstra of AComplete part (a) and the Algo-6 sketch probes — are
per-vertex Python.  This module runs them array-at-a-time over the
:class:`~repro.graph.frozen.FrozenGraph` CSR buffers, and batches the
expansions of *several* queries through one kernel invocation with
per-query bound columns (the paper's PKA memoization lifted to the
batch level, the DKWS direction).

The pure pipelines remain the bit-identical reference.  Bit-identity of
the sweep kernel rests on one observation: with strictly positive edge
weights, Dijkstra settles vertices in *distance layers* and entries of
equal distance cannot relax each other, so the heap's pop order within a
layer is fully determined by the tie-break counter of
:func:`repro.core.pp_blinks._offset_sweep`.  That counter orders entries
lexicographically by ``(class, r, c)`` where seeds (class 0) carry their
seed-list index and pushes (class 1) carry the global pop rank of their
source plus the CSR position of the generating edge.  The kernel settles
one layer at a time, picks each node's winning entry by that exact key,
orders winners by it to assign pop ranks, and rebuilds the result dicts
in rank order — same distances (identical float additions), same
witnesses, same dict insertion order as the heap loop.

Unsupported configurations (dict backend, numpy missing, non-positive
edge weights) transparently fall back to the pure step bodies; an
explicit ``execution_mode="vectorized"`` request that falls back is
counted in ``ppkws_vectorized_fallbacks_total``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.budget import QueryBudget
from repro.core.partial import PartialAnswer
from repro.exceptions import QueryError
from repro.graph.frozen import FrozenGraph
from repro.graph.labeled_graph import Label, Vertex
from repro.graph.traversal import INF
from repro.obs.hooks import (
    observe_sweep_reuse,
    observe_vectorized_fallback,
    observe_vectorized_kernel,
)
from repro.semantics.answers import Match, RootedAnswer

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    _NUMPY = True
except Exception:  # pragma: no cover - containers without numpy
    np = None  # type: ignore[assignment]
    _NUMPY = False

__all__ = [
    "EXECUTION_MODES",
    "RankedMerge",
    "SweepCover",
    "SweepMemo",
    "VectorizedPlan",
    "VectorizedRuntime",
    "merge_rank",
    "numpy_available",
    "offset_sweep_batch",
    "plan_for",
    "validate_execution_mode",
]

#: The closed set of execution modes accepted on the wire and in
#: :class:`~repro.core.framework.QueryOptions`.
EXECUTION_MODES: Tuple[str, ...] = ("pure", "vectorized", "auto")

#: Per-sweep seed triples, exactly as `_portal_sweep_seeds` builds them.
Seeds = List[Tuple[float, Vertex, Vertex]]

#: One kernel column: a seed list plus its distance bound.
SweepColumn = Tuple[Seeds, float]


class SweepCover(Dict[Vertex, Match]):
    """A sweep result: the `_offset_sweep` dict plus intern-space arrays.

    The dict part is bit-identical to the pure sweep (same keys, Match
    values and insertion order); ``ids``/``dists`` hold the same cover as
    parallel arrays in pop order, so the array-merge fast path of
    AComplete can consume the cover without a per-vertex Python loop.
    """

    __slots__ = ("ids", "dists")

    def __init__(self) -> None:
        super().__init__()
        self.ids: Any = None
        self.dists: Any = None


def numpy_available() -> bool:
    """Whether the numpy kernels can run at all in this interpreter."""
    return _NUMPY


def validate_execution_mode(mode: str) -> str:
    """Validate a wire/user-supplied execution mode (closed set)."""
    if mode not in EXECUTION_MODES:
        raise QueryError(
            f"unknown execution_mode {mode!r} "
            f"(expected one of {', '.join(EXECUTION_MODES)})"
        )
    return mode


class VectorizedRuntime:
    """Per-engine numpy views of the CSR buffers plus derived tables.

    Built once per engine (cached on the :class:`PPKWS` instance) and
    shared by every vectorized query against it; the probe tables are
    built lazily because many workloads never touch them.
    """

    def __init__(self, engine: Any) -> None:
        public = engine.public
        if not isinstance(public, FrozenGraph):  # pragma: no cover - guarded
            raise TypeError("VectorizedRuntime requires a FrozenGraph public side")
        self.engine = engine
        self.public = public
        indptr, indices, weights = public.csr()  # ra: ignore[RA005]
        # frombuffer is zero-copy and accepts both array('q') buffers and
        # the memoryview casts a shared-memory replica exposes.
        self.indptr: Any = np.frombuffer(indptr, dtype=np.int64)
        self.indices: Any = np.frombuffer(indices, dtype=np.int64)
        self.weights: Any = np.frombuffer(weights, dtype=np.float64)
        self.n = int(self.indptr.shape[0] - 1)
        self.vertex_of: List[Vertex] = list(public.vertex_table)
        # The layered sweep is only bit-identical to the heap loop when
        # equal-distance vertices cannot relax each other, i.e. when
        # every edge weight is strictly positive.
        self.supported = bool(
            self.weights.size == 0 or float(self.weights.min()) > 0.0
        )
        # Lazy sketch-probe tables.
        self._pads_built = False
        self.pads_ptr: Any = None
        self.pads_centers: Any = None
        self.pads_d1: Any = None
        self._keyword_cols: Dict[Label, Tuple[Any, List[Optional[Vertex]]]] = {}
        self._wit_ok: Dict[Label, Any] = {}
        self._cand_cols: Dict[
            Tuple[Label, int], Tuple[Any, Any, Any, Any]
        ] = {}
        self._repr_rank: Any = None
        self._repr_ok: Optional[bool] = None

    # -- sketch-probe tables ------------------------------------------

    def _ensure_pads(self) -> None:
        """Flatten ``pads.entries`` into a CSR of (center, d1) rows.

        Row ``i`` holds vertex ``vertex_of[i]``'s sketch entries in the
        dict's iteration order — the order `estimate_with_witness`
        scans, which its first-wins tie-break depends on.
        """
        if self._pads_built:
            return
        pads = self.engine.index.pads
        intern = self.public.intern
        row_ptr: List[int] = [0]
        centers: List[int] = []
        d1: List[float] = []
        for i in range(self.n):
            sv = pads.entries.get(self.vertex_of[i])
            if sv:
                for w, d in sv.items():
                    centers.append(intern(w))
                    d1.append(d)
            row_ptr.append(len(centers))
        self.pads_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.pads_centers = np.asarray(centers, dtype=np.int64)
        self.pads_d1 = np.asarray(d1, dtype=np.float64)
        self._pads_built = True

    def _keyword_column(self, keyword: Label) -> Tuple[Any, List[Optional[Vertex]]]:
        """Dense center-id -> (KPADS distance, witness) for ``keyword``."""
        col = self._keyword_cols.get(keyword)
        if col is None:
            kpads = self.engine.index.kpads
            sketch = kpads.entries.get(keyword) or {}
            wits = kpads.witnesses.get(keyword, {})
            dist = np.full(self.n, np.inf, dtype=np.float64)
            wit_of: List[Optional[Vertex]] = [None] * self.n
            intern = self.public.intern
            for center, d2 in sketch.items():
                cid = intern(center)
                dist[cid] = d2
                wit_of[cid] = wits.get(center)
            col = (dist, wit_of)
            self._keyword_cols[keyword] = col
        return col

    def witness_ok(self, keyword: Label) -> Any:
        """Per-center bool column: does the keyword sketch hold a witness?

        The pure probe only improves a match when its witness is not
        None; the array merge needs the same guard as a mask.
        """
        ok = self._wit_ok.get(keyword)
        if ok is None:
            _, wit_of = self._keyword_column(keyword)
            ok = np.fromiter(
                (w is not None for w in wit_of), dtype=bool, count=self.n
            )
            self._wit_ok[keyword] = ok
        return ok

    def repr_rank(self) -> Any:
        """Per-vertex rank under ``repr`` ordering, or None on collision.

        `top_candidates` ranks by ``(total, repr(vertex))``; a repr
        collision (never the case for the project's str/int vertices)
        would make the rank table ambiguous, so the candidates kernel
        refuses and the caller falls back to the pure path.
        """
        if self._repr_ok is None:
            reprs = [repr(v) for v in self.vertex_of]
            if len(set(reprs)) != len(reprs):
                self._repr_ok = False
            else:
                order = sorted(range(self.n), key=reprs.__getitem__)
                rank = np.empty(self.n, dtype=np.int64)
                rank[np.asarray(order, dtype=np.int64)] = np.arange(
                    self.n, dtype=np.int64
                )
                self._repr_rank = rank
                self._repr_ok = True
        return self._repr_rank if self._repr_ok else None

    def _candidate_column(
        self, keyword: Label
    ) -> Tuple[Any, Any, Any, List[Vertex]]:
        """CSR over centers of the per-keyword candidate lists.

        Row ``cid`` holds KPADS ``candidates[keyword][center]`` in list
        order (sorted by distance, insertion-stable) — the order the
        pure merge scans.
        """
        key = (keyword, 0)
        cached = self._cand_cols.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        kpads = self.engine.index.kpads
        lists = kpads.candidates.get(keyword) or {}
        intern = self.public.intern
        ptr: List[int] = [0]
        d2: List[float] = []
        cand_ids: List[int] = []
        cand_of: Dict[Vertex, int] = {}
        cand_vertices: List[Vertex] = []
        by_cid: Dict[int, List[Tuple[float, Vertex]]] = {
            intern(center): lst for center, lst in lists.items()
        }
        for cid in range(self.n):
            for dd, u in by_cid.get(cid, ()):  # candidates can be private
                idx = cand_of.get(u)
                if idx is None:
                    idx = len(cand_vertices)
                    cand_of[u] = idx
                    cand_vertices.append(u)
                d2.append(dd)
                cand_ids.append(idx)
            ptr.append(len(d2))
        out = (
            np.asarray(ptr, dtype=np.int64),
            np.asarray(d2, dtype=np.float64),
            np.asarray(cand_ids, dtype=np.int64),
            cand_vertices,
        )
        self._cand_cols[key] = out
        return out

    # -- kernels -------------------------------------------------------

    def probe_ids(self, ids: Any, keyword: Label) -> Tuple[Any, Any]:
        """Array core of :meth:`probe_many` over interned vertex ids.

        Returns ``(best, center)`` arrays aligned with ``ids``: the
        minimal sketch total (``inf`` when no common finite center) and
        the winning center id (``-1`` for none), with equal-total ties
        resolved to the first sketch entry in row order — exactly the
        pure strict-``<`` scan of `estimate_with_witness`.
        """
        m = int(ids.size)
        best = np.full(m, np.inf, dtype=np.float64)
        center = np.full(m, -1, dtype=np.int64)
        if m == 0:
            return best, center
        observe_vectorized_kernel("keyword_probe", m)
        kpads = self.engine.index.kpads
        if not kpads.entries.get(keyword):
            return best, center
        self._ensure_pads()
        kw_dist, _ = self._keyword_column(keyword)
        starts = self.pads_ptr[ids]
        counts = self.pads_ptr[ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return best, center
        cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum, counts)
            + np.repeat(starts, counts)
        )
        rows = np.repeat(np.arange(m, dtype=np.int64), counts)
        totals = self.pads_d1[pos] + kw_dist[self.pads_centers[pos]]
        order = np.lexsort((pos, totals, rows))
        first = np.ones(order.size, dtype=bool)
        rows_sorted = rows[order]
        first[1:] = rows_sorted[1:] != rows_sorted[:-1]
        win = order[first]
        finite = totals[win] < np.inf
        win = win[finite]
        best[rows[win]] = totals[win]
        center[rows[win]] = self.pads_centers[pos[win]]
        return best, center

    def probe_many(
        self, vertices: Sequence[Vertex], keyword: Label
    ) -> Dict[Vertex, Tuple[float, Optional[Vertex]]]:
        """Batched, bit-identical `KeywordSketch.estimate_with_witness`.

        One gather + argmin over all ``vertices`` at once; equal-total
        ties resolve to the first sketch entry in row order, exactly as
        the pure strict-``<`` scan does.
        """
        out: Dict[Vertex, Tuple[float, Optional[Vertex]]] = {}
        if not vertices:
            return out
        observe_vectorized_kernel("keyword_probe", len(vertices))
        kpads = self.engine.index.kpads
        if not kpads.entries.get(keyword):
            for v in vertices:
                out[v] = (INF, None)
            return out
        self._ensure_pads()
        kw_dist, kw_wit = self._keyword_column(keyword)
        intern = self.public.intern
        ids = np.asarray([intern(v) for v in vertices], dtype=np.int64)
        starts = self.pads_ptr[ids]
        counts = self.pads_ptr[ids + 1] - starts
        total = int(counts.sum())
        for v in vertices:
            out[v] = (INF, None)
        if total == 0:
            return out
        cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum, counts)
            + np.repeat(starts, counts)
        )
        rows = np.repeat(np.arange(ids.size, dtype=np.int64), counts)
        totals = self.pads_d1[pos] + kw_dist[self.pads_centers[pos]]
        # First-wins min per row: sort by (row, total, row position).
        order = np.lexsort((pos, totals, rows))
        first = np.ones(order.size, dtype=bool)
        rows_sorted = rows[order]
        first[1:] = rows_sorted[1:] != rows_sorted[:-1]
        win = order[first]
        for j in range(win.size):
            e = int(win[j])
            best = float(totals[e])
            if best == INF:
                continue  # no common finite center: stays (INF, None)
            center = int(self.pads_centers[pos[e]])
            out[vertices[int(rows[e])]] = (best, kw_wit[center])
        return out

    def top_candidates_many(
        self, vertices: Sequence[Vertex], keyword: Label, k: int
    ) -> Optional[List[List[Tuple[Vertex, float]]]]:
        """Batched, bit-identical `KeywordSketch.top_candidates`.

        Returns one ranked candidate list per input vertex, or None when
        the repr-rank table is unavailable (repr collision) and the
        caller must use the pure path.
        """
        rrank = self.repr_rank()
        if rrank is None:
            return None
        out: List[List[Tuple[Vertex, float]]] = [[] for _ in vertices]
        if not vertices:
            return out
        observe_vectorized_kernel("top_candidates", len(vertices))
        kpads = self.engine.index.kpads
        if not kpads.candidates.get(keyword):
            return out
        self._ensure_pads()
        cand_ptr, cand_d2, cand_ids, cand_vertices = self._candidate_column(
            keyword
        )
        intern = self.public.intern
        ids = np.asarray([intern(v) for v in vertices], dtype=np.int64)
        # Expand each vertex's PADS row into its centers...
        starts = self.pads_ptr[ids]
        counts = self.pads_ptr[ids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return out
        cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        ppos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum, counts)
            + np.repeat(starts, counts)
        )
        rows1 = np.repeat(np.arange(ids.size, dtype=np.int64), counts)
        centers = self.pads_centers[ppos]
        d1 = self.pads_d1[ppos]
        # ...then each center into its candidate list entries.
        cstarts = cand_ptr[centers]
        ccounts = cand_ptr[centers + 1] - cstarts
        ctotal = int(ccounts.sum())
        if ctotal == 0:
            return out
        ccum = np.concatenate(([0], np.cumsum(ccounts)[:-1]))
        cpos = (
            np.arange(ctotal, dtype=np.int64)
            - np.repeat(ccum, ccounts)
            + np.repeat(cstarts, ccounts)
        )
        rows = np.repeat(rows1, ccounts)
        totals = np.repeat(d1, ccounts) + cand_d2[cpos]
        cands = cand_ids[cpos]
        # Min-per-(row, candidate), first occurrence on ties — the pure
        # merge's strict-< update in scan order.
        seq = np.arange(ctotal, dtype=np.int64)
        order = np.lexsort((seq, totals, cands, rows))
        rs, cs = rows[order], cands[order]
        first = np.ones(ctotal, dtype=bool)
        first[1:] = (rs[1:] != rs[:-1]) | (cs[1:] != cs[:-1])
        win = order[first]
        wrows, wcands, wtotals = rows[win], cands[win], totals[win]
        # Rank per row by (total, repr(candidate)) and keep the top k.
        cand_rrank = np.asarray(
            [
                rrank[intern(u)] if u in self.public else -1
                for u in cand_vertices
            ],
            dtype=np.int64,
        )
        # Private candidates have no public repr rank; fall back to the
        # pure path for the (rare) mixed case rather than approximate.
        wr = cand_rrank[wcands]
        if bool((wr < 0).any()):
            return None
        rorder = np.lexsort((wr, wtotals, wrows))
        wrows, wcands, wtotals = wrows[rorder], wcands[rorder], wtotals[rorder]
        row_start = np.ones(wrows.size, dtype=bool)
        row_start[1:] = wrows[1:] != wrows[:-1]
        group_ids = np.cumsum(row_start) - 1
        group_first = np.flatnonzero(row_start)
        within = np.arange(wrows.size, dtype=np.int64) - group_first[group_ids]
        keep = within < k
        for j in np.flatnonzero(keep):
            e = int(j)
            out[int(wrows[e])].append(
                (cand_vertices[int(wcands[e])], float(wtotals[e]))
            )
        return out


def offset_sweep_batch(
    runtime: VectorizedRuntime,
    columns: Sequence[SweepColumn],
    budget: Optional[QueryBudget] = None,
) -> List[SweepCover]:
    """Layer-batched multi-column replica of `_offset_sweep`.

    Each column is an independent ``(seeds, tau)`` sweep; columns share
    every kernel invocation (flat node index ``col * n + u``) but never
    interact.  Returns, per column, the exact dict `_offset_sweep`
    would: same keys, same Match values, same insertion (pop) order.

    Budget accounting is per settled layer (``cost=len(winners)``) —
    equivalent in magnitude to the pure per-pop checkpoints minus stale
    pops, so expansion caps bind at nearly the same point but not
    guaranteed mid-step parity (the equivalence suite pins degradation
    parity for budgets expiring in the shared pure steps).
    """
    n = runtime.n
    ncols = len(columns)
    intern = runtime.public.intern
    indptr, indices, weights = runtime.indptr, runtime.indices, runtime.weights

    witnesses: List[Vertex] = []
    node_l: List[int] = []
    dist_l: List[float] = []
    k2_l: List[int] = []
    wit_l: List[int] = []
    tau_of = np.empty(ncols, dtype=np.float64)
    for c, (seeds, tau) in enumerate(columns):
        tau_of[c] = tau
        kept = 0
        for offset, portal, witness in seeds:
            if offset <= tau:
                node_l.append(c * n + intern(portal))
                dist_l.append(offset)
                k2_l.append(kept)
                kept += 1
                wit_l.append(len(witnesses))
                witnesses.append(witness)

    node = np.asarray(node_l, dtype=np.int64)
    dist = np.asarray(dist_l, dtype=np.float64)
    k1 = np.zeros(node.size, dtype=np.int64)
    k2 = np.asarray(k2_l, dtype=np.int64)
    k3 = np.zeros(node.size, dtype=np.int64)
    wit = np.asarray(wit_l, dtype=np.int64)

    settled = np.zeros(ncols * n, dtype=bool)
    log_node: List[Any] = []
    log_dist: List[Any] = []
    log_wit: List[Any] = []
    next_rank = 0

    while node.size:
        live = ~settled[node]
        if not live.all():
            node, dist = node[live], dist[live]
            k1, k2, k3, wit = k1[live], k2[live], k3[live], wit[live]
            if not node.size:
                break
        d_min = dist.min()
        layer = dist == d_min
        ln = node[layer]
        lk1, lk2, lk3, lw = k1[layer], k2[layer], k3[layer], wit[layer]
        # Winning entry per node: lexicographic min of (k1, k2, k3) —
        # the image of the pure tie-break counter (module docstring).
        order = np.lexsort((lk3, lk2, lk1, ln))
        ln_sorted = ln[order]
        is_first = np.ones(ln_sorted.size, dtype=bool)
        is_first[1:] = ln_sorted[1:] != ln_sorted[:-1]
        win = order[is_first]
        wn, ww = ln[win], lw[win]
        wk1, wk2, wk3 = lk1[win], lk2[win], lk3[win]
        # Pop order among the layer's winners = winning-key order.
        pop_order = np.lexsort((wk3, wk2, wk1))
        wn, ww = wn[pop_order], ww[pop_order]
        m = int(wn.size)
        if budget is not None:
            budget.checkpoint(cost=m)
        settled[wn] = True
        ranks = next_rank + np.arange(m, dtype=np.int64)
        next_rank += m
        log_node.append(wn)
        log_wit.append(ww)
        log_dist.append(np.full(m, d_min, dtype=np.float64))
        keep = ~layer
        node, dist = node[keep], dist[keep]
        k1, k2, k3, wit = k1[keep], k2[keep], k3[keep], wit[keep]
        # Push generation: one ragged CSR gather over all winners.
        u_local = wn % n
        src_col = wn // n
        starts = indptr[u_local]
        counts = indptr[u_local + 1] - starts
        total = int(counts.sum())
        if not total:
            continue
        cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum, counts)
            + np.repeat(starts, counts)
        )
        tgt = np.repeat(src_col, counts) * n + indices[pos]
        nd = d_min + weights[pos]
        ok = (nd <= tau_of[np.repeat(src_col, counts)]) & ~settled[tgt]
        if not ok.any():
            continue
        node = np.concatenate((node, tgt[ok]))
        dist = np.concatenate((dist, nd[ok]))
        k1 = np.concatenate((k1, np.ones(int(ok.sum()), dtype=np.int64)))
        k2 = np.concatenate((k2, np.repeat(ranks, counts)[ok]))
        k3 = np.concatenate((k3, pos[ok]))
        wit = np.concatenate((wit, np.repeat(ww, counts)[ok]))

    results: List[SweepCover] = [SweepCover() for _ in range(ncols)]
    vertex_of = runtime.vertex_of
    for ni, wi, di in zip(log_node, log_wit, log_dist):
        for j in range(ni.size):
            flat = int(ni[j])
            results[flat // n][vertex_of[flat % n]] = Match(
                witnesses[int(wi[j])], float(di[j])
            )
    if log_node:
        all_nodes = np.concatenate(log_node)
        all_dists = np.concatenate(log_dist)
        cols = all_nodes // n
        for c in range(ncols):
            mask = cols == c
            results[c].ids = all_nodes[mask] % n
            results[c].dists = all_dists[mask]
    else:
        for cover in results:
            cover.ids = np.empty(0, dtype=np.int64)
            cover.dists = np.empty(0, dtype=np.float64)
    return results


class RankedMerge:
    """AComplete parts (a)+(b) for the fast-path roots, as ranked columns.

    Covers one query's *new public-only* answer roots (vertices reached
    by a sweep that are neither existing partials nor private-side
    vertices).  For those, the merged per-keyword match is a pure
    function of the sweep cover and the keyword-sketch probe:

    * match distance = sweep distance, improved by the probe exactly
      when the probe has a witness and is strictly closer (the pure
      part-(b) rule);
    * ``missing`` iff neither source reached the root.

    The candidate weights are accumulated in keyword order with the same
    IEEE additions as ``RootedAnswer.weight()``, and ``order`` ranks the
    roots by ``(weight, repr(root))`` — the exact ``sort_key()`` order —
    so the qualification walk can lazily :meth:`materialize` only the
    prefix it actually visits instead of building every candidate.
    """

    __slots__ = (
        "runtime", "keywords", "ids", "slow_touched_ids", "order",
        "weight", "_win", "_best", "_center", "_wit",
    )

    def __init__(
        self,
        runtime: VectorizedRuntime,
        keywords: List[Label],
        ids: Any,
        slow_touched_ids: Any,
        order: Any,
        weight: Any,
        win: List[Any],
        best: List[Any],
        center: List[Any],
        wit: List[List[Optional[Vertex]]],
    ) -> None:
        self.runtime = runtime
        self.keywords = keywords
        self.ids = ids
        self.slow_touched_ids = slow_touched_ids
        self.order = order
        self.weight = weight
        self._win = win
        self._best = best
        self._center = center
        self._wit = wit

    def __len__(self) -> int:
        return int(self.ids.size)

    def key(self, pos: int) -> Tuple[float, str]:
        """``sort_key()`` of the candidate at rank ``pos``."""
        j = int(self.order[pos])
        return (
            float(self.weight[j]),
            repr(self.runtime.vertex_of[int(self.ids[j])]),
        )

    def materialize(
        self, pos: int, swept: Dict[Label, Dict[Vertex, Match]]
    ) -> PartialAnswer:
        """Build the candidate at rank ``pos`` exactly as the pure merge.

        Match slots are written in keyword order (the pure part-(a)
        insertion order; part (b) only overwrites existing slots), so
        the resulting answer is bit-identical to the loop's.
        """
        j = int(self.order[pos])
        u = self.runtime.vertex_of[int(self.ids[j])]
        partial = PartialAnswer(answer=RootedAnswer(u, {}))
        for qi, q in enumerate(self.keywords):
            if bool(self._win[qi][j]):
                center = int(self._center[qi][j])
                partial.set_match(
                    q, self._wit[qi][center], float(self._best[qi][j])
                )
                partial.public_matched.add(q)
            else:
                hit = swept[q].get(u)
                if hit is None:
                    partial.set_match(q, None, INF)
                    partial.missing.add(q)
                else:
                    partial.set_match(q, hit.vertex, hit.distance)
        return partial


def merge_rank(
    runtime: VectorizedRuntime,
    keywords: List[Label],
    covers: Dict[Label, Dict[Vertex, Match]],
    exclude_ids: Any,
) -> Optional[RankedMerge]:
    """Rank a query's fast-path answer roots without materializing them.

    ``covers`` maps each keyword to its sweep cover (empty for unseeded
    keywords); ``exclude_ids`` holds the interned ids the caller must
    handle on the pure per-root path (existing partials and private-side
    vertices).  Returns None when the fast path cannot run — a repr
    collision breaks the rank table, or a cover lacks the kernel's
    arrays — and the caller falls back to the generic merge.
    """
    rrank = runtime.repr_rank()
    if rrank is None:
        return None
    cols: List[Optional[SweepCover]] = []
    for q in keywords:
        cover = covers.get(q)
        if not cover:
            cols.append(None)
        elif isinstance(cover, SweepCover) and cover.ids is not None:
            cols.append(cover)
        else:
            return None
    nonempty = [c for c in cols if c is not None]
    if nonempty:
        touched = np.unique(np.concatenate([c.ids for c in nonempty]))
    else:
        touched = np.empty(0, dtype=np.int64)
    if exclude_ids:
        excl = np.asarray(sorted(exclude_ids), dtype=np.int64)
        slow_mask = np.isin(touched, excl)
        slow_touched = touched[slow_mask]
        ids = touched[~slow_mask]
    else:
        slow_touched = np.empty(0, dtype=np.int64)
        ids = touched
    m = int(ids.size)
    weight = np.zeros(m, dtype=np.float64)
    win_l: List[Any] = []
    best_l: List[Any] = []
    center_l: List[Any] = []
    wit_l: List[List[Optional[Vertex]]] = []
    n = runtime.n
    for qi, q in enumerate(keywords):
        cover = cols[qi]
        sweep_d = np.full(m, np.inf, dtype=np.float64)
        if cover is not None and m:
            dcol = np.full(n, np.inf, dtype=np.float64)
            dcol[cover.ids] = cover.dists
            sweep_d = dcol[ids]
        best, center = runtime.probe_ids(ids, q)
        kw_wit = runtime._keyword_column(q)[1]
        win = np.zeros(m, dtype=bool)
        if m:
            has = center >= 0
            win[has] = runtime.witness_ok(q)[center[has]] & (
                best[has] < sweep_d[has]
            )
        final = np.where(win, best, sweep_d)
        weight = weight + final
        win_l.append(win)
        best_l.append(best)
        center_l.append(center)
        wit_l.append(kw_wit)
    order = (
        np.lexsort((rrank[ids], weight))
        if m
        else np.empty(0, dtype=np.int64)
    )
    return RankedMerge(
        runtime, list(keywords), ids, slow_touched, order, weight,
        win_l, best_l, center_l, wit_l,
    )


class SweepMemo:
    """Batch-level PKA: memoized public sweeps shared across queries.

    Keyed by ``(tau, seed tuple)`` — the sweep output is a pure function
    of those plus the (immutable) public CSR, so a hit is sound across
    queries, keywords and semantics within a batch.  Results are handed
    out as-is; the merge in `_acomplete` only reads them.
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: Dict[Tuple[Any, ...], Dict[Vertex, Match]] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self, tau: float, seeds: Seeds
    ) -> Optional[Dict[Vertex, Match]]:
        try:
            key = (tau, tuple(seeds))
        except TypeError:  # pragma: no cover - unhashable vertex type
            return None
        found = self._table.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
            observe_sweep_reuse(1)
        return found

    def put(
        self, tau: float, seeds: Seeds, result: Dict[Vertex, Match]
    ) -> None:
        try:
            key = (tau, tuple(seeds))
        except TypeError:  # pragma: no cover - unhashable vertex type
            return
        self._table[key] = result

    def invalidate(self) -> None:
        """Drop every memoized sweep (attachment epoch changed)."""
        self._table.clear()


class VectorizedPlan:
    """What the engine step loop threads to ``vectorized_run`` bodies."""

    __slots__ = ("runtime", "memo")

    def __init__(
        self, runtime: VectorizedRuntime, memo: Optional[SweepMemo] = None
    ) -> None:
        self.runtime = runtime
        self.memo = memo

    def sweeps(
        self,
        columns: Sequence[SweepColumn],
        budget: Optional[QueryBudget] = None,
    ) -> List[Dict[Vertex, Match]]:
        """Run sweep columns through one kernel call, via the memo.

        Memo hits skip both the kernel work and its budget charges —
        the same accounting the completion cache already uses for its
        hits.
        """
        out: List[Optional[Dict[Vertex, Match]]] = [None] * len(columns)
        missing: List[int] = []
        for i, (seeds, tau) in enumerate(columns):
            cached = self.memo.get(tau, seeds) if self.memo is not None else None
            if cached is not None:
                out[i] = cached
            else:
                missing.append(i)
        if missing:
            observe_vectorized_kernel("offset_sweep", len(missing))
            fresh = offset_sweep_batch(
                self.runtime, [columns[i] for i in missing], budget
            )
            for i, result in zip(missing, fresh):
                out[i] = result
                if self.memo is not None:
                    seeds, tau = columns[i]
                    self.memo.put(tau, seeds, result)
        return [r if r is not None else {} for r in out]


_UNSUPPORTED = object()


def runtime_for(engine: Any) -> Optional[VectorizedRuntime]:
    """The engine's cached :class:`VectorizedRuntime`, or None.

    None means this engine cannot run vectorized kernels at all: numpy
    missing, a dict-backend public graph, or non-positive edge weights.
    """
    cached = getattr(engine, "_vectorized_runtime", None)
    if cached is _UNSUPPORTED:
        return None
    if isinstance(cached, VectorizedRuntime):
        return cached
    if not _NUMPY or not isinstance(engine.public, FrozenGraph):
        # Deliberate engine mutation: `_vectorized_runtime` is a
        # write-once memo slot derived purely from the frozen public
        # graph, so caching it on the engine cannot perturb answers.
        # ra: ignore[RA012]
        engine._vectorized_runtime = _UNSUPPORTED
        return None
    runtime = VectorizedRuntime(engine)
    if not runtime.supported:
        engine._vectorized_runtime = _UNSUPPORTED
        return None
    engine._vectorized_runtime = runtime
    return runtime


def plan_for(
    engine: Any,
    execution_mode: Optional[str] = None,
    memo: Optional[SweepMemo] = None,
) -> Optional[VectorizedPlan]:
    """Resolve an execution mode into a plan (or None for the pure path).

    ``None`` defers to ``engine.options.execution_mode``.  ``"auto"``
    selects vectorized exactly when the engine supports it; an explicit
    ``"vectorized"`` that cannot be honoured falls back to pure and
    bumps ``ppkws_vectorized_fallbacks_total`` (answers are identical
    either way, so a silent fallback is safe).
    """
    mode = execution_mode
    if mode is None:
        mode = getattr(engine.options, "execution_mode", "pure")
    validate_execution_mode(mode)
    if mode == "pure":
        return None
    # runtime_for's only "impurity" is the write-once memo slot
    # justified at its definition site.  # ra: ignore[RA012]
    runtime = runtime_for(engine)
    if runtime is None:
        if mode == "vectorized":
            observe_vectorized_fallback()
        return None
    return VectorizedPlan(runtime, memo)
