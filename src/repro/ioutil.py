"""Crash-safe file writing shared by index and graph persistence.

:func:`atomic_write` implements the classic tmp + flush + fsync +
``os.replace`` protocol: the bytes of a new file only ever become
visible at the final path *after* they are durably on disk, so a crash
at any instant leaves either the old file or the new file — never a
torn hybrid.  A stray ``<path>.tmp.<pid>.<n>`` file may survive a
crash; it is never read by any loader and is overwritten or ignored.

The three :class:`~repro.faults.points.FaultPoint` parameters wire the
protocol into :mod:`repro.faults`: the write stream itself (torn-write
truncation), the pre-fsync gap, and the pre-rename gap.  When no fault
schedule is active all three reduce to a ``None`` check.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from typing import IO, Iterator, cast

from repro import faults
from repro.faults.points import FaultPoint

__all__ = ["atomic_write"]

# Distinguishes tmp files of concurrent writers in the same process.
_TMP_COUNTER = itertools.count()


def _fsync_dir(path: str) -> None:
    """Best-effort fsync of ``path``'s directory (durability of the rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(
    path: str,
    write_point: FaultPoint,
    fsync_point: FaultPoint,
    rename_point: FaultPoint,
) -> Iterator[IO[str]]:
    """Yield a text stream whose contents reach ``path`` atomically.

    The caller writes the complete new contents to the yielded stream;
    on normal exit the data is flushed, fsynced and renamed over
    ``path`` in one atomic step.  On any exception the tmp file is
    removed and ``path`` is untouched.
    """
    tmp = f"{path}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}"
    fh = open(tmp, "w", encoding="utf-8")
    try:
        yield cast("IO[str]", faults.wrap_write(fh, write_point))
        fh.flush()
        faults.fire(fsync_point)
        os.fsync(fh.fileno())
        fh.close()
        faults.fire(rename_point)
        os.replace(tmp, path)
        _fsync_dir(path)
    except BaseException:
        # Crash simulation or real failure: leave ``path`` untouched and
        # clean up the tmp file so repeated runs don't accumulate junk.
        fh.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
