"""Distance-sketch indexes: ADS (baseline), PADS and KPADS (paper Sec. V)."""

from repro.sketches.ads import build_ads, random_ranks
from repro.sketches.base import DistanceSketch, build_sketch_from_ranks
from repro.sketches.kpads import KeywordSketch, build_kpads
from repro.sketches.pads import approximation_factor, build_pads
from repro.sketches.stats import SketchQuality, measure_quality, timed_build

__all__ = [
    "DistanceSketch",
    "KeywordSketch",
    "SketchQuality",
    "approximation_factor",
    "build_ads",
    "build_kpads",
    "build_pads",
    "build_sketch_from_ranks",
    "measure_quality",
    "random_ranks",
    "timed_build",
]
