"""PageRank-based All Distance Sketches (PADS) — paper Sec. V-A.

PADS is ADS with PageRank priorities: vertices with high PageRank lie on
many shortest paths, so promoting them to centers makes sketches both
smaller and more accurate while keeping ADS's ``(2c-1)`` estimation
guarantee (Lemma V.1, ``c = ceil(ln|V| / ln k)``).
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.graph.labeled_graph import Vertex
from repro.graph.protocol import GraphLike
from repro.graph.pagerank import pagerank
from repro.sketches.base import DistanceSketch, build_sketch_from_ranks

__all__ = ["build_pads", "approximation_factor"]


def build_pads(
    graph: "GraphLike",
    k: int = 2,
    ranks: Optional[Mapping[Vertex, float]] = None,
    alpha: float = 0.85,
) -> DistanceSketch:
    """Build the PADS index with bottom-k parameter ``k``.

    Parameters
    ----------
    ranks:
        Precomputed PageRank scores; computed internally when omitted
        (callers that build both PADS and per-dataset statistics reuse
        one PageRank run).
    alpha:
        PageRank damping factor, used only when ``ranks`` is ``None``.
    """
    pr: Mapping[Vertex, float] = ranks if ranks is not None else pagerank(graph, alpha)
    return build_sketch_from_ranks(graph, dict(pr), k, kind="PADS")


def approximation_factor(num_vertices: int, k: int) -> int:
    """The paper's worst-case stretch ``(2c - 1)``, ``c = ceil(ln n / ln k)``.

    For ``k = 1`` the bound degenerates (``ln k = 0``); we follow the
    convention that a single-center hierarchy gives ``c = ceil(log2 n)``.
    """
    if num_vertices <= 1:
        return 1
    if k <= 1:
        c = math.ceil(math.log2(num_vertices))
    else:
        c = math.ceil(math.log(num_vertices) / math.log(k))
    return max(1, 2 * c - 1)
