"""Measurement utilities for sketch quality (paper Tab. VI, Fig. 5).

The paper evaluates ADS vs PADS along three axes: construction time,
index size (number of centers) and estimation quality — the approximation
ratio ``d_hat / d`` and the relative error ``(d_hat - d) / d`` averaged
over sampled vertex pairs.  These helpers compute all three for any
:class:`DistanceSketch`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.graph.protocol import GraphLike
from repro.graph.traversal import INF, dijkstra
from repro.sketches.base import DistanceSketch

__all__ = ["SketchQuality", "measure_quality", "timed_build"]


@dataclass(frozen=True)
class SketchQuality:
    """Estimation-quality summary over sampled connected vertex pairs."""

    pairs_sampled: int
    mean_approx_ratio: float
    mean_relative_error: float
    max_approx_ratio: float
    exact_fraction: float

    def as_row(self) -> Tuple[float, float, float, float]:
        """Compact tuple for table rendering."""
        return (
            self.mean_approx_ratio,
            self.mean_relative_error,
            self.max_approx_ratio,
            self.exact_fraction,
        )


def measure_quality(
    graph: "GraphLike",
    sketch: DistanceSketch,
    num_pairs: int = 1000,
    seed: Optional[int] = None,
) -> SketchQuality:
    """Sample vertex pairs and compare sketch estimates to exact Dijkstra.

    Pairs are sampled uniformly; unreachable pairs and self-pairs are
    skipped (the paper samples from connected pairs).  Sampling sources
    are grouped so one Dijkstra run serves many pairs.
    """
    rng = random.Random(seed)
    verts = list(graph.vertices())
    if len(verts) < 2 or num_pairs <= 0:
        return SketchQuality(0, 1.0, 0.0, 1.0, 1.0)

    # Group samples by source so each source costs a single Dijkstra.
    per_source = max(1, num_pairs // max(1, len(verts) // 4))
    ratios: List[float] = []
    exact_hits = 0
    while len(ratios) < num_pairs:
        s = rng.choice(verts)
        dist = dijkstra(graph, s)
        if len(dist) < 2:
            continue
        reachable = [v for v in dist if v != s]
        if not reachable:
            continue
        for _ in range(min(per_source, num_pairs - len(ratios))):
            t = rng.choice(reachable)
            d = dist[t]
            if d == 0:
                continue
            est = sketch.estimate(s, t)
            if est is INF:
                continue
            ratio = est / d
            ratios.append(ratio)
            if est == d:
                exact_hits += 1
    if not ratios:
        return SketchQuality(0, 1.0, 0.0, 1.0, 1.0)
    mean_ratio = sum(ratios) / len(ratios)
    return SketchQuality(
        pairs_sampled=len(ratios),
        mean_approx_ratio=mean_ratio,
        mean_relative_error=mean_ratio - 1.0,
        max_approx_ratio=max(ratios),
        exact_fraction=exact_hits / len(ratios),
    )


def timed_build(
    builder: Callable[[], DistanceSketch]
) -> Tuple[DistanceSketch, float]:
    """Run ``builder`` and return ``(sketch, wall_seconds)``."""
    start = time.perf_counter()
    sketch = builder()
    return sketch, time.perf_counter() - start
