"""Core machinery shared by ADS and PADS (paper Sec. V-A).

Both indexes are *all-distance sketches*: each vertex ``v`` stores a small
map ``{center -> d(v, center)}``.  The two differ only in the priority
used to decide which vertices become centers — random values for ADS,
PageRank for PADS — so construction and estimation live here and the
concrete builders just supply a rank function.

Construction follows the paper's Algo 6: process candidate centers in
descending priority; from each, run a *pruned* Dijkstra that inserts the
center into the sketch of every visited vertex ``u`` unless ``u`` already
holds ``k`` centers at distance ``<= d`` (in which case the traversal does
not expand through ``u``).  The expected sketch size is ``O(k ln |V|)``.

The builder accepts any :class:`~repro.graph.protocol.GraphLike` backend.
On a :class:`~repro.graph.frozen.FrozenGraph` (the production public
graph) the whole of Algo 6 runs over interned integer ids with flat CSR
neighbor scans and bare ``(distance, id)`` heap entries; the resulting
sketches are translated back to vertex keys, so
:class:`DistanceSketch` and the persistence layer are backend-agnostic.
The pruned traversal's output is independent of heap tie order (each
vertex's coverage test only depends on previously processed centers), so
both paths produce identical sketches.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import IndexBuildError
from repro.graph.frozen import FrozenGraph
from repro.graph.labeled_graph import Vertex
from repro.graph.traversal import INF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.protocol import GraphLike

__all__ = ["DistanceSketch", "build_sketch_from_ranks"]


class DistanceSketch:
    """Per-vertex distance sketches plus the two-hop distance estimator.

    ``entries[v]`` maps each center ``w`` in v's sketch to ``d(v, w)``.
    Estimation (paper Eq. 2) takes the best common center:

        d_hat(u, v) = min over w of  entries[u][w] + entries[v][w]

    Sketch distances are along real paths, so ``d_hat`` is always an upper
    bound of the true distance, and exact when ``u`` (or ``v``) is itself a
    center of the other's sketch.
    """

    __slots__ = ("entries", "k", "kind")

    def __init__(
        self,
        entries: Dict[Vertex, Dict[Vertex, float]],
        k: int,
        kind: str = "sketch",
    ) -> None:
        self.entries = entries
        self.k = k
        self.kind = kind

    # ------------------------------------------------------------------
    def sketch(self, v: Vertex) -> Mapping[Vertex, float]:
        """The sketch of ``v`` (empty mapping for unknown vertices)."""
        return self.entries.get(v, {})

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """Estimated distance ``d_hat(u, v)`` (Eq. 2); ``inf`` if no overlap."""
        if u == v:
            return 0.0 if u in self.entries else INF
        su = self.entries.get(u)
        sv = self.entries.get(v)
        if not su or not sv:
            return INF
        if len(su) > len(sv):
            su, sv = sv, su
        best = INF
        for w, d1 in su.items():
            d2 = sv.get(w)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    def estimate_to_sketch(self, v: Vertex, other: Mapping[Vertex, float]) -> float:
        """Distance estimate between ``v`` and an externally built sketch.

        KPADS keyword lookups use this: ``other`` is the merged keyword
        sketch (Eq. 3).
        """
        sv = self.entries.get(v)
        if not sv or not other:
            return INF
        if len(sv) > len(other):
            small, large = other, sv
        else:
            small, large = sv, other
        best = INF
        for w, d1 in small.items():
            d2 = large.get(w)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices carrying a sketch."""
        return len(self.entries)

    @property
    def total_entries(self) -> int:
        """Total number of ``(center, distance)`` entries (the index size)."""
        return sum(len(s) for s in self.entries.values())

    def average_size(self) -> float:
        """Mean sketch size — theory says ``O(k ln |V|)``."""
        if not self.entries:
            return 0.0
        return self.total_entries / len(self.entries)

    def centers(self) -> Iterable[Vertex]:
        """All distinct centers used anywhere in the index."""
        seen = set()
        for s in self.entries.values():
            seen.update(s)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DistanceSketch kind={self.kind} k={self.k} "
            f"|V|={self.num_vertices} entries={self.total_entries}>"
        )


def build_sketch_from_ranks(
    graph: "GraphLike",
    ranks: Mapping[Vertex, float],
    k: int,
    kind: str = "sketch",
    tie_break: Optional[Mapping[Vertex, int]] = None,
) -> DistanceSketch:
    """Build an all-distance sketch given per-vertex priorities (Algo 6).

    Parameters
    ----------
    ranks:
        Priority of each vertex (higher = more likely to be a center);
        PageRank for PADS, uniform random values for ADS.
    k:
        The bottom-k parameter: a center at distance ``d`` enters the
        sketch of ``u`` only while fewer than ``k`` existing centers sit
        within distance ``d`` of ``u``.
    tie_break:
        Optional deterministic total order used when priorities tie.
        Defaults to vertex iteration order on both backends (interning
        order on a frozen graph), so the two backends pick centers in
        the same sequence.
    """
    if k < 1:
        raise IndexBuildError(f"sketch parameter k must be >= 1, got {k}")
    missing = [v for v in graph.vertices() if v not in ranks]
    if missing:
        raise IndexBuildError(
            f"ranks missing for {len(missing)} vertices (e.g. {missing[0]!r})"
        )

    if isinstance(graph, FrozenGraph):
        return _build_sketch_frozen(graph, ranks, k, kind, tie_break)

    entries: Dict[Vertex, Dict[Vertex, float]] = {v: {} for v in graph.vertices()}
    # Per-vertex sorted list of distances already in the sketch; used for
    # the "< k entries with distance <= d" test via binary search.
    loaded: Dict[Vertex, List[float]] = {v: [] for v in graph.vertices()}

    if tie_break is None:
        tie_break = {v: i for i, v in enumerate(graph.vertices())}
    order = sorted(
        graph.vertices(), key=lambda v: (-ranks[v], tie_break.get(v, 0))
    )

    for center in order:
        # Pruned Dijkstra from the candidate center.
        settled: Dict[Vertex, float] = {}
        counter = itertools.count()  # tie-break: vertices may be incomparable
        heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), center)]
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled[u] = d
            bucket = loaded[u]
            covered = bisect.bisect_right(bucket, d)
            if covered >= k:
                # u already sees k higher-priority centers within d:
                # the center is useless for u and everything behind it.
                continue
            entries[u][center] = d
            bisect.insort(bucket, d)
            for nbr, w in graph.neighbor_items(u):
                if nbr not in settled:
                    heapq.heappush(heap, (d + w, next(counter), nbr))
    return DistanceSketch(entries, k, kind)


def _build_sketch_frozen(
    graph: FrozenGraph,
    ranks: Mapping[Vertex, float],
    k: int,
    kind: str,
    tie_break: Optional[Mapping[Vertex, int]],
) -> DistanceSketch:
    """Algo 6 over interned ids and flat CSR arrays (same output).

    The transient ``tolist`` copies are amortized over the ``n`` pruned
    traversals of the build; plain-list indexing is markedly faster than
    ``array`` element access in the inner relaxation loop.
    """
    # ra: ignore[RA005] — sanctioned int-specialized fast path: the CSR
    # arrays power Algo 6 here, with _build_sketch as the GraphLike
    # fallback producing bit-identical output (tests/test_backend_equivalence).
    indptr_a, indices_a, weights_a = graph.csr()
    indptr = indptr_a.tolist()
    indices = indices_a.tolist()
    weights = weights_a.tolist()
    vx = graph.vertex_table
    n = len(vx)
    rank_of = [ranks[v] for v in vx]
    if tie_break is None:
        order = sorted(range(n), key=lambda i: (-rank_of[i], i))
    else:
        order = sorted(
            range(n), key=lambda i: (-rank_of[i], tie_break.get(vx[i], 0))
        )

    entries_ids: List[Dict[int, float]] = [{} for _ in range(n)]
    loaded: List[List[float]] = [[] for _ in range(n)]
    # Per-center settled set as a version-stamp array: stamp[u] == step
    # marks u settled for the current center without any hashing and
    # without an O(n) reset between centers.
    stamp = [0] * n
    heappop, heappush = heapq.heappop, heapq.heappush
    bisect_right, insort = bisect.bisect_right, bisect.insort

    for step, center in enumerate(order, 1):
        heap: List[Tuple[float, int]] = [(0.0, center)]
        while heap:
            d, u = heappop(heap)
            if stamp[u] == step:
                continue
            stamp[u] = step
            bucket = loaded[u]
            covered = bisect_right(bucket, d)
            if covered >= k:
                continue
            entries_ids[u][center] = d
            insort(bucket, d)
            for pos in range(indptr[u], indptr[u + 1]):
                nbr = indices[pos]
                if stamp[nbr] != step:
                    heappush(heap, (d + weights[pos], nbr))

    entries: Dict[Vertex, Dict[Vertex, float]] = {
        vx[i]: {vx[c]: d for c, d in sketch.items()}
        for i, sketch in enumerate(entries_ids)
    }
    return DistanceSketch(entries, k, kind)
