"""Core machinery shared by ADS and PADS (paper Sec. V-A).

Both indexes are *all-distance sketches*: each vertex ``v`` stores a small
map ``{center -> d(v, center)}``.  The two differ only in the priority
used to decide which vertices become centers — random values for ADS,
PageRank for PADS — so construction and estimation live here and the
concrete builders just supply a rank function.

Construction follows the paper's Algo 6: process candidate centers in
descending priority; from each, run a *pruned* Dijkstra that inserts the
center into the sketch of every visited vertex ``u`` unless ``u`` already
holds ``k`` centers at distance ``<= d`` (in which case the traversal does
not expand through ``u``).  The expected sketch size is ``O(k ln |V|)``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import IndexBuildError
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import INF

__all__ = ["DistanceSketch", "build_sketch_from_ranks"]


class DistanceSketch:
    """Per-vertex distance sketches plus the two-hop distance estimator.

    ``entries[v]`` maps each center ``w`` in v's sketch to ``d(v, w)``.
    Estimation (paper Eq. 2) takes the best common center:

        d_hat(u, v) = min over w of  entries[u][w] + entries[v][w]

    Sketch distances are along real paths, so ``d_hat`` is always an upper
    bound of the true distance, and exact when ``u`` (or ``v``) is itself a
    center of the other's sketch.
    """

    __slots__ = ("entries", "k", "kind")

    def __init__(
        self,
        entries: Dict[Vertex, Dict[Vertex, float]],
        k: int,
        kind: str = "sketch",
    ) -> None:
        self.entries = entries
        self.k = k
        self.kind = kind

    # ------------------------------------------------------------------
    def sketch(self, v: Vertex) -> Mapping[Vertex, float]:
        """The sketch of ``v`` (empty mapping for unknown vertices)."""
        return self.entries.get(v, {})

    def estimate(self, u: Vertex, v: Vertex) -> float:
        """Estimated distance ``d_hat(u, v)`` (Eq. 2); ``inf`` if no overlap."""
        if u == v:
            return 0.0 if u in self.entries else INF
        su = self.entries.get(u)
        sv = self.entries.get(v)
        if not su or not sv:
            return INF
        if len(su) > len(sv):
            su, sv = sv, su
        best = INF
        for w, d1 in su.items():
            d2 = sv.get(w)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    def estimate_to_sketch(self, v: Vertex, other: Mapping[Vertex, float]) -> float:
        """Distance estimate between ``v`` and an externally built sketch.

        KPADS keyword lookups use this: ``other`` is the merged keyword
        sketch (Eq. 3).
        """
        sv = self.entries.get(v)
        if not sv or not other:
            return INF
        if len(sv) > len(other):
            small, large = other, sv
        else:
            small, large = sv, other
        best = INF
        for w, d1 in small.items():
            d2 = large.get(w)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices carrying a sketch."""
        return len(self.entries)

    @property
    def total_entries(self) -> int:
        """Total number of ``(center, distance)`` entries (the index size)."""
        return sum(len(s) for s in self.entries.values())

    def average_size(self) -> float:
        """Mean sketch size — theory says ``O(k ln |V|)``."""
        if not self.entries:
            return 0.0
        return self.total_entries / len(self.entries)

    def centers(self) -> Iterable[Vertex]:
        """All distinct centers used anywhere in the index."""
        seen = set()
        for s in self.entries.values():
            seen.update(s)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DistanceSketch kind={self.kind} k={self.k} "
            f"|V|={self.num_vertices} entries={self.total_entries}>"
        )


def build_sketch_from_ranks(
    graph: LabeledGraph,
    ranks: Mapping[Vertex, float],
    k: int,
    kind: str = "sketch",
    tie_break: Optional[Mapping[Vertex, int]] = None,
) -> DistanceSketch:
    """Build an all-distance sketch given per-vertex priorities (Algo 6).

    Parameters
    ----------
    ranks:
        Priority of each vertex (higher = more likely to be a center);
        PageRank for PADS, uniform random values for ADS.
    k:
        The bottom-k parameter: a center at distance ``d`` enters the
        sketch of ``u`` only while fewer than ``k`` existing centers sit
        within distance ``d`` of ``u``.
    tie_break:
        Optional deterministic total order used when priorities tie.
    """
    if k < 1:
        raise IndexBuildError(f"sketch parameter k must be >= 1, got {k}")
    missing = [v for v in graph.vertices() if v not in ranks]
    if missing:
        raise IndexBuildError(
            f"ranks missing for {len(missing)} vertices (e.g. {missing[0]!r})"
        )

    entries: Dict[Vertex, Dict[Vertex, float]] = {v: {} for v in graph.vertices()}
    # Per-vertex sorted list of distances already in the sketch; used for
    # the "< k entries with distance <= d" test via binary search.
    import bisect

    loaded: Dict[Vertex, List[float]] = {v: [] for v in graph.vertices()}

    if tie_break is None:
        tie_break = {v: i for i, v in enumerate(graph.vertices())}
    order = sorted(
        graph.vertices(), key=lambda v: (-ranks[v], tie_break.get(v, 0))
    )

    import itertools

    for center in order:
        # Pruned Dijkstra from the candidate center.
        settled: Dict[Vertex, float] = {}
        counter = itertools.count()  # tie-break: vertices may be incomparable
        heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), center)]
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled[u] = d
            bucket = loaded[u]
            covered = bisect.bisect_right(bucket, d)
            if covered >= k:
                # u already sees k higher-priority centers within d:
                # the center is useless for u and everything behind it.
                continue
            entries[u][center] = d
            bisect.insort(bucket, d)
            for nbr, w in graph.neighbor_items(u):
                if nbr not in settled:
                    heapq.heappush(heap, (d + w, next(counter), nbr))
    return DistanceSketch(entries, k, kind)
