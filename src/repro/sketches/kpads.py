"""Keyword-PADS (KPADS) — per-keyword distance sketches (paper Sec. V-B).

For each keyword ``t`` the sketch ``KPADS(t)`` merges the PADS of every
vertex carrying ``t``, keeping for each center the *smallest* distance.
A vertex-to-keyword distance is then estimated (Eq. 3) as

    d_hat(v, t) = min over common centers w of PADS(v)[w] + KPADS(t)[w]

with the same ``(2c-1)`` guarantee as PADS (Lemma V.2).  KPADS also keeps
an inverted map from ``(keyword, center)`` to the *witness* vertex that
realized the minimal distance, so answer completion can report the actual
matched vertex, not just its distance (the paper mentions this inverted
index in Appx. A).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.graph.labeled_graph import Label, Vertex
from repro.graph.protocol import GraphLike
from repro.graph.traversal import INF
from repro.sketches.base import DistanceSketch

__all__ = ["KeywordSketch", "build_kpads"]


class KeywordSketch:
    """The merged per-keyword sketches plus the vertex-keyword estimator.

    Besides the minimal per-center distance (``entries``), the sketch
    keeps a short per-center *candidate list* (``candidates``): the
    ``per_center`` nearest keyword vertices seen through each center.
    The single-witness estimator only needs ``entries``; the candidate
    lists power top-k retrieval for PP-knk's answer completion, where a
    single nearest match per portal would under-fill the top-k.
    """

    __slots__ = ("entries", "witnesses", "candidates", "k", "per_center")

    def __init__(
        self,
        entries: Dict[Label, Dict[Vertex, float]],
        witnesses: Dict[Label, Dict[Vertex, Vertex]],
        k: int,
        candidates: Optional[Dict[Label, Dict[Vertex, List[Tuple[float, Vertex]]]]] = None,
        per_center: int = 1,
    ) -> None:
        self.entries = entries
        self.witnesses = witnesses
        self.candidates = candidates if candidates is not None else {}
        self.k = k
        self.per_center = per_center

    def sketch(self, keyword: Label) -> Mapping[Vertex, float]:
        """``KPADS(t)``: center -> min distance (empty if keyword unknown)."""
        return self.entries.get(keyword, {})

    def estimate(
        self, pads: DistanceSketch, v: Vertex, keyword: Label
    ) -> float:
        """Estimated ``d_hat(v, t)`` per Eq. 3; ``inf`` when not estimable."""
        return pads.estimate_to_sketch(v, self.entries.get(keyword, {}))

    def estimate_with_witness(
        self, pads: DistanceSketch, v: Vertex, keyword: Label
    ) -> Tuple[float, Optional[Vertex]]:
        """Like :meth:`estimate` but also return the witness vertex.

        The witness is the keyword-carrying vertex whose PADS contributed
        the winning center, i.e. the vertex AComplete should report as the
        match for ``keyword``.
        """
        kw_sketch = self.entries.get(keyword)
        sv = pads.entries.get(v)
        if not kw_sketch or not sv:
            return INF, None
        best = INF
        best_center: Optional[Vertex] = None
        for w, d1 in sv.items():
            d2 = kw_sketch.get(w)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
                best_center = w
        if best_center is None:
            return INF, None
        witness = self.witnesses.get(keyword, {}).get(best_center)
        return best, witness

    def top_candidates(
        self, pads: DistanceSketch, v: Vertex, keyword: Label, k: int
    ) -> List[Tuple[Vertex, float]]:
        """Up to ``k`` distinct keyword vertices nearest to ``v``.

        Merges the per-center candidate lists reachable from ``v``'s
        PADS; distances are sketch estimates (upper bounds), each the
        length of a real path ``v -> center -> candidate``.
        """
        kw_lists = self.candidates.get(keyword)
        sv = pads.entries.get(v)
        if not kw_lists or not sv:
            return []
        best: Dict[Vertex, float] = {}
        for w, d1 in sv.items():
            for d2, u in kw_lists.get(w, ()):
                total = d1 + d2
                if total < best.get(u, INF):
                    best[u] = total
        ranked = sorted(best.items(), key=lambda item: (item[1], repr(item[0])))
        return ranked[:k]

    @property
    def num_keywords(self) -> int:
        """Number of keywords indexed."""
        return len(self.entries)

    @property
    def total_entries(self) -> int:
        """Total (keyword, center) entries — bounded by sum over vertices
        of ``|L(v)| * |PADS(v)|`` (paper Sec. V-B)."""
        return sum(len(s) for s in self.entries.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<KeywordSketch k={self.k} keywords={self.num_keywords} "
            f"entries={self.total_entries}>"
        )


def build_kpads(
    graph: "GraphLike",
    pads: DistanceSketch,
    keywords: Optional[Iterable[Label]] = None,
    per_center: int = 4,
) -> KeywordSketch:
    """Merge vertex PADS into per-keyword KPADS sketches.

    Parameters
    ----------
    keywords:
        Restrict the index to these keywords (defaults to the full label
        universe of ``graph``).
    per_center:
        Length of the per-center candidate list kept for top-k retrieval
        (1 reproduces the paper's minimal merge exactly).
    """
    import bisect

    vocab = list(keywords) if keywords is not None else list(graph.label_universe())
    entries: Dict[Label, Dict[Vertex, float]] = {}
    witnesses: Dict[Label, Dict[Vertex, Vertex]] = {}
    candidates: Dict[Label, Dict[Vertex, List[Tuple[float, Vertex]]]] = {}
    for t in vocab:
        merged: Dict[Vertex, float] = {}
        wit: Dict[Vertex, Vertex] = {}
        lists: Dict[Vertex, List[Tuple[float, Vertex]]] = {}
        # repr order: equal-distance witness ties resolve the same way
        # regardless of set iteration order (PYTHONHASHSEED).
        for v in sorted(graph.vertices_with_label(t), key=repr):
            for center, d in pads.sketch(v).items():
                if d < merged.get(center, INF):
                    merged[center] = d
                    wit[center] = v
                lst = lists.setdefault(center, [])
                if len(lst) < per_center or d < lst[-1][0]:
                    # Insert keeping the (tiny) list sorted by distance;
                    # vertices may be incomparable, so don't tuple-sort.
                    pos = bisect.bisect_right([e[0] for e in lst], d)
                    lst.insert(pos, (d, v))
                    if len(lst) > per_center:
                        lst.pop()
        entries[t] = merged
        witnesses[t] = wit
        candidates[t] = lists
    return KeywordSketch(entries, witnesses, pads.k, candidates, per_center)
