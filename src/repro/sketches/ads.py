"""All-Distance Sketches (ADS) — the baseline index (Cohen, TKDE'15).

Each vertex is assigned a uniform random value in [0, 1]; a vertex ``u``
enters the sketch of ``v`` when it has one of the ``k`` largest values
among the vertices traversed from ``v`` in Dijkstra order (paper Sec. V-A).
PADS replaces these random priorities with PageRank; everything else is
shared via :func:`repro.sketches.base.build_sketch_from_ranks`.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.graph.labeled_graph import Vertex
from repro.graph.protocol import GraphLike
from repro.sketches.base import DistanceSketch, build_sketch_from_ranks

__all__ = ["build_ads", "random_ranks"]


def random_ranks(graph: "GraphLike", seed: Optional[int] = None) -> Dict[Vertex, float]:
    """Uniform random priorities in [0, 1], deterministic per ``seed``."""
    rng = random.Random(seed)
    return {v: rng.random() for v in graph.vertices()}


def build_ads(
    graph: "GraphLike",
    k: int = 2,
    seed: Optional[int] = None,
) -> DistanceSketch:
    """Build the ADS index with bottom-k parameter ``k``.

    A larger ``k`` yields larger, more accurate sketches (expected size
    ``O(k ln |V|)`` per vertex).
    """
    ranks = random_ranks(graph, seed)
    return build_sketch_from_ranks(graph, ranks, k, kind="ADS")
