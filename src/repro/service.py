"""An embeddable PPKWS service: dict-in / dict-out request execution.

Applications embedding the library (or wrapping it behind RPC) want a
single stable entry point rather than the full Python API.
:class:`PPKWSService` manages named networks (public graph + per-user
attachments + indexes) and executes plain-dict requests::

    service = PPKWSService()
    service.create_network("collab", public_graph)
    service.attach_user("collab", "bob", private_graph)
    response = service.execute({
        "op": "blinks", "network": "collab", "owner": "bob",
        "keywords": ["DB", "AI"], "tau": 4.0, "k": 5,
    })

Wire protocol (v1)
------------------

Responses are plain dicts with ``status`` = ``"ok"`` / ``"degraded"`` /
``"error"`` — no library exception ever escapes :meth:`execute`, making
the facade safe to expose to untrusted request producers.  Every
response echoes ``"v": 1`` (the protocol version).  Error responses
carry a stable machine-readable ``code`` next to the human ``error``
message — one of ``bad_request`` / ``unknown_network`` /
``unknown_owner`` / ``overloaded`` / ``budget_exhausted`` /
``internal`` — mapped centrally from the exception type, never by
string matching.  Unknown top-level request fields are *not* silently
ignored: the response carries a ``warnings`` list naming them.  A
request may pin ``"v": 1``; any other version is rejected as
``bad_request``.  ``{"op": "help"}`` returns the full op catalogue
(required/optional fields, read-vs-admin mode, cacheability) straight
from the declarative op registry this module dispatches on.

Concurrency contract
--------------------

The service is built to be driven concurrently (see
:class:`repro.serving.ServiceExecutor` for the worker pool):

* Each network has a writer-preferring reader-writer lock
  (:class:`repro.serving.RWLock`).  Read-only ops (queries, ``stats``)
  take the read side, so queries on different networks — and different
  owners of one network — genuinely run in parallel.  Admin ops
  (``create_network`` / ``attach`` / ``detach`` / ``drop``) take the
  write side, whether they arrive through :meth:`execute` or the direct
  Python methods.
* The service admits at most ``max_in_flight`` concurrent requests
  (default: unlimited).  Requests beyond the cap fail fast with
  ``code: "overloaded"`` and ``retryable: true``.
* The registry and per-engine attachment maps are additionally guarded
  by plain locks, so concurrent creates/attaches of one name resolve to
  exactly one winner and queries never observe a half-registered
  network.

Answer cache
------------

Completed ``status: "ok"`` responses of the query ops are cached in a
cross-request LRU+TTL :class:`repro.serving.AnswerCache` keyed on
``(network, owner, op, canonicalized params)`` (defaults applied, so
``{"tau": 5.0}`` and an omitted ``tau`` share an entry).  Staleness is
epoch-based: every ``create`` / ``attach`` / ``detach`` / ``drop``
bumps the network's epoch and entries from older epochs are never
served — an answer cached before an ``attach`` cannot be returned after
it.  Cache hits carry ``"cached": true``; per-request ``"no_cache":
true`` bypasses the cache, and ``"trace": true`` requests always
execute (their trace describes a real run).  Budget fields are
deliberately *not* part of the key: a cached answer is a complete,
unbudgeted-equivalent result, so serving it under any budget is sound.

Robustness contract
-------------------

* Query requests may carry ``deadline_ms`` / ``max_expansions``.  A
  query whose budget expires returns ``status: "degraded"`` with the
  answers completed so far plus ``completed_steps`` /
  ``interrupted_step`` describing how far the pipeline got.
* Malformed requests get explicit ``"missing field 'keywords'"``-style
  messages; unexpected internal failures are reported as
  ``"ExceptionClass: message"`` and counted under the
  ``ppkws_internal_errors_total`` metric.

Observability (see :mod:`repro.obs` and the README's catalogue):

* Every request increments ``ppkws_requests_total{op,status}`` and
  records a ``ppkws_request_seconds{op}`` latency histogram sample;
  answer-cache traffic lands in ``ppkws_answer_cache_hits_total`` /
  ``..._misses_total``.
* Slow (``>= slow_query_ms``), degraded and errored requests land in a
  bounded in-memory ring of :class:`~repro.obs.QueryTrace` records.
* A ``{"op": "metrics"}`` request returns the metric snapshot, recent
  traces, answer-cache stats and a Prometheus text rendering; like
  ``help`` it bypasses admission control so operators keep their eyes
  during overload.
* Any query request may set ``"trace": true`` to receive its own
  ``counters`` and ``trace`` (per-step timings, budget expansions,
  degradation fields) in the response.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro import faults
from repro.core.engine import (
    SemanticsSpec,
    registered_semantics,
    registry_version,
    semantics_spec,
)
from repro.core.framework import PIPELINE_STEPS, PPKWS, QueryOptions
from repro.core.persist import load_index, save_index
from repro.exceptions import (
    BudgetError,
    FaultInjectedError,
    IndexCorruptError,
    OwnerNotAttachedError,
    ReproError,
    ServiceOverloadedError,
    UnknownNetworkError,
)
from repro.faults.points import SERVICE_EXECUTE
from repro.graph.frozen import freeze
from repro.graph.labeled_graph import LabeledGraph
from repro.core.vectorized import plan_for
from repro.obs import (
    MetricsRegistry,
    QueryTrace,
    TraceRing,
    installed,
    observe_answer_cache,
    observe_batch_request,
    render_prometheus,
)
from repro.serving import AnswerCache, RWLock
from repro.serving.shards import LocalShardPlan, ShardServingPool

__all__ = ["OpSpec", "PPKWSService", "PROTOCOL_VERSION", "ERROR_CODES"]

#: The wire-protocol version echoed as ``"v"`` in every response.
PROTOCOL_VERSION = 1

#: The closed enum of machine-readable error codes (wire contract).
ERROR_CODES: Tuple[str, ...] = (
    "bad_request",
    "unknown_network",
    "unknown_owner",
    "overloaded",
    "budget_exhausted",
    "internal",
)

#: Request fields accepted on every op, next to the per-op spec fields.
#: ``fanout`` asks a query to scatter-gather its AComplete across the
#: shard pool (or an inline :class:`LocalShardPlan` when none is
#: enabled) instead of being routed whole to a single shard worker.
GLOBAL_REQUEST_FIELDS = frozenset({"op", "v", "trace", "no_cache", "fanout"})

#: The one central exception -> wire-code map (first match wins; order
#: matters because the later entries are superclasses of earlier ones).
_CODE_BY_EXCEPTION: Tuple[Tuple[type, str], ...] = (
    # An injected fault is an infrastructure failure, not a caller error
    # — before ReproError, whose subclass it is.
    (FaultInjectedError, "internal"),
    (ServiceOverloadedError, "overloaded"),
    (UnknownNetworkError, "unknown_network"),
    (OwnerNotAttachedError, "unknown_owner"),
    (BudgetError, "budget_exhausted"),
    (ReproError, "bad_request"),
)


def _error_code(exc: BaseException) -> str:
    """The stable wire code for an exception (``internal`` if unmapped)."""
    for exc_type, code in _CODE_BY_EXCEPTION:
        if isinstance(exc, exc_type):
            return code
    return "internal"


def _require(request: Dict[str, Any], *fields: str) -> None:
    """Raise a clear error for the first missing request field."""
    for f in fields:
        if f not in request:
            raise ReproError(f"missing field {f!r}")


def _graph_from_request(request: Dict[str, Any], field_name: str) -> LabeledGraph:
    """Build a graph from a request payload.

    Accepts either a ready :class:`LabeledGraph` under ``field_name`` or
    the wire-friendly pair ``<field>_edges`` (list of ``[u, v]`` or
    ``[u, v, weight]``) and optional ``<field>_labels``
    (vertex -> label list).
    """
    graph = request.get(field_name)
    if isinstance(graph, LabeledGraph):
        return graph
    if graph is not None:
        raise ReproError(
            f"field {field_name!r} must be a LabeledGraph "
            f"(or send {field_name + '_edges'!r} instead)"
        )
    edges_field = f"{field_name}_edges"
    _require(request, edges_field)
    out = LabeledGraph()
    for edge in request[edges_field]:
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise ReproError(
                f"field {edges_field!r} entries must be [u, v] or [u, v, weight]"
            )
        out.add_edge(*edge)
    for v, ls in (request.get(f"{field_name}_labels") or {}).items():
        out.add_vertex(v, ls)
    return out


def _budget_args(request: Dict[str, Any]) -> Dict[str, Any]:
    """Per-request budget keywords for the engine entry points."""
    out: Dict[str, Any] = {}
    if request.get("deadline_ms") is not None:
        out["deadline_ms"] = float(request["deadline_ms"])
    if request.get("max_expansions") is not None:
        out["max_expansions"] = int(request["max_expansions"])
    return out


def _degradation_fields(result: Any) -> Dict[str, Any]:
    """Status plus pipeline-progress fields for a query result."""
    if not result.degraded:
        return {"status": "ok"}
    return {
        "status": "degraded",
        "completed_steps": list(result.completed_steps),
        "interrupted_step": result.interrupted_step,
    }


# ----------------------------------------------------------------------
# the declarative op registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpSpec:
    """One wire op: handler plus everything dispatch needs to know.

    ``mode`` drives both admission and locking, so the rwlock side is
    derived rather than hand-maintained per handler:

    * ``"read"`` — admitted, runs under the network's *read* lock, may
      be served from the answer cache when ``cacheable``;
    * ``"admin"`` — admitted; the underlying service method takes the
      network's *write* lock itself (so direct Python-API calls get the
      same exclusion);
    * ``"control"`` — introspection (``metrics`` / ``help``): no
      admission slot, no lock — must survive overload.

    ``required`` / ``optional`` are the op's accepted fields (on top of
    the :data:`GLOBAL_REQUEST_FIELDS`); missing required fields become
    ``bad_request`` errors and unrecognized fields become ``warnings``.
    ``cache_params`` canonicalizes the op's query parameters (defaults
    applied) into the hashable tail of the answer-cache key.
    """

    name: str
    handler: Callable[["PPKWSService", Dict[str, Any]], Dict[str, Any]]
    required: Tuple[str, ...] = ()
    optional: Tuple[str, ...] = ()
    mode: str = "read"
    cacheable: bool = False
    cache_params: Optional[Callable[[Dict[str, Any]], Tuple[Any, ...]]] = None
    summary: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("read", "admin", "control"):
            raise ValueError(f"bad op mode {self.mode!r}")

    @property
    def known_fields(self) -> frozenset:
        return GLOBAL_REQUEST_FIELDS | set(self.required) | set(self.optional)


#: budget knobs shared by every query op
_BUDGET_FIELDS: Tuple[str, ...] = ("deadline_ms", "max_expansions")

#: the step-body selector shared by every query op ("pure" /
#: "vectorized" / "auto"); deliberately *not* part of the answer-cache
#: key — answers are bit-identical across modes, so a cached entry is
#: valid for any of them.
_EXECUTION_FIELDS: Tuple[str, ...] = ("execution_mode",)


def _query_op(spec: SemanticsSpec) -> OpSpec:
    """Build the wire op for one registered semantics.

    Everything — request schema, cache key, response payload, the
    ``help`` entry — comes from the spec's ``wire_*`` fields, so
    registering a semantics (see ``README.md`` "Semantics plugins") is
    all it takes to put it on the wire.
    """
    def handler(
        service: "PPKWSService", request: Dict[str, Any]
    ) -> Dict[str, Any]:
        return service._semantics_query(request, spec)

    return OpSpec(
        spec.name, handler,
        required=spec.wire_required,
        optional=tuple(spec.wire_optional) + _BUDGET_FIELDS + _EXECUTION_FIELDS,
        cacheable=True,
        cache_params=spec.wire_cache_params,
        summary=spec.summary,
    )


_OPS_LOCK = threading.Lock()
_OPS_CACHE: Tuple[int, Dict[str, "OpSpec"]] = (-1, {})


def _current_ops() -> Dict[str, "OpSpec"]:
    """The live op registry: static ops plus one query op per semantics.

    Rebuilt (and memoized on :func:`~repro.core.engine.registry_version`)
    whenever the semantics registry grows, so a semantics registered
    *after* import still shows up in dispatch and ``help`` automatically.
    The hot path is one lock-free int comparison — the previous memo key
    (the sorted name tuple) took the registry lock and re-sorted the
    names on *every* request, a measurable per-request tax under the
    serving benchmark.
    """
    global _OPS_CACHE
    version = registry_version()
    cached_version, cached = _OPS_CACHE
    if cached_version == version:
        return cached
    with _OPS_LOCK:
        cached_version, cached = _OPS_CACHE
        if cached_version == version:
            return cached
        ops: Dict[str, OpSpec] = {}
        for name in registered_semantics():
            if name in PPKWSService._STATIC_OPS:
                raise ValueError(
                    f"semantics {name!r} collides with a built-in op"
                )
            ops[name] = _query_op(semantics_spec(name))
        ops.update(PPKWSService._STATIC_OPS)
        _OPS_CACHE = (version, ops)
        return ops


class PPKWSService:
    """Named-network registry plus a uniform request executor.

    ``max_in_flight`` caps concurrently executing requests; ``None``
    (the default) disables admission control.

    ``answer_cache_size`` / ``answer_cache_ttl_s`` configure the
    cross-request answer cache (entries / per-entry freshness bound in
    seconds).  A size of ``0`` disables answer caching entirely; a TTL
    of ``None`` keeps entries until evicted or their network's epoch
    moves.

    ``registry`` receives this service's request metrics; when ``None``
    the process-wide registry (:func:`repro.obs.install`) is used, and
    when none is installed either, instrumentation reduces to a ``None``
    check per request.  ``slow_query_ms`` is the latency above which an
    otherwise-healthy request is recorded in the trace ring of size
    ``trace_ring_size``.
    """

    def __init__(
        self,
        sketch_k: int = 2,
        options: Optional[QueryOptions] = None,
        max_in_flight: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        slow_query_ms: float = 1000.0,
        trace_ring_size: int = 128,
        answer_cache_size: int = 1024,
        answer_cache_ttl_s: Optional[float] = 60.0,
    ):
        self._sketch_k = sketch_k
        self._options = options
        #: name -> engine; ``None`` marks a reservation (build in flight)
        self._engines: Dict[str, Optional[PPKWS]] = {}
        #: guards every check-then-act on :attr:`_engines` and the epochs
        self._engines_lock = threading.Lock()
        #: name -> monotonic epoch; bumped by every admin op, *never*
        #: deleted (a re-created network must not revive old answers)
        self._epochs: Dict[str, int] = {}
        #: name -> the network's reader-writer lock (kept across drop so
        #: late requests against a dropped name still lock consistently)
        self._network_locks: Dict[Any, RWLock] = {}
        self._network_locks_lock = threading.Lock()
        self._answer_cache: Optional[AnswerCache] = (
            AnswerCache(answer_cache_size, answer_cache_ttl_s)
            if answer_cache_size
            else None
        )
        self._max_in_flight = max_in_flight
        self._in_flight = 0
        self._admission_lock = threading.Lock()
        self._registry = registry
        self._slow_query_ms = slow_query_ms
        self._traces = TraceRing(trace_ring_size)
        #: per-thread scratch where query handlers deposit the result /
        #: budget objects so ``execute`` can assemble the QueryTrace
        self._tls = threading.local()
        #: executors serving this service (weak: an executor keeps the
        #: service alive, never the reverse); feeds the ``health`` op
        self._executors: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._executors_lock = threading.Lock()
        #: EWMA of *uncached query* latency (ms) feeding ``retry_after_ms``
        #: hints on overload rejections; seeded with a plausible prior.
        #: Guarded by :attr:`_avg_lock` — an unsynchronized float RMW can
        #: lose whole updates, and the value steers client back-off.
        self._avg_request_ms = 5.0
        self._avg_lock = threading.Lock()
        #: the process-based shard pool (:meth:`enable_sharding`), plus
        #: the lock serializing enable/disable against each other
        self._shard_pool: Optional[ShardServingPool] = None
        self._shard_lock = threading.Lock()
        #: True while an enable_sharding is constructing its pool
        #: outside the lock — the reservation that keeps a concurrent
        #: enable exact without holding _shard_lock across process spawn
        self._shard_reserved = False

    def _metrics_registry(self) -> Optional[MetricsRegistry]:
        """The effective registry: constructor-injected, else installed."""
        return self._registry if self._registry is not None else installed()

    @property
    def answer_cache(self) -> Optional[AnswerCache]:
        """The cross-request answer cache (``None`` when disabled)."""
        return self._answer_cache

    def bind_executor(self, executor: Any) -> None:
        """Register an executor so ``health`` can report its liveness.

        Called by :class:`~repro.serving.ServiceExecutor` on
        construction; the reference is weak, so a discarded executor
        disappears from health output on its own.
        """
        with self._executors_lock:
            self._executors.add(executor)

    def _warn(self, message: str) -> None:
        """Attach a warning to the response of the request being executed.

        Handlers report non-fatal conditions (e.g. a quarantined corrupt
        index) through here; outside a request (direct Python-API calls)
        the warning has no response to ride on and is dropped.
        """
        ctx = getattr(self._tls, "ctx", None)
        if ctx is not None:
            ctx.setdefault("warnings", []).append(message)

    # ------------------------------------------------------------------
    # per-network locks and epochs
    # ------------------------------------------------------------------
    def _network_lock(self, network: Any) -> RWLock:
        """The (lazily created) reader-writer lock for ``network``."""
        with self._network_locks_lock:
            lock = self._network_locks.get(network)
            if lock is None:
                lock = self._network_locks[network] = RWLock()
            return lock

    def network_epoch(self, network: str) -> int:
        """The network's current cache epoch (0 before any admin op)."""
        with self._engines_lock:
            return self._epochs.get(network, 0)

    def _bump_epoch(self, network: str) -> None:
        with self._engines_lock:
            self._epochs[network] = self._epochs.get(network, 0) + 1

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def create_network(
        self,
        name: str,
        public: LabeledGraph,
        index_path: Optional[str] = None,
    ) -> None:
        """Register a public graph under ``name`` and build its index.

        ``index_path`` enables index persistence: an existing file there
        is loaded instead of rebuilding the PADS/KPADS sketches (the only
        expensive artifact), and after a fresh build the index is saved
        there for the next start.  A missing or *stale* file (the graph
        changed since it was written) silently falls back to a fresh
        build that overwrites it — persistence is a cache, never a
        correctness risk.  A *corrupt* file (failed checksum, truncation,
        version skew — :class:`~repro.exceptions.IndexCorruptError`) is
        quarantined to ``<index_path>.corrupt`` and reported via a
        ``warnings`` entry on the response before the rebuild, so disk
        trouble is visible instead of silently papered over.  An
        *unwritable* ``index_path`` is a configuration error and raises
        :class:`ReproError` (the network is not registered).

        Thread-safe: the name is reserved under the registry lock before
        the (expensive) index build starts, so concurrent creates of the
        same name resolve to exactly one winner — the others fail with
        ``"already exists"`` — without serializing builds of *different*
        networks.  Takes the network's write lock, and bumps its cache
        epoch so answers from a previous same-named network can never be
        served against the new one.
        """
        with self._network_lock(name).write_locked():
            self._create_network_exclusive(name, public, index_path)
            pool = self._shard_pool
            if pool is not None:
                pool.admin_create(name, self._engine(name))
        registry = self._metrics_registry()
        if registry is not None:
            registry.set_gauge("ppkws_networks", len(self.networks()))

    def adopt_network(self, name: str, engine: PPKWS) -> None:
        """Register an already-built engine under ``name``.

        The shard-worker replication path: the worker re-attaches the
        shared-memory graph and rebuilds the engine around the shipped
        index (:mod:`repro.serving.shards`), then adopts it here —
        ``create_network`` would re-freeze and re-index from scratch.
        Same exclusion and epoch discipline as a regular create.
        """
        with self._network_lock(name).write_locked():
            with self._engines_lock:
                if name in self._engines:
                    raise ReproError(f"network {name!r} already exists")
                self._engines[name] = engine
                self._epochs[name] = self._epochs.get(name, 0) + 1

    def _create_network_exclusive(
        self,
        name: str,
        public: LabeledGraph,
        index_path: Optional[str],
    ) -> None:
        with self._engines_lock:
            if name in self._engines:
                raise ReproError(f"network {name!r} already exists")
            self._engines[name] = None  # reserve while we build
        try:
            index = None
            frozen_public = freeze(public)
            if index_path is not None:
                try:
                    index = load_index(frozen_public, index_path)
                except FileNotFoundError:
                    index = None
                except IndexCorruptError as exc:
                    # Damaged file: quarantine the evidence, warn, rebuild.
                    index = None
                    self._quarantine_index(index_path, exc)
                except (ReproError, OSError, ValueError, KeyError, TypeError):
                    # Stale (or otherwise unusable) index file: rebuild
                    # and replace it.
                    index = None
            engine = PPKWS(
                frozen_public,
                sketch_k=self._sketch_k,
                options=self._options,
                index=index,
            )
            if index_path is not None and index is None:
                try:
                    save_index(engine.index, index_path)
                except OSError as exc:
                    # An unwritable/invalid path is a caller error, not a
                    # cache miss: surface it as a library error so the
                    # facade's "no library exception escapes" contract
                    # holds (OSError used to propagate out of execute).
                    raise ReproError(
                        f"cannot save index to {index_path!r}: {exc}"
                    ) from exc
        except BaseException:
            with self._engines_lock:
                self._engines.pop(name, None)  # release the reservation
            raise
        with self._engines_lock:
            self._engines[name] = engine
            self._epochs[name] = self._epochs.get(name, 0) + 1

    def _quarantine_index(self, index_path: str, exc: IndexCorruptError) -> None:
        """Move a corrupt index file aside and report the event.

        The damaged bytes are preserved at ``<index_path>.corrupt`` for
        post-mortem inspection (the rebuild would otherwise overwrite
        them), ``ppkws_index_corrupt_total`` counts the event, and the
        in-flight request (if any) gets a ``warnings`` entry.
        """
        quarantine_path = f"{index_path}.corrupt"
        try:
            os.replace(index_path, quarantine_path)
        except OSError:
            # The file vanished or the directory is read-only; the
            # rebuild path below will surface any real config error.
            quarantine_path = None  # type: ignore[assignment]
        registry = self._metrics_registry()
        if registry is not None:
            registry.inc("ppkws_index_corrupt_total")
        where = (
            f"quarantined to {quarantine_path!r}"
            if quarantine_path is not None
            else "quarantine failed; rebuilding over it"
        )
        self._warn(
            f"corrupt index file {index_path!r} ({exc.reason}); "
            f"{where}; rebuilding index"
        )

    def drop_network(self, name: str) -> None:
        """Forget a network and all its attachments.  Thread-safe.

        Takes the network's write lock (in-flight readers finish first)
        and bumps its epoch so cached answers die with it.
        """
        with self._network_lock(name).write_locked():
            with self._engines_lock:
                if self._engines.get(name) is None:
                    # Absent, or reserved by an in-flight create (not ours
                    # to drop until the create finishes).
                    raise UnknownNetworkError(name)
                del self._engines[name]
                self._epochs[name] = self._epochs.get(name, 0) + 1
            pool = self._shard_pool
            if pool is not None:
                pool.admin_drop(name)
        registry = self._metrics_registry()
        if registry is not None:
            registry.set_gauge("ppkws_networks", len(self.networks()))

    def attach_user(self, network: str, owner: str, private: LabeledGraph) -> int:
        """Attach a user's private graph; returns the portal count.

        Takes the network's write lock and bumps its cache epoch, so no
        answer computed before the attach survives it.
        """
        with self._network_lock(network).write_locked():
            engine = self._engine(network)
            attachment = engine.attach(owner, private)
            self._bump_epoch(network)
            pool = self._shard_pool
            if pool is not None:
                pool.admin_attach(network, owner, private)
        return len(attachment.portals)

    def detach_user(self, network: str, owner: str) -> None:
        """Detach a user's private graph (write lock + epoch bump)."""
        with self._network_lock(network).write_locked():
            self._engine(network).detach(owner)
            self._bump_epoch(network)
            pool = self._shard_pool
            if pool is not None:
                pool.admin_detach(network, owner)

    def networks(self) -> List[str]:
        """Registered network names (reservations excluded)."""
        with self._engines_lock:
            return sorted(n for n, e in self._engines.items() if e is not None)

    def _engine(self, network: str) -> PPKWS:
        with self._engines_lock:
            try:
                engine = self._engines[network]
            except KeyError:
                raise UnknownNetworkError(network) from None
        if engine is None:
            raise UnknownNetworkError(network, "is still being created")
        return engine

    # ------------------------------------------------------------------
    # process-based sharding
    # ------------------------------------------------------------------
    @property
    def shard_pool(self) -> Optional[ShardServingPool]:
        """The active shard pool (``None`` unless sharding is enabled)."""
        return self._shard_pool

    def enable_sharding(self, shards: int = 2) -> ShardServingPool:
        """Start a :class:`ShardServingPool` and replicate into it.

        The public graphs are exported to shared memory once and every
        worker process re-attaches them zero-copy; from here on,
        cache-miss query requests execute inside a worker (outside this
        process's GIL) and admin ops are broadcast to keep the replicas
        current.  Returns the pool (also at :attr:`shard_pool`).
        """
        # Reserve under the lock, construct outside it: the pool spawns
        # worker processes and waits for their handshakes (up to 60s),
        # and holding _shard_lock across that would convoy every
        # concurrent enable/disable/health probe behind process startup
        # (found by RA010).  The reservation keeps double-enable exact.
        with self._shard_lock:
            if self._shard_pool is not None or self._shard_reserved:
                raise ReproError("sharding is already enabled")
            self._shard_reserved = True
        try:
            pool = ShardServingPool(
                shards, registry=self._metrics_registry()
            )
        except BaseException:
            with self._shard_lock:
                self._shard_reserved = False
            raise
        with self._shard_lock:
            self._shard_pool = pool
            self._shard_reserved = False
        # Replicate the networks that predate the pool.  The pool is
        # published *first* so concurrent admin ops broadcast on their
        # own; each network's write lock serializes this loop against
        # them, and replicated() skips names such a broadcast already
        # shipped (worker-side attach replay is idempotent).
        for name in self.networks():
            with self._network_lock(name).write_locked():
                try:
                    engine = self._engine(name)
                except UnknownNetworkError:
                    continue  # dropped while we were replicating
                if pool.replicated(name):
                    continue
                pool.admin_create(name, engine)
                for owner in engine.owners():
                    pool.admin_attach(
                        name, owner, engine.attachment(owner).private
                    )
        return pool

    def disable_sharding(self) -> None:
        """Stop the shard pool (workers exit, segments are unlinked).

        Safe to call when sharding was never enabled.  Requests fall
        back to in-process execution immediately.
        """
        with self._shard_lock:
            pool, self._shard_pool = self._shard_pool, None
        if pool is not None:
            pool.shutdown()

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------
    @contextmanager
    def _admit(self) -> Iterator[None]:
        """Reserve an execution slot, or fail fast when saturated."""
        if self._max_in_flight is None:
            yield
            return
        with self._admission_lock:
            if self._in_flight >= self._max_in_flight:
                raise ServiceOverloadedError(self._in_flight, self._max_in_flight)
            self._in_flight += 1
        try:
            yield
        finally:
            with self._admission_lock:
                self._in_flight -= 1

    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request dict; never raises library errors."""
        started = time.perf_counter()
        self._tls.ctx = ctx = {}
        error_class: Optional[str] = None
        internal_error = False
        query_class = False
        warnings: List[str] = []
        op = request.get("op") if isinstance(request, dict) else None
        try:
            faults.fire(SERVICE_EXECUTE)
            if not isinstance(request, dict):
                raise ReproError("request must be a dict with an 'op' field")
            ops = _current_ops()
            spec = ops.get(op)
            if spec is None:
                raise ReproError(
                    f"unknown op {op!r}; valid ops: {sorted(ops)} "
                    "(send {'op': 'help'} for the catalogue)"
                )
            # Cacheable == the generated per-semantics query ops: the
            # request class whose latency the overload hint models.
            query_class = spec.cacheable
            version = request.get("v")
            if version is not None and version != PROTOCOL_VERSION:
                raise ReproError(
                    f"unsupported protocol version {version!r} "
                    f"(this service speaks v{PROTOCOL_VERSION})"
                )
            warnings = [
                f"unknown field {f!r}"
                for f in sorted((str(f) for f in request), key=str)
                if f not in spec.known_fields
            ]
            for f in spec.required:
                if f not in request:
                    raise ReproError(f"missing field {f!r}")
            if spec.mode == "control":
                # Introspection must survive overload: no admission slot.
                response = spec.handler(self, request)
            else:
                with self._admit():
                    response = self._execute_locked(spec, request)
        except (ReproError, KeyError, TypeError, ValueError, OSError,
                AttributeError) as exc:
            error_class = type(exc).__name__
            code = _error_code(exc)
            internal_error = code == "internal"
            if isinstance(exc, ReproError) and not internal_error:
                # A bare str() of e.g. KeyError is just the quoted key
                # ("'collab'") — leaked engine internals rather than a
                # message — so non-library errors get the class prefix.
                message = str(exc) or repr(exc)
            else:
                message = f"{error_class}: {exc}"
            response = {
                "status": "error",
                "error": message,
                "code": code,
                "retryable": getattr(exc, "retryable", False),
            }
            if code == "overloaded":
                # How long the caller should back off before resubmitting:
                # roughly one average request draining from the pool.
                response["retry_after_ms"] = self._retry_after_hint_ms()
        finally:
            self._tls.ctx = None
        warnings += ctx.get("warnings", ())
        if warnings:
            response["warnings"] = warnings
        response["v"] = PROTOCOL_VERSION
        self._observe_request(request, op, response, ctx, started,
                              error_class, internal_error, query_class)
        return response

    def _execute_locked(
        self, spec: "OpSpec", request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run an admitted request under the derived rwlock side."""
        if spec.mode == "admin":
            # The service methods themselves take the write lock, so the
            # exclusion also covers direct Python-API calls.
            return spec.handler(self, request)
        network = request["network"]
        if not isinstance(network, str):
            raise ReproError("field 'network' must be a string")
        with self._network_lock(network).read_locked():
            return self._execute_cached(spec, request)

    def _execute_cached(
        self, spec: "OpSpec", request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Serve a read op, via the answer cache when eligible.

        Runs under the network's read lock, so the epoch observed here
        cannot move before the store: admin ops need the write side.
        A stored entry is only ever reused while its epoch is current.

        With sharding enabled, the miss path of a query op executes in
        a shard worker *process* (``pool.route``) instead of here — the
        read lock is still held in this process, so replicas cannot
        drift mid-request — unless the request asks for ``fanout``
        (scatter-gather runs the pipeline locally and only AComplete
        fans out).
        """
        cache = self._answer_cache
        key = None
        if (
            cache is not None
            and spec.cacheable
            and not request.get("no_cache")
            and not request.get("trace")  # a trace describes a real run
        ):
            key = self._cache_key(spec, request)
        pool = self._shard_pool
        if pool is None or not spec.cacheable or request.get("fanout"):
            pool = None

        def run() -> Dict[str, Any]:
            if pool is not None:
                return pool.route(request)
            return spec.handler(self, request)
        if key is None:
            return run()
        epoch = self.network_epoch(request["network"])
        try:
            hit = cache.lookup(key, epoch)
        except FaultInjectedError:
            # A broken cache degrades to a miss, never a failed request.
            hit = None
        observe_answer_cache(self._metrics_registry(), hit is not None)
        if hit is not None:
            hit["cached"] = True
            return hit
        response = run()
        if response.get("status") == "ok":
            try:
                cache.store(key, epoch, response)
            except FaultInjectedError:
                # The answer is sound; only its memoization was lost.
                self._warn("answer cache store failed; response not cached")
        return response

    def _cache_key(
        self, spec: "OpSpec", request: Dict[str, Any]
    ) -> Optional[Tuple[Any, ...]]:
        """The answer-cache key, or ``None`` when the request resists
        canonicalization (the handler then produces the real error)."""
        if spec.cache_params is None:
            return None
        try:
            key = (
                spec.name,
                request["network"],
                request["owner"],
            ) + spec.cache_params(request)
            hash(key)
        except (TypeError, ValueError, KeyError):
            return None
        return key

    def _retry_after_hint_ms(self) -> float:
        """Suggested back-off before resubmitting an overloaded request."""
        with self._avg_lock:
            avg = self._avg_request_ms
        return round(min(max(avg, 1.0), 5000.0), 3)

    # -- observability --------------------------------------------------
    def _observe_request(
        self,
        request: Any,
        op: Any,
        response: Dict[str, Any],
        ctx: Dict[str, Any],
        started: float,
        error_class: Optional[str],
        internal_error: bool,
        query_class: bool = False,
    ) -> None:
        """Record one finished request: metrics, trace ring, trace field.

        Defensive by design: observability must never break the facade's
        "no exception escapes" contract, so any failure here is swallowed
        after marking the response.
        """
        try:
            duration_ms = (time.perf_counter() - started) * 1000.0
            status = response.get("status", "error")
            # The EWMA feeds retry_after_ms — "how long until a slot
            # drains".  Only *uncached, completed query* work models
            # that: sub-millisecond cache hits and metrics/help chatter
            # used to drag the average to the clamp floor, so an
            # overloaded client was told to retry after ~1ms while cold
            # queries took orders of magnitude longer.  Locked: a lost
            # float RMW update is not benign when clients pace on it.
            if (
                query_class
                and not response.get("cached")
                and status in ("ok", "degraded")
            ):
                with self._avg_lock:
                    self._avg_request_ms += 0.2 * (
                        duration_ms - self._avg_request_ms
                    )
            op_label = op if isinstance(op, str) else repr(op)
            # The QueryTrace (plus the counters asdict) is only built
            # when someone will actually see it — the per-request cost
            # of assembling one unconditionally showed up as a
            # measurable slice of serving throughput.
            want_trace = isinstance(request, dict) and bool(request.get("trace"))
            record = status != "ok" or duration_ms >= self._slow_query_ms
            if want_trace or record:
                trace = QueryTrace(
                    op=op_label,
                    status=status,
                    duration_ms=duration_ms,
                    error=error_class,
                )
                if isinstance(request, dict):
                    network = request.get("network")
                    owner = request.get("owner")
                    trace.network = network if isinstance(network, str) else None
                    trace.owner = owner if isinstance(owner, str) else None
                result = ctx.get("result")
                if result is not None:
                    trace.step_ms = {
                        step: getattr(result.breakdown, step) * 1000.0
                        for step in PIPELINE_STEPS
                    }
                    trace.counters = asdict(result.counters)
                    trace.degraded = result.degraded
                    trace.completed_steps = tuple(result.completed_steps)
                    trace.interrupted_step = result.interrupted_step
                budget = ctx.get("budget")
                if budget is not None:
                    trace.expansions = budget.expansions

                if want_trace:
                    if result is not None:
                        response["counters"] = dict(trace.counters)
                    response["trace"] = trace.to_dict()

                if record:
                    self._traces.record(trace)

            registry = self._metrics_registry()
            if registry is not None:
                registry.inc(
                    "ppkws_requests_total",
                    labels={"op": op_label, "status": status},
                )
                registry.observe(
                    "ppkws_request_seconds",
                    duration_ms / 1000.0,
                    labels={"op": op_label},
                )
                if internal_error:
                    registry.inc(
                        "ppkws_internal_errors_total",
                        labels={"error": error_class or "unknown"},
                    )
                if error_class == "ServiceOverloadedError":
                    registry.inc("ppkws_rejected_total")
                if "retry_after_ms" in response:
                    registry.inc("ppkws_retry_after_hint_total")
                registry.set_gauge("ppkws_in_flight_requests", self._in_flight)
        except (AttributeError, LookupError, TypeError, ValueError) as exc:
            # Observability must never break a request, but a broken
            # observer must not be silent either: these are the concrete
            # malfunction classes shape drift in the result/trace
            # plumbing produces, and each firing is counted so a
            # dashboard shows the telemetry gap instead of nothing.
            try:
                registry = self._metrics_registry()
                if registry is not None:
                    registry.inc(
                        "ppkws_internal_errors_total",
                        labels={"error": f"observer:{type(exc).__name__}"},
                    )
            except Exception:  # pragma: no cover - the metrics sink itself broke
                pass

    def _stash(self, result: Any, budget: Any) -> None:
        """Deposit query internals for :meth:`_observe_request`."""
        ctx = getattr(self._tls, "ctx", None)
        if ctx is not None:
            ctx["result"] = result
            ctx["budget"] = budget

    def recent_traces(self) -> List[Dict[str, Any]]:
        """The slow/degraded/errored query traces currently in the ring."""
        return self._traces.snapshot()

    # -- handlers -------------------------------------------------------
    def _semantics_query(
        self, request: Dict[str, Any], spec: SemanticsSpec
    ) -> Dict[str, Any]:
        """The one wire handler every registered semantics runs through."""
        engine = self._engine(request["network"])
        budget = engine.make_budget(**_budget_args(request))
        shards: Optional[Any] = None
        if request.get("fanout"):
            pool = self._shard_pool
            if pool is not None and pool.replicated(request["network"]):
                shards = pool.plan(request["network"], request["owner"])
            else:
                # No pool (or a not-yet-replicated network): run the
                # sharded step bodies inline so ``fanout`` behaves the
                # same everywhere — this is also the dict-backend path
                # the equivalence suite pins bit-identical.
                shards = LocalShardPlan(engine, owner=request["owner"])
        result = spec.run(
            engine,
            engine.attachment(request["owner"]),
            spec.wire_params(request),
            budget=budget,
            shards=shards,
            vectorized=plan_for(engine, request.get("execution_mode")),
        )
        self._stash(result, budget)
        out = _degradation_fields(result)
        out.update(spec.wire_payload(result))
        return out

    def _op_batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """``{"op": "batch"}``: many query items, one admission slot.

        ``queries`` is a list of per-item dicts shaped like the
        individual query requests minus ``network`` / ``owner`` (the
        batch supplies both; item-level values are overridden).  The
        whole batch occupies one admission slot and runs under one
        read lock; ``deadline_ms`` / ``max_expansions`` bound the *whole
        batch* via :class:`~repro.core.batch.BatchBudget` even splitting.

        Every item participates in the answer cache individually — a hit
        skips execution (and does not consume batch budget) and carries
        ``"cached": true``; stored entries are shared with the individual
        query ops.  Items fail individually: a bad item yields an
        ``{"status": "error", ...}`` entry and the rest of the batch
        still runs.  All items execute through one
        :class:`~repro.core.batch.BatchSession`, so they share a
        completion cache and (vectorized) sweep memo.
        """
        from repro.core.batch import BatchBudget, BatchSession
        from repro.core.vectorized import validate_execution_mode

        network = request["network"]
        queries = request["queries"]
        if not isinstance(queries, list):
            raise ReproError("field 'queries' must be a list of query dicts")
        execution_mode = request.get("execution_mode")
        if execution_mode is not None:
            validate_execution_mode(execution_mode)
        engine = self._engine(network)
        session = BatchSession(
            engine, request["owner"], execution_mode=execution_mode
        )
        budget_args = _budget_args(request)
        batch = BatchBudget(
            budget_args.get("deadline_ms"), budget_args.get("max_expansions")
        )
        ops = _current_ops()
        cache = self._answer_cache
        epoch = self.network_epoch(network)
        results: List[Dict[str, Any]] = []
        counts: Dict[str, int] = {}
        for i, item in enumerate(queries):
            entry = self._batch_item(
                session, ops, i, item, batch, len(queries) - i, cache, epoch,
                request,
            )
            results.append(entry)
            status = str(entry.get("status", "error"))
            counts[status] = counts.get(status, 0) + 1
        observe_batch_request(counts)
        return {"status": "ok", "results": results}

    def _batch_item(
        self,
        session: Any,
        ops: Dict[str, "OpSpec"],
        index: int,
        item: Any,
        batch: Any,
        items_left: int,
        cache: Optional[AnswerCache],
        epoch: int,
        request: Dict[str, Any],
    ) -> Dict[str, Any]:
        """One batch item: cache lookup, execution, error isolation."""
        try:
            if not isinstance(item, dict):
                raise ReproError(
                    f"queries[{index}] must be a dict with an 'op' field"
                )
            item_op = item.get("op")
            op_spec = ops.get(item_op)
            if op_spec is None or not op_spec.cacheable:
                # Only the generated query ops are batchable — admin /
                # control ops inside a batch would dodge their locking.
                valid = sorted(n for n, s in ops.items() if s.cacheable)
                raise ReproError(
                    f"queries[{index}]: op {item_op!r} is not a query op; "
                    f"valid ops: {valid}"
                )
            item_request = dict(item)
            item_request["network"] = request["network"]
            item_request["owner"] = request["owner"]
            for f in op_spec.required:
                if f not in item_request:
                    raise ReproError(f"queries[{index}]: missing field {f!r}")
            for f in sorted((str(f) for f in item_request), key=str):
                if f not in op_spec.known_fields | {"execution_mode"}:
                    self._warn(f"queries[{index}]: unknown field {f!r}")
            key = None
            if cache is not None and not item_request.get("no_cache"):
                key = self._cache_key(op_spec, item_request)
            if key is not None:
                try:
                    hit = cache.lookup(key, epoch)
                except FaultInjectedError:
                    hit = None
                observe_answer_cache(self._metrics_registry(), hit is not None)
                if hit is not None:
                    hit["cached"] = True
                    return hit
            sem_spec = semantics_spec(item_op)
            slice_budget = batch.slice_for(items_left)
            result = session.query(
                item_op,
                budget=slice_budget,
                execution_mode=item_request.get("execution_mode"),
                **sem_spec.wire_params(item_request),
            )
            batch.charge(slice_budget)
            entry: Dict[str, Any] = _degradation_fields(result)
            entry.update(sem_spec.wire_payload(result))
            if key is not None and entry.get("status") == "ok":
                try:
                    cache.store(key, epoch, entry)
                except FaultInjectedError:
                    self._warn(
                        f"queries[{index}]: answer cache store failed; "
                        "response not cached"
                    )
            entry["cached"] = False
            return entry
        except (ReproError, KeyError, TypeError, ValueError,
                AttributeError) as exc:
            code = _error_code(exc)
            if isinstance(exc, ReproError) and code != "internal":
                message = str(exc) or repr(exc)
            else:
                message = f"{type(exc).__name__}: {exc}"
            return {
                "status": "error",
                "error": message,
                "code": code,
                "retryable": getattr(exc, "retryable", False),
            }

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        engine = self._engine(request["network"])
        out: Dict[str, Any] = {
            "status": "ok",
            "public": dict(engine.public.stats()),
            "owners": engine.owners(),
            "index_entries": engine.index.pads.total_entries,
            "epoch": self.network_epoch(request["network"]),
        }
        owner = request.get("owner")
        if owner is not None:
            attachment = engine.attachment(owner)
            out["attachment"] = {
                "private_vertices": attachment.private.num_vertices,
                "private_edges": attachment.private.num_edges,
                "portals": len(attachment.portals),
                "refined_portal_pairs": len(attachment.refined_portal_pairs) // 2,
            }
        return out

    def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The observability op: snapshot + traces + cache + Prometheus."""
        registry = self._metrics_registry()
        return {
            "status": "ok",
            "metrics": registry.snapshot() if registry is not None else {},
            "recent_traces": self._traces.snapshot(),
            "answer_cache": (
                self._answer_cache.stats()
                if self._answer_cache is not None
                else None
            ),
            "prometheus": render_prometheus(registry),
        }

    def _op_health(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Liveness/readiness: per-network state plus worker health.

        A control op — no admission slot, no network lock — so operators
        can still see the service while it is overloaded or mid-admin.
        """
        with self._engines_lock:
            networks: Dict[str, Dict[str, Any]] = {}
            for name, engine in self._engines.items():
                info: Dict[str, Any] = {
                    "ready": engine is not None,
                    "epoch": self._epochs.get(name, 0),
                }
                if engine is not None:
                    info["owners"] = len(engine.owners())
                networks[name] = info
        with self._admission_lock:
            in_flight = self._in_flight
        with self._executors_lock:
            executors = [ex.health() for ex in self._executors]
        pool = self._shard_pool
        return {
            "status": "ok",
            "networks": networks,
            "in_flight": in_flight,
            "max_in_flight": self._max_in_flight,
            "executors": executors,
            "shards": pool.health() if pool is not None else None,
            "faults_active": faults.is_active(),
        }

    def _op_help(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The op catalogue, straight from the registry."""
        ops = {
            name: {
                "summary": spec.summary,
                "required": list(spec.required),
                "optional": list(spec.optional),
                "mode": spec.mode,
                "cacheable": spec.cacheable,
            }
            for name, spec in sorted(_current_ops().items())
        }
        return {
            "status": "ok",
            "protocol": PROTOCOL_VERSION,
            "ops": ops,
            "global_fields": sorted(GLOBAL_REQUEST_FIELDS),
            "error_codes": list(ERROR_CODES),
        }

    # -- admin handlers -------------------------------------------------
    def _op_create_network(self, request: Dict[str, Any]) -> Dict[str, Any]:
        public = _graph_from_request(request, "public")
        self.create_network(
            request["network"], public, index_path=request.get("index_path")
        )
        return {"status": "ok", "network": request["network"]}

    def _op_attach(self, request: Dict[str, Any]) -> Dict[str, Any]:
        private = _graph_from_request(request, "private")
        portals = self.attach_user(request["network"], request["owner"], private)
        return {"status": "ok", "owner": request["owner"], "portals": portals}

    def _op_detach(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.detach_user(request["network"], request["owner"])
        return {"status": "ok", "owner": request["owner"]}

    def _op_drop(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.drop_network(request["network"])
        return {"status": "ok", "network": request["network"]}

    #: The static (non-query) op registry.  Query ops are *generated* —
    #: one per registered semantics, straight from its ``wire_*`` spec
    #: fields — and merged with these by :func:`_current_ops`, which
    #: dispatch and ``help`` consult.
    _STATIC_OPS: Dict[str, OpSpec] = {
        spec.name: spec
        for spec in (
            OpSpec(
                "stats", _op_stats,
                required=("network",), optional=("owner",),
                summary="Network statistics, owners and cache epoch.",
            ),
            OpSpec(
                "batch", _op_batch,
                required=("network", "owner", "queries"),
                optional=("deadline_ms", "max_expansions", "execution_mode"),
                summary=(
                    "Run many query items under one admission slot, with "
                    "a whole-batch budget and per-item caching."
                ),
            ),
            OpSpec(
                "metrics", _op_metrics, mode="control",
                summary="Metrics snapshot, traces, cache stats, Prometheus.",
            ),
            OpSpec(
                "help", _op_help, mode="control",
                summary="This catalogue: ops, fields, modes, error codes.",
            ),
            OpSpec(
                "health", _op_health, mode="control",
                summary="Per-network readiness plus executor worker liveness.",
            ),
            OpSpec(
                "create_network", _op_create_network, mode="admin",
                required=("network",),
                optional=("public", "public_edges", "public_labels",
                          "index_path"),
                summary="Register a public graph and build its index.",
            ),
            OpSpec(
                "attach", _op_attach, mode="admin",
                required=("network", "owner"),
                optional=("private", "private_edges", "private_labels"),
                summary="Attach an owner's private graph (portal discovery).",
            ),
            OpSpec(
                "detach", _op_detach, mode="admin",
                required=("network", "owner"),
                summary="Detach an owner's private graph.",
            ),
            OpSpec(
                "drop", _op_drop, mode="admin",
                required=("network",),
                summary="Forget a network and all its attachments.",
            ),
        )
    }
